//! The discrete-event loop.
//!
//! [`Engine`] is generic over the model's event type `E`. The model is any
//! type implementing [`Model`]; on every event the engine hands it a
//! [`Context`] through which it can read the clock, schedule further events,
//! draw random numbers and stop the run.
//!
//! Event ordering is `(time, sequence)` where `sequence` is a monotonically
//! increasing insertion counter, so simultaneous events fire in the order
//! they were scheduled — the key to reproducible runs.
//!
//! The pending-event set lives in a pluggable [`EventQueue`]
//! (`crate::queue`): an indexed hierarchical timing wheel by default
//! ([`QueueBackend::TimingWheel`]), with the original binary heap retained
//! as an executable reference ([`QueueBackend::ReferenceHeap`]). Both
//! backends produce byte-identical runs; the wheel makes `schedule`,
//! `cancel` and `pop` (amortized) O(1) on the hot path every drill, chaos
//! plan and DES campaign funnels through.

use crate::queue::{EventQueue, QueueImpl};
use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};
use crate::trace::TraceLog;

pub use crate::queue::{EventHandle, QueueBackend};

/// A simulation model: owns all domain state and reacts to events.
pub trait Model {
    /// The event alphabet of this model.
    type Event;

    /// Handles one event at the context's current time.
    fn handle(&mut self, ctx: &mut Context<'_, Self::Event>, event: Self::Event);
}

/// An observer the engine notifies as it processes events.
///
/// Probes let external crates (notably `gemini-telemetry`) watch the event
/// loop without the engine depending on them. All methods have empty
/// default bodies, so implementors override only what they need.
pub trait EngineProbe {
    /// Called after each event is handled, with the current time and the
    /// total number of events processed so far.
    fn on_event(&mut self, _now: SimTime, _processed: u64) {}

    /// Called once when [`Engine::run`] returns, with the final time and
    /// the total number of events processed.
    fn on_run_end(&mut self, _now: SimTime, _processed: u64) {}
}

/// The per-event view of the simulation handed to [`Model::handle`].
pub struct Context<'a, E> {
    now: SimTime,
    queue: &'a mut QueueImpl<E>,
    seq: &'a mut u64,
    rng: &'a mut DetRng,
    trace: &'a mut TraceLog,
    stop: &'a mut bool,
}

impl<'a, E> Context<'a, E> {
    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire at absolute time `at`. Events scheduled in
    /// the past fire "now" (they are clamped to the current time), which
    /// keeps the clock monotone; several events clamped to the same instant
    /// still fire in scheduling order.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventHandle {
        let at = at.max(self.now);
        let seq = *self.seq;
        *self.seq += 1;
        self.queue.schedule(at, seq, event)
    }

    /// Schedules `event` to fire `after` from now.
    pub fn schedule_after(&mut self, after: SimDuration, event: E) -> EventHandle {
        self.schedule_at(self.now + after, event)
    }

    /// Cancels a previously scheduled event, returning `true` if a pending
    /// event was removed. Cancelling an event that has already fired (or
    /// was already cancelled) is a **true no-op**: it consumes no memory,
    /// and a stale handle can never cancel a different, later event.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        self.queue.cancel(handle)
    }

    /// The deterministic RNG owned by the engine.
    pub fn rng(&mut self) -> &mut DetRng {
        self.rng
    }

    /// Records a trace line at the current time (no-op when tracing is off).
    pub fn trace(&mut self, line: impl FnOnce() -> String) {
        let now = self.now;
        self.trace.record(now, line);
    }

    /// Requests the run to stop after the current event returns.
    pub fn stop(&mut self) {
        *self.stop = true;
    }
}

/// A deterministic discrete-event engine.
///
/// # Examples
///
/// ```
/// use gemini_sim::{Context, Engine, Model, SimDuration, SimTime};
///
/// struct Counter(u32);
/// impl Model for Counter {
///     type Event = ();
///     fn handle(&mut self, ctx: &mut Context<'_, ()>, _event: ()) {
///         self.0 += 1;
///         if self.0 < 3 {
///             ctx.schedule_after(SimDuration::from_secs(10), ());
///         }
///     }
/// }
///
/// let mut engine = Engine::new(42);
/// engine.prime_at(SimTime::ZERO, ());
/// let mut model = Counter(0);
/// let end = engine.run(&mut model, None, 1_000);
/// assert_eq!(model.0, 3);
/// assert_eq!(end, SimTime::from_secs(20));
/// ```
pub struct Engine<E> {
    now: SimTime,
    queue: QueueImpl<E>,
    seq: u64,
    rng: DetRng,
    trace: TraceLog,
    stop: bool,
    processed: u64,
    probe: Option<Box<dyn EngineProbe>>,
}

impl<E> Engine<E> {
    /// Creates an engine with the given root RNG seed, running on the
    /// default [`QueueBackend::TimingWheel`].
    pub fn new(seed: u64) -> Self {
        Engine::new_with_backend(seed, QueueBackend::default())
    }

    /// Creates an engine on an explicit queue backend. The reference heap
    /// exists for differential testing and benchmarking; both backends are
    /// run-for-run byte-identical.
    pub fn new_with_backend(seed: u64, backend: QueueBackend) -> Self {
        Engine {
            now: SimTime::ZERO,
            queue: QueueImpl::new(backend),
            seq: 0,
            rng: DetRng::new(seed),
            trace: TraceLog::disabled(),
            stop: false,
            processed: 0,
            probe: None,
        }
    }

    /// Enables trace capture (for debugging and the recovery-drill reports).
    pub fn with_trace(mut self) -> Self {
        self.trace = TraceLog::enabled();
        self
    }

    /// Attaches a probe that observes the event loop.
    pub fn with_probe(mut self, probe: Box<dyn EngineProbe>) -> Self {
        self.probe = Some(probe);
        self
    }

    /// Attaches a probe on an already-constructed engine.
    pub fn set_probe(&mut self, probe: Box<dyn EngineProbe>) {
        self.probe = Some(probe);
    }

    /// The queue backend this engine runs on.
    pub fn queue_backend(&self) -> QueueBackend {
        self.queue.backend()
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of live (scheduled, not yet fired or cancelled) events.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Outstanding cancellation bookkeeping (see
    /// [`EventQueue::cancelled_backlog`]); bounded by [`Engine::pending_events`]
    /// on every backend.
    pub fn cancelled_backlog(&self) -> usize {
        self.queue.cancelled_backlog()
    }

    /// A view of the captured trace.
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Seeds an initial event at absolute time `at` (clamped to the current
    /// time, like [`Context::schedule_at`]).
    pub fn prime_at(&mut self, at: SimTime, event: E) -> EventHandle {
        let seq = self.seq;
        self.seq += 1;
        self.queue.schedule(at.max(self.now), seq, event)
    }

    /// Seeds an initial event `after` from the current time.
    pub fn prime_after(&mut self, after: SimDuration, event: E) -> EventHandle {
        self.prime_at(self.now + after, event)
    }

    /// Cancels a previously scheduled event from outside a run, with the
    /// same true-no-op semantics as [`Context::cancel`].
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        self.queue.cancel(handle)
    }

    /// Runs until the queue drains, the model calls [`Context::stop`], the
    /// clock passes `until` (if given), or `max_events` events have been
    /// processed. Returns the time at which the run ended.
    ///
    /// `max_events` is an **exact** bound: at most `max_events` events are
    /// handled by this call (`max_events == 0` handles none). Cancelled
    /// events never count against the budget — they are never popped.
    pub fn run<M: Model<Event = E>>(
        &mut self,
        model: &mut M,
        until: Option<SimTime>,
        max_events: u64,
    ) -> SimTime {
        self.stop = false;
        let mut budget = max_events;
        while budget > 0 {
            let Some(next_time) = self.queue.next_time() else {
                break;
            };
            if let Some(limit) = until {
                if next_time > limit {
                    self.now = limit;
                    break;
                }
            }
            let (time, _seq, event) = self
                .queue
                .pop()
                .expect("next_time reported a pending event");
            debug_assert!(time >= self.now, "event queue went backwards");
            self.now = time;
            self.processed += 1;
            budget -= 1;
            let mut ctx = Context {
                now: self.now,
                queue: &mut self.queue,
                seq: &mut self.seq,
                rng: &mut self.rng,
                trace: &mut self.trace,
                stop: &mut self.stop,
            };
            model.handle(&mut ctx, event);
            if let Some(probe) = self.probe.as_mut() {
                probe.on_event(self.now, self.processed);
            }
            if self.stop {
                break;
            }
        }
        if let Some(limit) = until {
            if self.queue.is_empty() && !self.stop && self.now < limit {
                self.now = limit;
            }
        }
        if let Some(probe) = self.probe.as_mut() {
            probe.on_run_end(self.now, self.processed);
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Clone)]
    enum Ev {
        Tick(u32),
        Stop,
    }

    struct Recorder {
        seen: Vec<(SimTime, Ev)>,
        reschedule: bool,
    }

    impl Model for Recorder {
        type Event = Ev;
        fn handle(&mut self, ctx: &mut Context<'_, Ev>, event: Ev) {
            self.seen.push((ctx.now(), event.clone()));
            match event {
                Ev::Tick(n) if self.reschedule && n < 5 => {
                    ctx.schedule_after(SimDuration::from_secs(1), Ev::Tick(n + 1));
                }
                Ev::Stop => ctx.stop(),
                _ => {}
            }
        }
    }

    const BACKENDS: [QueueBackend; 2] = [QueueBackend::TimingWheel, QueueBackend::ReferenceHeap];

    #[test]
    fn events_fire_in_time_order() {
        for backend in BACKENDS {
            let mut engine = Engine::new_with_backend(0, backend);
            engine.prime_at(SimTime::from_secs(3), Ev::Tick(3));
            engine.prime_at(SimTime::from_secs(1), Ev::Tick(1));
            engine.prime_at(SimTime::from_secs(2), Ev::Tick(2));
            let mut m = Recorder {
                seen: vec![],
                reschedule: false,
            };
            engine.run(&mut m, None, 1_000);
            let order: Vec<u32> = m
                .seen
                .iter()
                .map(|(_, e)| match e {
                    Ev::Tick(n) => *n,
                    _ => 0,
                })
                .collect();
            assert_eq!(order, vec![1, 2, 3], "{backend:?}");
        }
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        for backend in BACKENDS {
            let mut engine = Engine::new_with_backend(0, backend);
            for n in 0..10 {
                engine.prime_at(SimTime::from_secs(1), Ev::Tick(n));
            }
            let mut m = Recorder {
                seen: vec![],
                reschedule: false,
            };
            engine.run(&mut m, None, 1_000);
            let order: Vec<u32> = m
                .seen
                .iter()
                .map(|(_, e)| match e {
                    Ev::Tick(n) => *n,
                    _ => 0,
                })
                .collect();
            assert_eq!(order, (0..10).collect::<Vec<_>>(), "{backend:?}");
        }
    }

    #[test]
    fn rescheduling_advances_clock() {
        let mut engine = Engine::new(0);
        engine.prime_at(SimTime::ZERO, Ev::Tick(0));
        let mut m = Recorder {
            seen: vec![],
            reschedule: true,
        };
        let end = engine.run(&mut m, None, 1_000);
        assert_eq!(m.seen.len(), 6);
        assert_eq!(end, SimTime::from_secs(5));
    }

    #[test]
    fn stop_halts_immediately() {
        let mut engine = Engine::new(0);
        engine.prime_at(SimTime::from_secs(1), Ev::Stop);
        engine.prime_at(SimTime::from_secs(2), Ev::Tick(2));
        let mut m = Recorder {
            seen: vec![],
            reschedule: false,
        };
        engine.run(&mut m, None, 1_000);
        assert_eq!(m.seen.len(), 1);
    }

    #[test]
    fn until_bound_respected() {
        for backend in BACKENDS {
            let mut engine = Engine::new_with_backend(0, backend);
            engine.prime_at(SimTime::from_secs(1), Ev::Tick(1));
            engine.prime_at(SimTime::from_secs(10), Ev::Tick(10));
            let mut m = Recorder {
                seen: vec![],
                reschedule: false,
            };
            let end = engine.run(&mut m, Some(SimTime::from_secs(5)), 1_000);
            assert_eq!(m.seen.len(), 1, "{backend:?}");
            assert_eq!(end, SimTime::from_secs(5), "{backend:?}");
        }
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        for backend in BACKENDS {
            let mut engine = Engine::new_with_backend(0, backend);
            let h = engine.prime_at(SimTime::from_secs(1), Ev::Tick(1));
            engine.prime_at(SimTime::from_secs(2), Ev::Tick(2));
            struct Canceller {
                target: EventHandle,
                seen: Vec<u32>,
            }
            impl Model for Canceller {
                type Event = Ev;
                fn handle(&mut self, ctx: &mut Context<'_, Ev>, event: Ev) {
                    if let Ev::Tick(n) = event {
                        self.seen.push(n);
                        if n == 0 {
                            ctx.cancel(self.target);
                        }
                    }
                }
            }
            engine.prime_at(SimTime::ZERO, Ev::Tick(0));
            let mut m = Canceller {
                target: h,
                seen: vec![],
            };
            engine.run(&mut m, None, 1_000);
            assert_eq!(m.seen, vec![0, 2], "{backend:?}");
        }
    }

    #[test]
    fn drained_queue_advances_to_until() {
        let mut engine = Engine::<Ev>::new(0);
        let end = engine.run(
            &mut Recorder {
                seen: vec![],
                reschedule: false,
            },
            Some(SimTime::from_secs(42)),
            10,
        );
        assert_eq!(end, SimTime::from_secs(42));
    }

    #[test]
    fn past_events_clamp_to_now() {
        struct PastScheduler {
            fired: Vec<SimTime>,
        }
        impl Model for PastScheduler {
            type Event = Ev;
            fn handle(&mut self, ctx: &mut Context<'_, Ev>, event: Ev) {
                self.fired.push(ctx.now());
                if matches!(event, Ev::Tick(0)) {
                    // Deliberately schedule "in the past".
                    ctx.schedule_at(SimTime::ZERO, Ev::Tick(1));
                }
            }
        }
        for backend in BACKENDS {
            let mut engine = Engine::new_with_backend(0, backend);
            engine.prime_at(SimTime::from_secs(5), Ev::Tick(0));
            let mut m = PastScheduler { fired: vec![] };
            engine.run(&mut m, None, 100);
            assert_eq!(
                m.fired,
                vec![SimTime::from_secs(5), SimTime::from_secs(5)],
                "{backend:?}"
            );
        }
    }

    /// Regression (ISSUE 4): the pre-fix loop decremented the budget
    /// *after* an `if budget == 0` check placed after the event was
    /// handled, so `max_events = N` processed N+1 events and
    /// `max_events = 0` still fired one. `max_events` is now exact.
    #[test]
    fn max_events_is_an_exact_bound() {
        for backend in BACKENDS {
            let mut engine = Engine::new_with_backend(0, backend);
            for n in 0..10 {
                engine.prime_at(SimTime::from_secs(n as u64), Ev::Tick(n));
            }
            let mut m = Recorder {
                seen: vec![],
                reschedule: false,
            };
            engine.run(&mut m, None, 3);
            assert_eq!(m.seen.len(), 3, "{backend:?}: max_events = 3 must fire 3");
            assert_eq!(engine.processed(), 3, "{backend:?}");

            // A zero budget must not fire anything at all.
            let mut engine = Engine::new_with_backend(0, backend);
            engine.prime_at(SimTime::ZERO, Ev::Tick(0));
            let mut m = Recorder {
                seen: vec![],
                reschedule: false,
            };
            engine.run(&mut m, None, 0);
            assert!(m.seen.is_empty(), "{backend:?}: max_events = 0 fired");
            assert_eq!(engine.processed(), 0, "{backend:?}");
            assert_eq!(engine.pending_events(), 1, "{backend:?}: event kept");
        }
    }

    /// Regression (ISSUE 4): budget exhaustion must resume cleanly — the
    /// events not yet processed stay queued for the next `run` call.
    #[test]
    fn budget_exhaustion_resumes_where_it_left_off() {
        for backend in BACKENDS {
            let mut engine = Engine::new_with_backend(0, backend);
            for n in 0..6 {
                engine.prime_at(SimTime::from_secs(n as u64), Ev::Tick(n));
            }
            let mut m = Recorder {
                seen: vec![],
                reschedule: false,
            };
            engine.run(&mut m, None, 2);
            assert_eq!(m.seen.len(), 2, "{backend:?}");
            engine.run(&mut m, None, 4);
            assert_eq!(m.seen.len(), 6, "{backend:?}");
            let order: Vec<u32> = m
                .seen
                .iter()
                .map(|(_, e)| match e {
                    Ev::Tick(n) => *n,
                    _ => 0,
                })
                .collect();
            assert_eq!(order, (0..6).collect::<Vec<_>>(), "{backend:?}");
        }
    }

    /// Regression (ISSUE 4): cancelling an already-fired handle used to
    /// leak one tombstone per call, forever. It is now a true no-op with
    /// zero residual bookkeeping, and a stale handle never cancels a
    /// different later event.
    #[test]
    fn cancel_after_fire_is_bounded_and_precise() {
        for backend in BACKENDS {
            let mut engine = Engine::new_with_backend(0, backend);
            let fired = engine.prime_at(SimTime::ZERO, Ev::Tick(0));
            let mut m = Recorder {
                seen: vec![],
                reschedule: false,
            };
            engine.run(&mut m, None, 10);
            assert_eq!(m.seen.len(), 1);
            // One million cancels of the fired handle: no memory may
            // accumulate anywhere in the queue.
            for _ in 0..1_000_000 {
                assert!(!engine.cancel(fired), "{backend:?}: stale cancel acted");
            }
            assert_eq!(engine.cancelled_backlog(), 0, "{backend:?}: leak");
            assert_eq!(engine.pending_events(), 0, "{backend:?}");
            // The stale handle must not be able to cancel later events,
            // even ones that reuse internal storage.
            engine.prime_at(SimTime::from_secs(1), Ev::Tick(1));
            engine.prime_at(SimTime::from_secs(2), Ev::Tick(2));
            assert!(!engine.cancel(fired), "{backend:?}");
            engine.run(&mut m, None, 10);
            assert_eq!(m.seen.len(), 3, "{backend:?}: a later event was lost");
        }
    }

    /// Regression (ISSUE 4): an event cancelled during a bounded run must
    /// not fire when a later `run` call resumes past the `until` limit
    /// (the old loop left tombstoned entries sitting in the heap across
    /// runs; the wheel removes them outright).
    #[test]
    fn resumed_runs_do_not_fire_events_cancelled_before_the_limit() {
        struct CancelAtOne {
            target: Option<EventHandle>,
            seen: Vec<u32>,
        }
        impl Model for CancelAtOne {
            type Event = Ev;
            fn handle(&mut self, ctx: &mut Context<'_, Ev>, event: Ev) {
                if let Ev::Tick(n) = event {
                    self.seen.push(n);
                    if n == 1 {
                        if let Some(h) = self.target.take() {
                            ctx.cancel(h);
                        }
                    }
                }
            }
        }
        for backend in BACKENDS {
            let mut engine = Engine::new_with_backend(0, backend);
            engine.prime_at(SimTime::from_secs(1), Ev::Tick(1));
            // Scheduled beyond the first run's limit, cancelled during it.
            let doomed = engine.prime_at(SimTime::from_secs(10), Ev::Tick(10));
            engine.prime_at(SimTime::from_secs(12), Ev::Tick(12));
            let mut m = CancelAtOne {
                target: Some(doomed),
                seen: vec![],
            };
            let end = engine.run(&mut m, Some(SimTime::from_secs(5)), 1_000);
            assert_eq!(end, SimTime::from_secs(5), "{backend:?}");
            assert_eq!(m.seen, vec![1], "{backend:?}");
            assert_eq!(engine.pending_events(), 1, "{backend:?}");
            // Resume past the cancelled event's time: it must not fire.
            let end = engine.run(&mut m, Some(SimTime::from_secs(20)), 1_000);
            assert_eq!(end, SimTime::from_secs(20), "{backend:?}");
            assert_eq!(m.seen, vec![1, 12], "{backend:?}: cancelled event fired");
            assert_eq!(engine.cancelled_backlog(), 0, "{backend:?}");
        }
    }

    /// Satellite (ISSUE 4): past-time clamping interacts with seq order —
    /// several events clamped to "now" fire in exactly their scheduling
    /// order, on both backends, whether primed or context-scheduled.
    #[test]
    fn clamped_events_fire_in_scheduling_order() {
        struct ClampScheduler {
            fired: Vec<u32>,
        }
        impl Model for ClampScheduler {
            type Event = Ev;
            fn handle(&mut self, ctx: &mut Context<'_, Ev>, event: Ev) {
                if let Ev::Tick(n) = event {
                    self.fired.push(n);
                    if n == 0 {
                        // All in the past → all clamp to now; must fire
                        // 1, 2, 3 in scheduling order.
                        ctx.schedule_at(SimTime::from_secs(2), Ev::Tick(1));
                        ctx.schedule_at(SimTime::ZERO, Ev::Tick(2));
                        ctx.schedule_at(SimTime::from_secs(1), Ev::Tick(3));
                    }
                }
            }
        }
        for backend in BACKENDS {
            let mut engine = Engine::new_with_backend(0, backend);
            engine.prime_at(SimTime::from_secs(5), Ev::Tick(0));
            let mut m = ClampScheduler { fired: vec![] };
            let end = engine.run(&mut m, None, 100);
            assert_eq!(m.fired, vec![0, 1, 2, 3], "{backend:?}");
            assert_eq!(end, SimTime::from_secs(5), "{backend:?}");

            // prime_at clamps identically once the clock has advanced.
            let mut engine = Engine::new_with_backend(0, backend);
            engine.prime_at(SimTime::from_secs(3), Ev::Tick(0));
            let mut m = ClampScheduler { fired: vec![] };
            engine.run(&mut m, Some(SimTime::from_secs(4)), 100);
            engine.prime_at(SimTime::ZERO, Ev::Tick(7)); // clamped to t=4
            engine.prime_at(SimTime::from_secs(2), Ev::Tick(8)); // also t=4
            engine.run(&mut m, None, 100);
            assert_eq!(m.fired, vec![0, 1, 2, 3, 7, 8], "{backend:?}");
        }
    }

    #[test]
    fn backend_accessors_report() {
        let wheel = Engine::<Ev>::new(0);
        assert_eq!(wheel.queue_backend(), QueueBackend::TimingWheel);
        let heap = Engine::<Ev>::new_with_backend(0, QueueBackend::ReferenceHeap);
        assert_eq!(heap.queue_backend(), QueueBackend::ReferenceHeap);
    }
}
