//! The discrete-event loop.
//!
//! [`Engine`] is generic over the model's event type `E`. The model is any
//! type implementing [`Model`]; on every event the engine hands it a
//! [`Context`] through which it can read the clock, schedule further events,
//! draw random numbers and stop the run.
//!
//! Event ordering is `(time, sequence)` where `sequence` is a monotonically
//! increasing insertion counter, so simultaneous events fire in the order
//! they were scheduled — the key to reproducible runs.

use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};
use crate::trace::TraceLog;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A simulation model: owns all domain state and reacts to events.
pub trait Model {
    /// The event alphabet of this model.
    type Event;

    /// Handles one event at the context's current time.
    fn handle(&mut self, ctx: &mut Context<'_, Self::Event>, event: Self::Event);
}

/// An observer the engine notifies as it processes events.
///
/// Probes let external crates (notably `gemini-telemetry`) watch the event
/// loop without the engine depending on them. All methods have empty
/// default bodies, so implementors override only what they need.
pub trait EngineProbe {
    /// Called after each event is handled, with the current time and the
    /// total number of events processed so far.
    fn on_event(&mut self, _now: SimTime, _processed: u64) {}

    /// Called once when [`Engine::run`] returns, with the final time and
    /// the total number of events processed.
    fn on_run_end(&mut self, _now: SimTime, _processed: u64) {}
}

/// Handle to a scheduled event, usable for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventHandle(u64);

struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The per-event view of the simulation handed to [`Model::handle`].
pub struct Context<'a, E> {
    now: SimTime,
    queue: &'a mut BinaryHeap<Scheduled<E>>,
    cancelled: &'a mut std::collections::HashSet<u64>,
    seq: &'a mut u64,
    rng: &'a mut DetRng,
    trace: &'a mut TraceLog,
    stop: &'a mut bool,
}

impl<'a, E> Context<'a, E> {
    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire at absolute time `at`. Events scheduled in
    /// the past fire "now" (they are clamped to the current time), which
    /// keeps the clock monotone.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventHandle {
        let at = at.max(self.now);
        let seq = *self.seq;
        *self.seq += 1;
        self.queue.push(Scheduled {
            time: at,
            seq,
            event,
        });
        EventHandle(seq)
    }

    /// Schedules `event` to fire `after` from now.
    pub fn schedule_after(&mut self, after: SimDuration, event: E) -> EventHandle {
        self.schedule_at(self.now + after, event)
    }

    /// Cancels a previously scheduled event. Cancelling an event that has
    /// already fired is a harmless no-op.
    pub fn cancel(&mut self, handle: EventHandle) {
        self.cancelled.insert(handle.0);
    }

    /// The deterministic RNG owned by the engine.
    pub fn rng(&mut self) -> &mut DetRng {
        self.rng
    }

    /// Records a trace line at the current time (no-op when tracing is off).
    pub fn trace(&mut self, line: impl FnOnce() -> String) {
        let now = self.now;
        self.trace.record(now, line);
    }

    /// Requests the run to stop after the current event returns.
    pub fn stop(&mut self) {
        *self.stop = true;
    }
}

/// A deterministic discrete-event engine.
///
/// # Examples
///
/// ```
/// use gemini_sim::{Context, Engine, Model, SimDuration, SimTime};
///
/// struct Counter(u32);
/// impl Model for Counter {
///     type Event = ();
///     fn handle(&mut self, ctx: &mut Context<'_, ()>, _event: ()) {
///         self.0 += 1;
///         if self.0 < 3 {
///             ctx.schedule_after(SimDuration::from_secs(10), ());
///         }
///     }
/// }
///
/// let mut engine = Engine::new(42);
/// engine.prime_at(SimTime::ZERO, ());
/// let mut model = Counter(0);
/// let end = engine.run(&mut model, None, 1_000);
/// assert_eq!(model.0, 3);
/// assert_eq!(end, SimTime::from_secs(20));
/// ```
pub struct Engine<E> {
    now: SimTime,
    queue: BinaryHeap<Scheduled<E>>,
    cancelled: std::collections::HashSet<u64>,
    seq: u64,
    rng: DetRng,
    trace: TraceLog,
    stop: bool,
    processed: u64,
    probe: Option<Box<dyn EngineProbe>>,
}

impl<E> Engine<E> {
    /// Creates an engine with the given root RNG seed.
    pub fn new(seed: u64) -> Self {
        Engine {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            cancelled: std::collections::HashSet::new(),
            seq: 0,
            rng: DetRng::new(seed),
            trace: TraceLog::disabled(),
            stop: false,
            processed: 0,
            probe: None,
        }
    }

    /// Enables trace capture (for debugging and the recovery-drill reports).
    pub fn with_trace(mut self) -> Self {
        self.trace = TraceLog::enabled();
        self
    }

    /// Attaches a probe that observes the event loop.
    pub fn with_probe(mut self, probe: Box<dyn EngineProbe>) -> Self {
        self.probe = Some(probe);
        self
    }

    /// Attaches a probe on an already-constructed engine.
    pub fn set_probe(&mut self, probe: Box<dyn EngineProbe>) {
        self.probe = Some(probe);
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// A view of the captured trace.
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Seeds an initial event at absolute time `at`.
    pub fn prime_at(&mut self, at: SimTime, event: E) -> EventHandle {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled {
            time: at.max(self.now),
            seq,
            event,
        });
        EventHandle(seq)
    }

    /// Seeds an initial event `after` from the current time.
    pub fn prime_after(&mut self, after: SimDuration, event: E) -> EventHandle {
        self.prime_at(self.now + after, event)
    }

    /// Runs until the queue drains, the model calls [`Context::stop`], the
    /// clock passes `until` (if given), or `max_events` is exceeded.
    /// Returns the time at which the run ended.
    pub fn run<M: Model<Event = E>>(
        &mut self,
        model: &mut M,
        until: Option<SimTime>,
        max_events: u64,
    ) -> SimTime {
        self.stop = false;
        let mut budget = max_events;
        while let Some(next) = self.queue.peek() {
            if let Some(limit) = until {
                if next.time > limit {
                    self.now = limit;
                    break;
                }
            }
            let sched = self.queue.pop().expect("peeked event exists");
            if self.cancelled.remove(&sched.seq) {
                continue;
            }
            debug_assert!(sched.time >= self.now, "event queue went backwards");
            self.now = sched.time;
            self.processed += 1;
            let mut ctx = Context {
                now: self.now,
                queue: &mut self.queue,
                cancelled: &mut self.cancelled,
                seq: &mut self.seq,
                rng: &mut self.rng,
                trace: &mut self.trace,
                stop: &mut self.stop,
            };
            model.handle(&mut ctx, sched.event);
            if let Some(probe) = self.probe.as_mut() {
                probe.on_event(self.now, self.processed);
            }
            if self.stop {
                break;
            }
            if budget == 0 {
                break;
            }
            budget -= 1;
        }
        if let Some(limit) = until {
            if self.queue.is_empty() && !self.stop && self.now < limit {
                self.now = limit;
            }
        }
        if let Some(probe) = self.probe.as_mut() {
            probe.on_run_end(self.now, self.processed);
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Clone)]
    enum Ev {
        Tick(u32),
        Stop,
    }

    struct Recorder {
        seen: Vec<(SimTime, Ev)>,
        reschedule: bool,
    }

    impl Model for Recorder {
        type Event = Ev;
        fn handle(&mut self, ctx: &mut Context<'_, Ev>, event: Ev) {
            self.seen.push((ctx.now(), event.clone()));
            match event {
                Ev::Tick(n) if self.reschedule && n < 5 => {
                    ctx.schedule_after(SimDuration::from_secs(1), Ev::Tick(n + 1));
                }
                Ev::Stop => ctx.stop(),
                _ => {}
            }
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut engine = Engine::new(0);
        engine.prime_at(SimTime::from_secs(3), Ev::Tick(3));
        engine.prime_at(SimTime::from_secs(1), Ev::Tick(1));
        engine.prime_at(SimTime::from_secs(2), Ev::Tick(2));
        let mut m = Recorder {
            seen: vec![],
            reschedule: false,
        };
        engine.run(&mut m, None, 1_000);
        let order: Vec<u32> = m
            .seen
            .iter()
            .map(|(_, e)| match e {
                Ev::Tick(n) => *n,
                _ => 0,
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        let mut engine = Engine::new(0);
        for n in 0..10 {
            engine.prime_at(SimTime::from_secs(1), Ev::Tick(n));
        }
        let mut m = Recorder {
            seen: vec![],
            reschedule: false,
        };
        engine.run(&mut m, None, 1_000);
        let order: Vec<u32> = m
            .seen
            .iter()
            .map(|(_, e)| match e {
                Ev::Tick(n) => *n,
                _ => 0,
            })
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn rescheduling_advances_clock() {
        let mut engine = Engine::new(0);
        engine.prime_at(SimTime::ZERO, Ev::Tick(0));
        let mut m = Recorder {
            seen: vec![],
            reschedule: true,
        };
        let end = engine.run(&mut m, None, 1_000);
        assert_eq!(m.seen.len(), 6);
        assert_eq!(end, SimTime::from_secs(5));
    }

    #[test]
    fn stop_halts_immediately() {
        let mut engine = Engine::new(0);
        engine.prime_at(SimTime::from_secs(1), Ev::Stop);
        engine.prime_at(SimTime::from_secs(2), Ev::Tick(2));
        let mut m = Recorder {
            seen: vec![],
            reschedule: false,
        };
        engine.run(&mut m, None, 1_000);
        assert_eq!(m.seen.len(), 1);
    }

    #[test]
    fn until_bound_respected() {
        let mut engine = Engine::new(0);
        engine.prime_at(SimTime::from_secs(1), Ev::Tick(1));
        engine.prime_at(SimTime::from_secs(10), Ev::Tick(10));
        let mut m = Recorder {
            seen: vec![],
            reschedule: false,
        };
        let end = engine.run(&mut m, Some(SimTime::from_secs(5)), 1_000);
        assert_eq!(m.seen.len(), 1);
        assert_eq!(end, SimTime::from_secs(5));
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut engine = Engine::new(0);
        let h = engine.prime_at(SimTime::from_secs(1), Ev::Tick(1));
        engine.prime_at(SimTime::from_secs(2), Ev::Tick(2));
        // Cancel via a wrapper model that cancels on first event? Simpler:
        // cancel before running by reaching into the cancellation set through
        // a scheduled closure is not possible, so test Context::cancel.
        struct Canceller {
            target: EventHandle,
            seen: Vec<u32>,
        }
        impl Model for Canceller {
            type Event = Ev;
            fn handle(&mut self, ctx: &mut Context<'_, Ev>, event: Ev) {
                if let Ev::Tick(n) = event {
                    self.seen.push(n);
                    if n == 0 {
                        ctx.cancel(self.target);
                    }
                }
            }
        }
        engine.prime_at(SimTime::ZERO, Ev::Tick(0));
        let mut m = Canceller {
            target: h,
            seen: vec![],
        };
        engine.run(&mut m, None, 1_000);
        assert_eq!(m.seen, vec![0, 2]);
    }

    #[test]
    fn drained_queue_advances_to_until() {
        let mut engine = Engine::<Ev>::new(0);
        let end = engine.run(
            &mut Recorder {
                seen: vec![],
                reschedule: false,
            },
            Some(SimTime::from_secs(42)),
            10,
        );
        assert_eq!(end, SimTime::from_secs(42));
    }

    #[test]
    fn past_events_clamp_to_now() {
        struct PastScheduler {
            fired: Vec<SimTime>,
        }
        impl Model for PastScheduler {
            type Event = Ev;
            fn handle(&mut self, ctx: &mut Context<'_, Ev>, event: Ev) {
                self.fired.push(ctx.now());
                if matches!(event, Ev::Tick(0)) {
                    // Deliberately schedule "in the past".
                    ctx.schedule_at(SimTime::ZERO, Ev::Tick(1));
                }
            }
        }
        let mut engine = Engine::new(0);
        engine.prime_at(SimTime::from_secs(5), Ev::Tick(0));
        let mut m = PastScheduler { fired: vec![] };
        engine.run(&mut m, None, 100);
        assert_eq!(m.fired, vec![SimTime::from_secs(5), SimTime::from_secs(5)]);
    }
}
