//! Integer nanosecond time base.
//!
//! All simulated clocks in the workspace use [`SimTime`] (an instant) and
//! [`SimDuration`] (a span). Both are thin wrappers over `u64` nanoseconds,
//! giving ~584 years of range — far beyond any training campaign we simulate —
//! while keeping arithmetic exact and platform-independent.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// Nanoseconds per second, as used by the conversions below.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// An instant on the simulated clock, measured in nanoseconds since the
/// start of the simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinity" sentinel
    /// (e.g. the unbounded final idle timespan in Algorithm 2 of the paper).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `secs` seconds after the simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * NANOS_PER_SEC)
    }

    /// Creates an instant from fractional seconds, saturating on overflow
    /// and clamping negative inputs to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(secs_f64_to_nanos(secs))
    }

    /// Creates an instant `mins` minutes after the simulation start.
    pub const fn from_mins(mins: u64) -> Self {
        SimTime(mins * 60 * NANOS_PER_SEC)
    }

    /// Creates an instant `hours` hours after the simulation start.
    pub const fn from_hours(hours: u64) -> Self {
        SimTime(hours * 3_600 * NANOS_PER_SEC)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (lossy beyond 2^53 ns).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// The duration elapsed since `earlier`, or zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The duration elapsed since `earlier`; `None` if `earlier` is later.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration (an "infinite" sentinel).
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * NANOS_PER_SEC)
    }

    /// Creates a duration from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60 * NANOS_PER_SEC)
    }

    /// Creates a duration from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3_600 * NANOS_PER_SEC)
    }

    /// Creates a duration from fractional seconds, saturating on overflow
    /// and clamping negative inputs to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(secs_f64_to_nanos(secs))
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds (lossy beyond 2^53 ns).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Whether the duration is exactly zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Saturating addition.
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Multiplies by a non-negative float factor, saturating on overflow.
    /// Useful for the paper's `γ` safety coefficient on profiled idle spans.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration(secs_f64_to_nanos(self.as_secs_f64() * factor))
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

/// Converts fractional seconds to saturated nanoseconds (negative → 0).
fn secs_f64_to_nanos(secs: f64) -> u64 {
    if !secs.is_finite() {
        return if secs > 0.0 { u64::MAX } else { 0 };
    }
    let nanos = (secs * NANOS_PER_SEC as f64).round();
    if nanos <= 0.0 {
        0
    } else if nanos >= u64::MAX as f64 {
        u64::MAX
    } else {
        nanos as u64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = f64;
    fn div(self, rhs: SimDuration) -> f64 {
        self.as_secs_f64() / rhs.as_secs_f64()
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", format_nanos(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_nanos(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_nanos(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_nanos(self.0))
    }
}

/// Human-readable rendering of a nanosecond count, picking the most natural
/// unit (ns / µs / ms / s / min / h).
fn format_nanos(nanos: u64) -> String {
    if nanos == u64::MAX {
        return "inf".to_string();
    }
    let secs = nanos as f64 / NANOS_PER_SEC as f64;
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.2}us", nanos as f64 / 1e3)
    } else if nanos < NANOS_PER_SEC {
        format!("{:.2}ms", nanos as f64 / 1e6)
    } else if secs < 120.0 {
        format!("{secs:.2}s")
    } else if secs < 7_200.0 {
        format!("{:.2}min", secs / 60.0)
    } else {
        format!("{:.2}h", secs / 3_600.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_roundtrip_and_ordering() {
        let a = SimTime::from_secs(3);
        let b = SimTime::from_secs_f64(3.5);
        assert!(a < b);
        assert_eq!((b - a).as_secs_f64(), 0.5);
        assert_eq!(a.as_nanos(), 3 * NANOS_PER_SEC);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_mins(2), SimDuration::from_secs(120));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_mins(60));
        assert_eq!(SimDuration::from_millis(1_500).as_secs_f64(), 1.5);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
    }

    #[test]
    fn saturating_arithmetic_never_wraps() {
        let big = SimTime::MAX;
        assert_eq!(big + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(SimTime::ZERO - SimDuration::from_secs(1), SimTime::ZERO);
        assert_eq!(
            SimDuration::MAX.saturating_add(SimDuration::from_secs(1)),
            SimDuration::MAX
        );
    }

    #[test]
    fn negative_and_nonfinite_float_seconds_clamp() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
        assert_eq!(SimTime::from_secs_f64(-0.5), SimTime::ZERO);
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.mul_f64(0.8), SimDuration::from_secs(8));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn division_gives_ratio() {
        let d = SimDuration::from_secs(10);
        let e = SimDuration::from_secs(4);
        assert!((d / e - 2.5).abs() < 1e-12);
        assert_eq!(d / 2u64, SimDuration::from_secs(5));
    }

    #[test]
    fn display_picks_reasonable_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_secs(90)), "90.00s");
        assert_eq!(format!("{}", SimDuration::from_mins(5)), "5.00min");
        assert_eq!(format!("{}", SimDuration::from_hours(3)), "3.00h");
        assert_eq!(format!("{}", SimDuration::MAX), "inf");
    }

    #[test]
    fn since_helpers() {
        let a = SimTime::from_secs(5);
        let b = SimTime::from_secs(8);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(3));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(a.checked_since(b), None);
        assert_eq!(b.checked_since(a), Some(SimDuration::from_secs(3)));
    }
}
