//! Lightweight trace capture for simulation debugging and reports.
//!
//! The recovery-drill experiment (paper Fig. 14) renders its timeline from
//! this log. Tracing is off by default; when disabled, record closures are
//! never evaluated.

use crate::time::SimTime;

/// One captured trace record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// When the record was emitted.
    pub time: SimTime,
    /// Free-form message.
    pub message: String,
}

/// An append-only, optionally-enabled trace log.
#[derive(Clone, Debug, Default)]
pub struct TraceLog {
    enabled: bool,
    records: Vec<TraceRecord>,
}

impl TraceLog {
    /// A log that captures records.
    pub fn enabled() -> Self {
        TraceLog {
            enabled: true,
            records: Vec::new(),
        }
    }

    /// A log that drops everything (the default).
    pub fn disabled() -> Self {
        TraceLog::default()
    }

    /// Whether capture is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a message at `time`. The closure is only evaluated when the
    /// log is enabled, so formatting cost is zero in production runs.
    pub fn record(&mut self, time: SimTime, message: impl FnOnce() -> String) {
        if self.enabled {
            self.records.push(TraceRecord {
                time,
                message: message(),
            });
        }
    }

    /// All captured records in emission order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Records whose message contains `needle`.
    pub fn find(&self, needle: &str) -> Vec<&TraceRecord> {
        self.records
            .iter()
            .filter(|r| r.message.contains(needle))
            .collect()
    }

    /// Renders the log as one line per record.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&format!("[{}] {}\n", r.time, r.message));
        }
        out
    }

    /// Drops all captured records, keeping the enabled flag.
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_never_evaluates_closure() {
        let mut log = TraceLog::disabled();
        let mut evaluated = false;
        log.record(SimTime::ZERO, || {
            evaluated = true;
            "x".into()
        });
        assert!(!evaluated);
        assert!(log.records().is_empty());
    }

    #[test]
    fn enabled_log_captures_in_order() {
        let mut log = TraceLog::enabled();
        log.record(SimTime::from_secs(1), || "first".into());
        log.record(SimTime::from_secs(2), || "second".into());
        assert_eq!(log.records().len(), 2);
        assert_eq!(log.records()[0].message, "first");
        assert!(log.render().contains("second"));
    }

    #[test]
    fn find_filters_by_substring() {
        let mut log = TraceLog::enabled();
        log.record(SimTime::ZERO, || "ckpt start".into());
        log.record(SimTime::ZERO, || "failure detected".into());
        log.record(SimTime::ZERO, || "ckpt end".into());
        assert_eq!(log.find("ckpt").len(), 2);
        assert_eq!(log.find("nothing").len(), 0);
    }

    #[test]
    fn clear_keeps_enabled() {
        let mut log = TraceLog::enabled();
        log.record(SimTime::ZERO, || "x".into());
        log.clear();
        assert!(log.records().is_empty());
        assert!(log.is_enabled());
    }
}
