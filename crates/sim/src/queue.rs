//! Indexed event queues for the discrete-event engine.
//!
//! The engine's hot path is `schedule → pop → (maybe) cancel`, repeated
//! hundreds of millions of times across recovery drills, chaos plans and
//! fig15-style DES campaigns. Two backends implement the [`EventQueue`]
//! contract:
//!
//! * [`TimingWheelQueue`] — the production backend: a hierarchical
//!   timing wheel (11 levels × 64 slots over the full `u64`-nanosecond
//!   range) backed by slab-allocated event nodes. `schedule` is O(1),
//!   `cancel` is a **true O(1) removal** (the [`EventHandle`] carries the
//!   slab index and a generation token — no tombstones, no leak), and
//!   `pop` is amortized O(1): the cursor jumps straight to the next
//!   occupied slot via per-level occupancy bitmaps, cascading coarse
//!   slots down as simulated time advances.
//! * [`ReferenceHeapQueue`] — the original `BinaryHeap` kept as the
//!   executable specification. Its historic tombstone leak is fixed (a
//!   cancel of an already-fired or already-cancelled handle is a no-op;
//!   tombstones are bounded by the number of *pending* cancelled
//!   events), but it still pays O(log n) per operation and a tombstone
//!   pass on pop. The differential proptest in
//!   `crates/sim/tests/queue_differential.rs` proves both backends
//!   produce byte-identical pop order, final clock and trace output
//!   under randomized schedule/cancel/run interleavings.
//!
//! # Ordering contract
//!
//! Both backends pop events in exact `(time, seq)` order, where `seq` is
//! the engine's monotone insertion counter. The wheel restores this total
//! order even when same-timestamp events reach the innermost level by
//! different routes (direct insert vs cascade): a level-0 slot holds
//! exactly one timestamp, and its nodes are seq-sorted once when the slot
//! is drained into the ready run.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Handle to a scheduled event, usable for cancellation.
///
/// Handles are backend-specific capabilities: the wheel encodes the slab
/// slot and a generation token so a stale handle (one whose event already
/// fired or was already cancelled) can never cancel a *different* event
/// that later reuses the same slot.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventHandle {
    /// Engine-wide insertion sequence of the event (unique, never reused).
    seq: u64,
    /// Slab slot (wheel backend) or `u32::MAX` (heap backend).
    slot: u32,
    /// Slot generation at scheduling time (wheel backend).
    token: u32,
}

impl EventHandle {
    fn heap(seq: u64) -> EventHandle {
        EventHandle {
            seq,
            slot: u32::MAX,
            token: 0,
        }
    }

    fn wheel(seq: u64, slot: u32, token: u32) -> EventHandle {
        EventHandle { seq, slot, token }
    }

    /// The engine-wide insertion sequence this handle refers to.
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

/// Which queue implementation an `Engine` runs on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum QueueBackend {
    /// The indexed hierarchical timing wheel (production default).
    #[default]
    TimingWheel,
    /// The original binary heap, kept as the reference implementation.
    ReferenceHeap,
}

/// The pending-event set of a discrete-event engine.
///
/// Implementations must pop events in exact `(time, seq)` order and must
/// treat a cancel of a fired/cancelled/foreign handle as a no-op that
/// consumes no memory.
pub trait EventQueue<E> {
    /// Inserts `event` at `time` with the engine-assigned sequence `seq`.
    /// `seq` values must be strictly increasing across calls and `time`
    /// must be `>=` the time of the most recently popped event.
    fn schedule(&mut self, time: SimTime, seq: u64, event: E) -> EventHandle;

    /// Removes a pending event. Returns `true` if the handle named a
    /// still-pending event that is now removed; `false` (a true no-op)
    /// for fired, already-cancelled or foreign handles.
    fn cancel(&mut self, handle: EventHandle) -> bool;

    /// The timestamp of the next live event, if any. May advance internal
    /// bookkeeping (wheel cascades) but never changes the pop order.
    fn next_time(&mut self) -> Option<SimTime>;

    /// Removes and returns the earliest live event as `(time, seq, event)`.
    fn pop(&mut self) -> Option<(SimTime, u64, E)>;

    /// Number of live (scheduled, not fired, not cancelled) events.
    fn len(&self) -> usize;

    /// Whether no live events remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cancellation bookkeeping still held: tombstones awaiting their pop
    /// (heap) or cancelled nodes awaiting a lazy free in the current
    /// same-timestamp batch (wheel). Bounded by `len()` in both backends —
    /// the historic unbounded tombstone leak is structurally impossible.
    fn cancelled_backlog(&self) -> usize;
}

/// Mutable references forward to the underlying queue, so drivers that only
/// borrow a backend (differential harnesses, pooled engines) satisfy the
/// trait bound without moving the queue.
impl<E, Q: EventQueue<E> + ?Sized> EventQueue<E> for &mut Q {
    fn schedule(&mut self, time: SimTime, seq: u64, event: E) -> EventHandle {
        (**self).schedule(time, seq, event)
    }
    fn cancel(&mut self, handle: EventHandle) -> bool {
        (**self).cancel(handle)
    }
    fn next_time(&mut self) -> Option<SimTime> {
        (**self).next_time()
    }
    fn pop(&mut self) -> Option<(SimTime, u64, E)> {
        (**self).pop()
    }
    fn len(&self) -> usize {
        (**self).len()
    }
    fn cancelled_backlog(&self) -> usize {
        (**self).cancelled_backlog()
    }
}

// --------------------------------------------------------------------------
// Reference implementation: binary heap + bounded tombstones.
// --------------------------------------------------------------------------

struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The original `BinaryHeap` scheduler, retained as the executable
/// specification for the timing wheel.
///
/// Unlike the historic engine-internal version, cancellation is precise:
/// a `live` set tracks pending sequences, so cancelling a fired or stale
/// handle inserts **no** tombstone (the old version leaked one `HashSet`
/// entry per such call, forever).
pub struct ReferenceHeapQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    /// Sequences scheduled and not yet fired or cancelled.
    live: HashSet<u64>,
    /// Sequences cancelled while still queued; consumed on pop.
    tombstones: HashSet<u64>,
}

impl<E> Default for ReferenceHeapQueue<E> {
    fn default() -> Self {
        ReferenceHeapQueue::new()
    }
}

impl<E> ReferenceHeapQueue<E> {
    /// An empty queue.
    pub fn new() -> ReferenceHeapQueue<E> {
        ReferenceHeapQueue {
            heap: BinaryHeap::new(),
            live: HashSet::new(),
            tombstones: HashSet::new(),
        }
    }

    /// Discards cancelled entries sitting at the top of the heap so that
    /// `peek` sees a live event.
    fn skim(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.tombstones.remove(&top.seq) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

impl<E> EventQueue<E> for ReferenceHeapQueue<E> {
    fn schedule(&mut self, time: SimTime, seq: u64, event: E) -> EventHandle {
        self.live.insert(seq);
        self.heap.push(Scheduled { time, seq, event });
        EventHandle::heap(seq)
    }

    fn cancel(&mut self, handle: EventHandle) -> bool {
        // Only a still-live sequence earns a tombstone: cancelling a
        // fired or doubly-cancelled handle is a true no-op, so tombstone
        // memory is bounded by the number of pending events.
        if self.live.remove(&handle.seq) {
            self.tombstones.insert(handle.seq);
            true
        } else {
            false
        }
    }

    fn next_time(&mut self) -> Option<SimTime> {
        self.skim();
        self.heap.peek().map(|s| s.time)
    }

    fn pop(&mut self) -> Option<(SimTime, u64, E)> {
        self.skim();
        let sched = self.heap.pop()?;
        self.live.remove(&sched.seq);
        Some((sched.time, sched.seq, sched.event))
    }

    fn len(&self) -> usize {
        self.live.len()
    }

    fn cancelled_backlog(&self) -> usize {
        self.tombstones.len()
    }
}

// --------------------------------------------------------------------------
// Production implementation: hierarchical timing wheel over a node slab.
// --------------------------------------------------------------------------

/// log2 of the slot count per level.
const SLOT_BITS: u32 = 6;
/// Slots per wheel level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels: ceil(64 / 6) = 11 covers the full `u64` nanosecond range.
const LEVELS: usize = 11;
/// Total buckets across all levels.
const BUCKETS: usize = LEVELS * SLOTS;
/// Null link / free-node marker.
const NIL: u32 = u32::MAX;
/// Bucket tag for nodes staged in the ready run.
const READY: u32 = u32::MAX - 1;

struct Node<E> {
    time: SimTime,
    seq: u64,
    /// `Some` while live; taken on fire or cancel.
    event: Option<E>,
    prev: u32,
    next: u32,
    /// Bumped every time the slot is freed, invalidating old handles.
    gen: u32,
    /// `level * SLOTS + slot` when linked, [`READY`] when staged,
    /// [`NIL`] when free.
    bucket: u32,
}

/// The indexed hierarchical timing wheel (see module docs).
pub struct TimingWheelQueue<E> {
    nodes: Vec<Node<E>>,
    free: Vec<u32>,
    heads: Vec<u32>,
    tails: Vec<u32>,
    /// One occupancy bitmap per level; bit `s` set iff bucket `(l, s)`
    /// holds at least one node.
    occupancy: [u64; LEVELS],
    /// The wheel's notion of "now", in nanoseconds: the timestamp of the
    /// most recently drained level-0 slot. Never exceeds any queued time.
    cursor: u64,
    /// The seq-sorted batch of nodes at `cursor`, drained from level 0.
    ready: Vec<u32>,
    ready_pos: usize,
    /// Live events (scheduled, not fired, not cancelled).
    len: usize,
    /// Cancelled-while-staged nodes awaiting their lazy free.
    deferred: usize,
}

impl<E> Default for TimingWheelQueue<E> {
    fn default() -> Self {
        TimingWheelQueue::new()
    }
}

impl<E> TimingWheelQueue<E> {
    /// An empty wheel with its cursor at the simulation start.
    pub fn new() -> TimingWheelQueue<E> {
        TimingWheelQueue {
            nodes: Vec::new(),
            free: Vec::new(),
            heads: vec![NIL; BUCKETS],
            tails: vec![NIL; BUCKETS],
            occupancy: [0; LEVELS],
            cursor: 0,
            ready: Vec::new(),
            ready_pos: 0,
            len: 0,
            deferred: 0,
        }
    }

    /// Number of slab slots ever allocated (capacity watermark, for the
    /// bounded-memory tests: it tracks peak concurrency, not call count).
    pub fn slab_capacity(&self) -> usize {
        self.nodes.len()
    }

    /// The level whose slot resolution separates `t` from the cursor.
    #[inline]
    fn level_for(cursor: u64, t: u64) -> usize {
        let diff = cursor ^ t;
        if diff == 0 {
            0
        } else {
            (63 - diff.leading_zeros()) as usize / SLOT_BITS as usize
        }
    }

    /// The absolute start time of bucket `(level, slot)` relative to the
    /// current cursor rotation.
    #[inline]
    fn slot_base(cursor: u64, level: usize, slot: usize) -> u64 {
        let lo = SLOT_BITS * level as u32;
        let hi = lo + SLOT_BITS;
        let upper = if hi >= 64 { 0 } else { (cursor >> hi) << hi };
        upper | ((slot as u64) << lo)
    }

    fn alloc(&mut self, time: SimTime, seq: u64, event: E) -> u32 {
        if let Some(idx) = self.free.pop() {
            let node = &mut self.nodes[idx as usize];
            node.time = time;
            node.seq = seq;
            node.event = Some(event);
            node.prev = NIL;
            node.next = NIL;
            debug_assert_eq!(node.bucket, NIL);
            idx
        } else {
            let idx = self.nodes.len() as u32;
            self.nodes.push(Node {
                time,
                seq,
                event: Some(event),
                prev: NIL,
                next: NIL,
                gen: 0,
                bucket: NIL,
            });
            idx
        }
    }

    /// Returns the slot to the free list, invalidating outstanding handles.
    fn release(&mut self, idx: u32) {
        let node = &mut self.nodes[idx as usize];
        node.gen = node.gen.wrapping_add(1);
        node.bucket = NIL;
        node.event = None;
        node.prev = NIL;
        node.next = NIL;
        self.free.push(idx);
    }

    /// Appends node `idx` to the bucket its time falls into.
    fn link(&mut self, idx: u32) {
        let t = self.nodes[idx as usize].time.as_nanos();
        debug_assert!(t >= self.cursor, "linking into the past");
        let level = Self::level_for(self.cursor, t);
        let slot = ((t >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        let bucket = level * SLOTS + slot;
        let tail = self.tails[bucket];
        {
            let node = &mut self.nodes[idx as usize];
            node.bucket = bucket as u32;
            node.prev = tail;
            node.next = NIL;
        }
        if tail == NIL {
            self.heads[bucket] = idx;
        } else {
            self.nodes[tail as usize].next = idx;
        }
        self.tails[bucket] = idx;
        self.occupancy[level] |= 1u64 << slot;
    }

    /// Unlinks a bucket-resident node in O(1).
    fn unlink(&mut self, idx: u32) {
        let (bucket, prev, next) = {
            let node = &self.nodes[idx as usize];
            (node.bucket as usize, node.prev, node.next)
        };
        debug_assert!(bucket < BUCKETS);
        if prev == NIL {
            self.heads[bucket] = next;
        } else {
            self.nodes[prev as usize].next = next;
        }
        if next == NIL {
            self.tails[bucket] = prev;
        } else {
            self.nodes[next as usize].prev = prev;
        }
        if self.heads[bucket] == NIL {
            self.occupancy[bucket / SLOTS] &= !(1u64 << (bucket % SLOTS));
        }
    }

    /// Moves the whole bucket `(level, slot)` down the hierarchy after
    /// advancing the cursor to the bucket's base time.
    fn cascade(&mut self, level: usize, slot: usize) {
        let base = Self::slot_base(self.cursor, level, slot);
        debug_assert!(base >= self.cursor, "cascade went backwards");
        self.cursor = base;
        let bucket = level * SLOTS + slot;
        let mut idx = self.heads[bucket];
        self.heads[bucket] = NIL;
        self.tails[bucket] = NIL;
        self.occupancy[level] &= !(1u64 << slot);
        while idx != NIL {
            let next = self.nodes[idx as usize].next;
            self.link(idx);
            idx = next;
        }
    }

    /// Drains level-0 slot `slot` (a single timestamp) into the ready run,
    /// seq-sorted so the `(time, seq)` total order holds regardless of how
    /// each node reached the innermost level.
    fn drain_level0(&mut self, slot: usize) {
        debug_assert!(self.ready_pos >= self.ready.len());
        self.ready.clear();
        self.ready_pos = 0;
        let mut idx = self.heads[slot];
        self.heads[slot] = NIL;
        self.tails[slot] = NIL;
        self.occupancy[0] &= !(1u64 << slot);
        while idx != NIL {
            let node = &mut self.nodes[idx as usize];
            let next = node.next;
            node.bucket = READY;
            node.prev = NIL;
            node.next = NIL;
            self.ready.push(idx);
            idx = next;
        }
        let Self { ready, nodes, .. } = self;
        ready.sort_unstable_by_key(|&i| nodes[i as usize].seq);
    }

    /// Advances the wheel until the front of the ready run is a live node
    /// at the earliest pending timestamp, returning that timestamp.
    fn settle(&mut self) -> Option<SimTime> {
        loop {
            while self.ready_pos < self.ready.len() {
                let idx = self.ready[self.ready_pos];
                if self.nodes[idx as usize].event.is_some() {
                    return Some(SimTime::from_nanos(self.cursor));
                }
                // Cancelled while staged: free it now.
                self.ready_pos += 1;
                self.deferred -= 1;
                self.release(idx);
            }
            self.ready.clear();
            self.ready_pos = 0;
            if self.len == 0 {
                return None;
            }
            if self.occupancy[0] != 0 {
                let slot = self.occupancy[0].trailing_zeros() as usize;
                let time = (self.cursor & !(SLOTS as u64 - 1)) | slot as u64;
                debug_assert!(time >= self.cursor, "level-0 slot behind the cursor");
                self.cursor = time;
                self.drain_level0(slot);
                continue;
            }
            let level = (1..LEVELS)
                .find(|&l| self.occupancy[l] != 0)
                .expect("len > 0 implies an occupied bucket");
            let slot = self.occupancy[level].trailing_zeros() as usize;
            self.cascade(level, slot);
        }
    }
}

impl<E> EventQueue<E> for TimingWheelQueue<E> {
    fn schedule(&mut self, time: SimTime, seq: u64, event: E) -> EventHandle {
        // The engine clamps to `now >= cursor`; clamp defensively so a
        // direct user of the queue cannot corrupt the wheel invariants.
        let time = time.max(SimTime::from_nanos(self.cursor));
        let idx = self.alloc(time, seq, event);
        self.link(idx);
        self.len += 1;
        let token = self.nodes[idx as usize].gen;
        EventHandle::wheel(seq, idx, token)
    }

    fn cancel(&mut self, handle: EventHandle) -> bool {
        let idx = handle.slot as usize;
        let Some(node) = self.nodes.get(idx) else {
            return false;
        };
        // A valid handle names a slot whose generation still matches,
        // holding a live event with the same sequence. Anything else —
        // fired, already cancelled, or a reused slot — is a no-op.
        if node.gen != handle.token || node.seq != handle.seq || node.event.is_none() {
            return false;
        }
        match node.bucket {
            NIL => false,
            READY => {
                // Staged in the current same-timestamp batch: drop the
                // payload now, free the slot lazily when the run drains.
                self.nodes[idx].event = None;
                self.deferred += 1;
                self.len -= 1;
                true
            }
            _ => {
                self.unlink(handle.slot);
                self.release(handle.slot);
                self.len -= 1;
                true
            }
        }
    }

    fn next_time(&mut self) -> Option<SimTime> {
        self.settle()
    }

    fn pop(&mut self) -> Option<(SimTime, u64, E)> {
        let time = self.settle()?;
        let idx = self.ready[self.ready_pos];
        self.ready_pos += 1;
        let node = &mut self.nodes[idx as usize];
        debug_assert_eq!(node.time, time);
        let seq = node.seq;
        let event = node.event.take().expect("settle fronted a live node");
        self.release(idx);
        self.len -= 1;
        Some((time, seq, event))
    }

    fn len(&self) -> usize {
        self.len
    }

    fn cancelled_backlog(&self) -> usize {
        self.deferred
    }
}

// --------------------------------------------------------------------------
// Engine-internal backend dispatch (static, branch-predictable).
// --------------------------------------------------------------------------

pub(crate) enum QueueImpl<E> {
    Wheel(TimingWheelQueue<E>),
    Heap(ReferenceHeapQueue<E>),
}

impl<E> QueueImpl<E> {
    pub(crate) fn new(backend: QueueBackend) -> QueueImpl<E> {
        match backend {
            QueueBackend::TimingWheel => QueueImpl::Wheel(TimingWheelQueue::new()),
            QueueBackend::ReferenceHeap => QueueImpl::Heap(ReferenceHeapQueue::new()),
        }
    }

    pub(crate) fn backend(&self) -> QueueBackend {
        match self {
            QueueImpl::Wheel(_) => QueueBackend::TimingWheel,
            QueueImpl::Heap(_) => QueueBackend::ReferenceHeap,
        }
    }
}

impl<E> EventQueue<E> for QueueImpl<E> {
    fn schedule(&mut self, time: SimTime, seq: u64, event: E) -> EventHandle {
        match self {
            QueueImpl::Wheel(q) => q.schedule(time, seq, event),
            QueueImpl::Heap(q) => q.schedule(time, seq, event),
        }
    }

    fn cancel(&mut self, handle: EventHandle) -> bool {
        match self {
            QueueImpl::Wheel(q) => q.cancel(handle),
            QueueImpl::Heap(q) => q.cancel(handle),
        }
    }

    fn next_time(&mut self) -> Option<SimTime> {
        match self {
            QueueImpl::Wheel(q) => q.next_time(),
            QueueImpl::Heap(q) => q.next_time(),
        }
    }

    fn pop(&mut self) -> Option<(SimTime, u64, E)> {
        match self {
            QueueImpl::Wheel(q) => q.pop(),
            QueueImpl::Heap(q) => q.pop(),
        }
    }

    fn len(&self) -> usize {
        match self {
            QueueImpl::Wheel(q) => q.len(),
            QueueImpl::Heap(q) => q.len(),
        }
    }

    fn cancelled_backlog(&self) -> usize {
        match self {
            QueueImpl::Wheel(q) => q.cancelled_backlog(),
            QueueImpl::Heap(q) => q.cancelled_backlog(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    /// Drains a queue completely, returning `(time, seq)` pairs.
    fn drain<E, Q: EventQueue<E>>(q: &mut Q) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some((time, seq, _)) = q.pop() {
            out.push((time.as_nanos(), seq));
        }
        out
    }

    fn backends() -> (TimingWheelQueue<u32>, ReferenceHeapQueue<u32>) {
        (TimingWheelQueue::new(), ReferenceHeapQueue::new())
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let times = [
            5u64,
            1,
            1,
            100,
            64,
            63,
            65,
            4096,
            4095,
            1 << 30,
            (1 << 30) + 1,
            u64::MAX,
            u64::MAX - 1,
            0,
        ];
        let (mut w, mut h) = backends();
        for (seq, &tm) in times.iter().enumerate() {
            w.schedule(t(tm), seq as u64, seq as u32);
            h.schedule(t(tm), seq as u64, seq as u32);
        }
        let expect = {
            let mut v: Vec<(u64, u64)> = times
                .iter()
                .enumerate()
                .map(|(s, &tm)| (tm, s as u64))
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(drain(&mut w), expect);
        assert_eq!(drain(&mut h), expect);
    }

    #[test]
    fn cancel_removes_only_the_named_event() {
        let (mut w, mut h) = backends();
        let hw = w.schedule(t(10), 0, 0);
        w.schedule(t(10), 1, 1);
        let hh = h.schedule(t(10), 0, 0);
        h.schedule(t(10), 1, 1);
        assert!(w.cancel(hw));
        assert!(h.cancel(hh));
        assert_eq!(drain(&mut w), vec![(10, 1)]);
        assert_eq!(drain(&mut h), vec![(10, 1)]);
    }

    #[test]
    fn stale_cancel_is_a_true_noop() {
        let (mut w, mut h) = backends();
        let hw = w.schedule(t(1), 0, 0);
        let hh = h.schedule(t(1), 0, 0);
        assert_eq!(w.pop().unwrap().1, 0);
        assert_eq!(h.pop().unwrap().1, 0);
        for _ in 0..10_000 {
            assert!(!w.cancel(hw));
            assert!(!h.cancel(hh));
        }
        assert_eq!(w.cancelled_backlog(), 0);
        assert_eq!(h.cancelled_backlog(), 0);
        assert_eq!(w.len(), 0);
        assert_eq!(h.len(), 0);
    }

    #[test]
    fn stale_wheel_handle_cannot_cancel_a_slot_reuser() {
        let mut w = TimingWheelQueue::new();
        let stale = w.schedule(t(1), 0, 0u32);
        w.pop().unwrap(); // slot 0 freed, generation bumped
        w.schedule(t(2), 1, 1); // reuses slab slot 0
        assert!(!w.cancel(stale), "stale handle must not hit the reuser");
        assert_eq!(drain(&mut w), vec![(2, 1)]);
    }

    #[test]
    fn double_cancel_counts_once() {
        let (mut w, mut h) = backends();
        let hw = w.schedule(t(5), 0, 0);
        let hh = h.schedule(t(5), 0, 0);
        assert!(w.cancel(hw));
        assert!(!w.cancel(hw));
        assert!(h.cancel(hh));
        assert!(!h.cancel(hh));
        assert!(w.is_empty());
        assert!(h.is_empty());
    }

    #[test]
    fn heap_tombstones_bounded_by_pending_cancels() {
        let mut h = ReferenceHeapQueue::new();
        let handle = h.schedule(t(1), 0, 0u32);
        h.pop().unwrap();
        for _ in 0..1_000 {
            h.cancel(handle);
        }
        assert_eq!(h.cancelled_backlog(), 0, "stale cancels must not leak");
        let pending = h.schedule(t(2), 1, 1);
        h.cancel(pending);
        assert_eq!(h.cancelled_backlog(), 1, "one pending tombstone");
        assert!(h.pop().is_none());
        assert_eq!(h.cancelled_backlog(), 0, "tombstone consumed by pop");
    }

    #[test]
    fn wheel_slab_reuses_slots() {
        let mut w = TimingWheelQueue::new();
        for round in 0..1_000u64 {
            let h = w.schedule(t(round), round * 2, 0u32);
            w.schedule(t(round), round * 2 + 1, 1u32);
            w.cancel(h);
            w.pop().unwrap();
        }
        assert!(
            w.slab_capacity() <= 4,
            "slab grew to {} despite peak concurrency 2",
            w.slab_capacity()
        );
    }

    #[test]
    fn cancel_while_staged_in_ready_run() {
        let mut w = TimingWheelQueue::new();
        let a = w.schedule(t(7), 0, 0u32);
        let _b = w.schedule(t(7), 1, 1u32);
        // Settle stages both at t=7; then cancel the front one.
        assert_eq!(w.next_time(), Some(t(7)));
        assert!(w.cancel(a));
        assert_eq!(w.cancelled_backlog(), 1);
        assert_eq!(w.pop().unwrap().1, 1);
        assert_eq!(w.cancelled_backlog(), 0, "deferred free happened");
        assert!(w.pop().is_none());
    }

    #[test]
    fn same_timestamp_via_different_routes_stays_seq_ordered() {
        // seq 0 is scheduled far ahead (coarse level), seq 1 at the same
        // absolute time but scheduled after the cursor moved close (level
        // 0). The drain sort must still fire 0 before 1.
        let mut w = TimingWheelQueue::new();
        let target = 1_000_000u64;
        w.schedule(t(target), 0, 0u32);
        w.schedule(t(target - 100_000), 1, 1u32);
        let (ti, seq, _) = w.pop().unwrap();
        assert_eq!((ti.as_nanos(), seq), (target - 100_000, 1));
        // Cursor now sits 100_000 ns before target; this insert lands in
        // a finer level than seq 0 originally did.
        w.schedule(t(target), 2, 2u32);
        assert_eq!(drain(&mut w), vec![(target, 0), (target, 2)]);
    }

    #[test]
    fn far_future_and_max_times() {
        let mut w = TimingWheelQueue::new();
        w.schedule(SimTime::MAX, 0, 0u32);
        w.schedule(t(1), 1, 1u32);
        w.schedule(SimTime::from_hours(1_000), 2, 2u32);
        assert_eq!(
            drain(&mut w),
            vec![
                (1, 1),
                (SimTime::from_hours(1_000).as_nanos(), 2),
                (u64::MAX, 0)
            ]
        );
    }

    #[test]
    fn next_time_matches_pop() {
        let (mut w, mut h) = backends();
        for (seq, tm) in [(0u64, 300u64), (1, 5), (2, 5), (3, 1 << 40)] {
            w.schedule(t(tm), seq, seq as u32);
            h.schedule(t(tm), seq, seq as u32);
        }
        while let Some(nt) = w.next_time() {
            let hp = h.next_time().unwrap();
            assert_eq!(nt, hp);
            assert_eq!(w.pop().unwrap().0, nt);
            assert_eq!(h.pop().unwrap().0, nt);
        }
        assert!(h.next_time().is_none());
    }

    #[test]
    fn level_math_is_sound() {
        assert_eq!(TimingWheelQueue::<u32>::level_for(0, 0), 0);
        assert_eq!(TimingWheelQueue::<u32>::level_for(0, 63), 0);
        assert_eq!(TimingWheelQueue::<u32>::level_for(0, 64), 1);
        assert_eq!(TimingWheelQueue::<u32>::level_for(0, u64::MAX), 10);
        assert_eq!(TimingWheelQueue::<u32>::level_for(100, 100), 0);
        // Slot bases never precede the cursor for ahead-of-cursor slots.
        // The top level only has 2^(64 - 60) = 16 addressable slots.
        let cursor = 0xDEAD_BEEF_u64;
        for level in 0..LEVELS {
            let lo = SLOT_BITS * level as u32;
            let max_slot = if lo + SLOT_BITS > 64 {
                1 << (64 - lo)
            } else {
                SLOTS
            };
            let cur_slot = ((cursor >> lo) & (SLOTS as u64 - 1)) as usize;
            for slot in (cur_slot + 1)..max_slot {
                assert!(TimingWheelQueue::<u32>::slot_base(cursor, level, slot) >= cursor);
            }
        }
    }
}
