//! Deterministic discrete-event simulation kernel for the GEMINI reproduction.
//!
//! This crate provides the time base, event queue, deterministic random-number
//! streams, timeline algebra and statistics collectors shared by every other
//! crate in the workspace. It is intentionally free of any GEMINI-specific
//! policy: it only knows about *time*, *events* and *measurements*.
//!
//! # Design
//!
//! * [`SimTime`] and [`SimDuration`] are integer nanosecond types, so every
//!   simulation is exactly reproducible across platforms (no floating-point
//!   clock drift).
//! * [`Engine`] is a discrete-event loop, generic over the user's event
//!   type, running on a pluggable [`EventQueue`]: an indexed hierarchical
//!   timing wheel by default (O(1) schedule, true O(1) cancel, amortized
//!   O(1) pop) with the original binary heap retained as a reference
//!   backend. Ties are broken by insertion order, which keeps runs
//!   deterministic even when many events share a timestamp.
//! * [`DetRng`] wraps a counter-based PRNG and supports labelled forking so
//!   independent subsystems draw from independent, reproducible streams.
//! * [`Timeline`] implements the busy/idle span algebra that the GEMINI
//!   checkpoint-traffic scheduler (paper §5) operates on.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;
pub mod timeline;
pub mod trace;

pub use engine::{Context, Engine, EngineProbe, EventHandle, Model};
pub use queue::{EventQueue, QueueBackend, ReferenceHeapQueue, TimingWheelQueue};
pub use rng::DetRng;
pub use stats::{Counter, Histogram, OnlineStats};
pub use time::{SimDuration, SimTime};
pub use timeline::{Span, Timeline};
pub use trace::TraceLog;
