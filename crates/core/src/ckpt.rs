//! Hierarchical in-memory checkpoint storage (paper §3.1).
//!
//! GEMINI keeps recovery checkpoints in CPU memory — each machine holds its
//! own shard plus replicas for the peers its placement group assigns — and
//! decouples them from the low-frequency checkpoints users keep in remote
//! persistent storage. Each (host, owner) slot is double-buffered: "There
//! are two CPU memory buffers to store the checkpoints: one for the
//! completed checkpoint and the other for the ongoing one" (§7.1), so a
//! failure mid-checkpoint can always fall back to the previous complete
//! one (Fig. 1's ckpt-3-incomplete scenario).

use crate::error::GeminiError;
use crate::placement::Placement;
use gemini_net::ByteSize;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Where a checkpoint replica lives.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum StorageTier {
    /// The machine's own CPU memory (fastest; survives software failures).
    LocalCpu,
    /// A peer machine's CPU memory (fetched over the training network).
    RemoteCpu,
    /// Remote persistent storage (slow shared pipe; the last resort).
    Persistent,
}

/// Metadata of one checkpoint replica.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct CheckpointMeta {
    /// The machine whose model-state shard this is.
    pub owner: usize,
    /// Training iteration the states correspond to.
    pub iteration: u64,
    /// Shard size.
    pub bytes: ByteSize,
}

/// One (host, owner) slot with double buffering.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
struct CpuSlot {
    completed: Option<CheckpointMeta>,
    in_progress: Option<CheckpointMeta>,
}

/// The hierarchical checkpoint store of one training job.
#[derive(Clone, Debug)]
pub struct HierarchicalStore {
    placement: Placement,
    bytes_per_machine: ByteSize,
    slots: BTreeMap<(usize, usize), CpuSlot>,
    persistent: Option<CheckpointMeta>,
}

impl HierarchicalStore {
    /// Creates the store for a placement with the given per-machine shard
    /// size.
    pub fn new(placement: Placement, bytes_per_machine: ByteSize) -> Self {
        let mut slots = BTreeMap::new();
        for owner in 0..placement.machines() {
            for &host in placement.replica_hosts(owner).expect("owner in range") {
                slots.insert((host, owner), CpuSlot::default());
            }
        }
        HierarchicalStore {
            placement,
            bytes_per_machine,
            slots,
            persistent: None,
        }
    }

    /// The placement in force.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Per-machine shard size.
    pub fn bytes_per_machine(&self) -> ByteSize {
        self.bytes_per_machine
    }

    /// CPU memory one host needs for its slots (both buffers of every
    /// hosted replica). With `m` replicas this is `2·m·C` per machine.
    pub fn cpu_bytes_per_host(&self, host: usize) -> ByteSize {
        let hosted = self.slots.keys().filter(|(h, _)| *h == host).count() as u64;
        self.bytes_per_machine * hosted * 2
    }

    /// Verifies every host's slots fit in `cpu_mem` (§2.3.1's premise).
    pub fn validate_memory(&self, cpu_mem: ByteSize) -> Result<(), GeminiError> {
        for host in 0..self.placement.machines() {
            let need = self.cpu_bytes_per_host(host);
            if need > cpu_mem {
                return Err(GeminiError::BufferTooLarge {
                    requested: need,
                    available: cpu_mem,
                });
            }
        }
        Ok(())
    }

    /// Starts checkpointing `iteration`: every slot's in-progress buffer is
    /// claimed. A still-pending previous in-progress checkpoint is simply
    /// overwritten (it never completed).
    pub fn begin(&mut self, iteration: u64) {
        let meta_bytes = self.bytes_per_machine;
        for ((_, owner), slot) in self.slots.iter_mut() {
            slot.in_progress = Some(CheckpointMeta {
                owner: *owner,
                iteration,
                bytes: meta_bytes,
            });
        }
    }

    /// Completes checkpointing `iteration`: in-progress buffers whose
    /// iteration matches flip to completed.
    pub fn commit(&mut self, iteration: u64) {
        for slot in self.slots.values_mut() {
            if slot.in_progress.map(|m| m.iteration) == Some(iteration) {
                slot.completed = slot.in_progress.take();
            }
        }
    }

    /// Begins + commits in one step (used by coarse-grained simulations
    /// where the checkpoint provably fits within the iteration).
    pub fn record_complete(&mut self, iteration: u64) {
        self.begin(iteration);
        self.commit(iteration);
    }

    /// A hardware failure wipes a host's CPU memory: every slot it held is
    /// cleared (both buffers). Replicas of this host's shard on *other*
    /// machines survive.
    pub fn machine_lost(&mut self, host: usize) {
        for ((h, _), slot) in self.slots.iter_mut() {
            if *h == host {
                *slot = CpuSlot::default();
            }
        }
    }

    /// Hosts holding a *completed* replica of `owner`'s shard, with the
    /// iteration each one has.
    pub fn completed_sources(&self, owner: usize) -> Vec<(usize, u64)> {
        self.slots
            .iter()
            .filter(|((_, o), _)| *o == owner)
            .filter_map(|((h, _), slot)| slot.completed.map(|m| (*h, m.iteration)))
            .collect()
    }

    /// The most recent iteration for which **every** machine's shard has a
    /// completed replica on a host whose CPU memory is intact. `None` means
    /// CPU-memory recovery is impossible and the job must fall back to
    /// persistent storage (§6.2 Case 2).
    pub fn latest_recoverable(&self, cpu_intact: &BTreeSet<usize>) -> Option<u64> {
        let mut latest = u64::MAX;
        for owner in 0..self.placement.machines() {
            let best = self
                .completed_sources(owner)
                .into_iter()
                .filter(|(h, _)| cpu_intact.contains(h))
                .map(|(_, iter)| iter)
                .max()?;
            latest = latest.min(best);
        }
        (latest != u64::MAX).then_some(latest)
    }

    /// A host with intact CPU memory holding `owner`'s shard at exactly
    /// `iteration`; prefers the owner itself (local retrieval).
    pub fn source_for(
        &self,
        owner: usize,
        iteration: u64,
        cpu_intact: &BTreeSet<usize>,
    ) -> Option<usize> {
        let mut candidates: Vec<usize> = self
            .completed_sources(owner)
            .into_iter()
            .filter(|(h, it)| cpu_intact.contains(h) && *it == iteration)
            .map(|(h, _)| h)
            .collect();
        candidates.sort_unstable();
        if candidates.contains(&owner) {
            return Some(owner);
        }
        candidates.first().copied()
    }

    /// Copies a completed replica of `owner`'s shard at `iteration` into
    /// `host`'s CPU memory, creating the (host, owner) slot if the
    /// placement never assigned one. This is the storage half of a shrink
    /// repartition: a survivor *adopts* a failed machine's shard so the
    /// shrunken job can keep protecting it. Fails when no intact host
    /// holds the shard at that iteration (the shrink planner never asks
    /// in that situation — it falls back to persistent storage instead).
    pub fn adopt_shard(
        &mut self,
        owner: usize,
        host: usize,
        iteration: u64,
    ) -> Result<(), GeminiError> {
        let meta = self
            .slots
            .iter()
            .filter(|((_, o), _)| *o == owner)
            .filter_map(|(_, slot)| slot.completed)
            .find(|m| m.iteration == iteration)
            .ok_or(GeminiError::NoCheckpointAvailable)?;
        self.slots.entry((host, owner)).or_default().completed = Some(meta);
        Ok(())
    }

    /// Records a persistent-storage checkpoint of the full model state.
    pub fn persist(&mut self, iteration: u64) {
        self.persistent = Some(CheckpointMeta {
            owner: usize::MAX,
            iteration,
            bytes: self.bytes_per_machine * self.placement.machines() as u64,
        });
    }

    /// The latest persistent checkpoint, if any.
    pub fn persistent(&self) -> Option<CheckpointMeta> {
        self.persistent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(n: usize, m: usize) -> HierarchicalStore {
        HierarchicalStore::new(Placement::mixed(n, m).unwrap(), ByteSize::from_gb(75))
    }

    fn intact(all: usize, lost: &[usize]) -> BTreeSet<usize> {
        (0..all).filter(|r| !lost.contains(r)).collect()
    }

    #[test]
    fn begin_commit_flips_buffers() {
        let mut s = store(4, 2);
        s.begin(10);
        // Nothing completed yet.
        assert!(s.latest_recoverable(&intact(4, &[])).is_none());
        s.commit(10);
        assert_eq!(s.latest_recoverable(&intact(4, &[])), Some(10));
    }

    #[test]
    fn commit_of_stale_iteration_is_noop() {
        let mut s = store(4, 2);
        s.begin(10);
        s.commit(9);
        assert!(s.latest_recoverable(&intact(4, &[])).is_none());
    }

    #[test]
    fn incomplete_checkpoint_falls_back_to_previous() {
        // Fig. 1: a failure at iteration 310 while ckpt 3 is incomplete
        // recovers from ckpt 2.
        let mut s = store(4, 2);
        s.record_complete(200);
        s.begin(300);
        assert_eq!(s.latest_recoverable(&intact(4, &[])), Some(200));
        s.commit(300);
        assert_eq!(s.latest_recoverable(&intact(4, &[])), Some(300));
    }

    #[test]
    fn machine_loss_uses_surviving_replica() {
        let mut s = store(4, 2);
        s.record_complete(50);
        s.machine_lost(1);
        // Machine 1's shard survives on its group peer 0.
        let alive = intact(4, &[1]);
        assert_eq!(s.latest_recoverable(&alive), Some(50));
        assert_eq!(s.source_for(1, 50, &alive), Some(0));
        // Machine 0 prefers its local copy.
        assert_eq!(s.source_for(0, 50, &alive), Some(0));
    }

    #[test]
    fn whole_group_loss_is_unrecoverable() {
        let mut s = store(4, 2);
        s.record_complete(50);
        s.machine_lost(0);
        s.machine_lost(1);
        assert_eq!(s.latest_recoverable(&intact(4, &[0, 1])), None);
    }

    #[test]
    fn cross_group_loss_is_recoverable() {
        let mut s = store(4, 2);
        s.record_complete(50);
        s.machine_lost(0);
        s.machine_lost(2);
        assert_eq!(s.latest_recoverable(&intact(4, &[0, 2])), Some(50));
    }

    #[test]
    fn replacement_catches_up_on_next_commit() {
        let mut s = store(4, 2);
        s.record_complete(50);
        s.machine_lost(3);
        s.record_complete(51);
        assert_eq!(s.latest_recoverable(&intact(4, &[])), Some(51));
        assert_eq!(s.source_for(3, 51, &intact(4, &[])), Some(3));
    }

    #[test]
    fn memory_accounting_matches_2mc() {
        let s = store(16, 2);
        // m=2 → each host stores 2 shards × 2 buffers × 75 GB = 300 GB.
        assert_eq!(s.cpu_bytes_per_host(0), ByteSize::from_gb(300));
        // Fits p4d's 1152 GB CPU memory.
        s.validate_memory(ByteSize::from_gb(1152)).unwrap();
        // But not a tiny machine.
        assert!(s.validate_memory(ByteSize::from_gb(200)).is_err());
    }

    #[test]
    fn persistent_checkpoint_recorded() {
        let mut s = store(4, 2);
        assert!(s.persistent().is_none());
        s.persist(100);
        let p = s.persistent().unwrap();
        assert_eq!(p.iteration, 100);
        assert_eq!(p.bytes, ByteSize::from_gb(300));
    }

    #[test]
    fn adopt_shard_copies_a_surviving_replica() {
        let mut s = store(4, 2);
        s.record_complete(50);
        s.machine_lost(1);
        // Host 3 never hosted shard 1; adoption creates the slot from the
        // surviving replica on host 0.
        s.adopt_shard(1, 3, 50).unwrap();
        let alive = intact(4, &[1]);
        assert!(s.completed_sources(1).contains(&(3, 50)));
        assert_eq!(s.latest_recoverable(&alive), Some(50));
        // Asking for an iteration nobody holds is an error.
        assert_eq!(
            s.adopt_shard(1, 3, 99).unwrap_err(),
            GeminiError::NoCheckpointAvailable
        );
        // A wholly-lost shard cannot be adopted.
        let mut gone = store(4, 2);
        gone.record_complete(50);
        gone.machine_lost(0);
        gone.machine_lost(1);
        assert_eq!(
            gone.adopt_shard(1, 2, 50).unwrap_err(),
            GeminiError::NoCheckpointAvailable
        );
    }

    #[test]
    fn source_preference_is_local_then_lowest() {
        let s = {
            let mut s = store(6, 3);
            s.record_complete(7);
            s
        };
        let alive = intact(6, &[]);
        // Owner 4's hosts are {3, 4, 5}; it prefers itself.
        assert_eq!(s.source_for(4, 7, &alive), Some(4));
        // If owner 4 is gone, the lowest surviving host serves.
        let holed = intact(6, &[4]);
        assert_eq!(s.source_for(4, 7, &holed), Some(3));
    }
}
