//! The failure-recovery planner (paper §6).
//!
//! Classifies a batch of simultaneous failures and decides, per rank, the
//! fastest storage tier a consistent checkpoint can be retrieved from:
//!
//! * **software failures only** → every machine restarts from its *local*
//!   CPU-memory replica (Fig. 6b);
//! * **hardware failures, every placement group still has a survivor** →
//!   replacement machines fetch from peers' CPU memory, survivors restart
//!   locally (Fig. 6c, §6.2 Case 1);
//! * **a whole placement group lost** → all machines must fall back to the
//!   same persistent-storage checkpoint for consistency (§6.2 Case 2),
//!   even though some shards are still in CPU memory — they are from a
//!   *newer* iteration than the persistent copy and mixing them would
//!   desynchronize the model states.

use crate::ckpt::{HierarchicalStore, StorageTier};
use crate::error::GeminiError;
use crate::placement::Placement;
use gemini_cluster::FailureKind;
use gemini_net::{ByteSize, TransferCost};
use gemini_sim::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// How a coordination timeout should be handled, by how deep into the
/// retry budget the caller is. Recovery code paths use this to decide
/// between plain retry, retry-with-fallback-armed, and failing over — the
/// classification the chaos drills assert on.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum TimeoutClass {
    /// Early attempts (< half the budget): retry on the same path.
    Transient,
    /// Budget more than half spent: keep retrying but arm the fallback
    /// tier (pre-open the persistent checkpoint, widen the source set).
    Degraded,
    /// Budget exhausted: stop retrying; fail over or report unrecoverable.
    Fatal,
}

impl TimeoutClass {
    /// Classifies failed attempt `attempt` (0-based) against a budget of
    /// `max_attempts`.
    pub fn classify(attempt: u32, max_attempts: u32) -> TimeoutClass {
        let max = max_attempts.max(1);
        if attempt + 1 >= max {
            TimeoutClass::Fatal
        } else if 2 * (attempt + 1) >= max {
            TimeoutClass::Degraded
        } else {
            TimeoutClass::Transient
        }
    }

    /// Whether the caller should attempt again.
    pub fn should_retry(self) -> bool {
        self != TimeoutClass::Fatal
    }
}

/// Which of the paper's recovery mechanisms applies.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum RecoveryCase {
    /// All failures are software: restart in place from local replicas.
    SoftwareLocal,
    /// Hardware failures recoverable from CPU memory (Case 1).
    HardwareFromCpu,
    /// Fall back to remote persistent storage (Case 2).
    PersistentFallback,
}

/// Where one rank retrieves its shard.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct RetrievalSource {
    /// The rank being restored.
    pub rank: usize,
    /// The tier it reads from.
    pub tier: StorageTier,
    /// The serving peer for [`StorageTier::RemoteCpu`].
    pub from: Option<usize>,
}

/// A complete recovery plan for one failure event.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RecoveryPlan {
    /// Which mechanism applies.
    pub case: RecoveryCase,
    /// The iteration all ranks roll back to.
    pub iteration: u64,
    /// Per-rank retrieval sources (every rank appears exactly once).
    pub sources: Vec<RetrievalSource>,
    /// Ranks that need replacement machines (hardware failures).
    pub replaced: Vec<usize>,
    /// Set when the planner could not use its preferred tier and degraded
    /// (e.g. remote-CPU sources partially unreachable → persistent
    /// fallback). `None` for plans on the normal paths.
    pub degraded: Option<String>,
}

impl RecoveryPlan {
    /// Reports the plan through a telemetry sink at `now`: a
    /// `RetrievalStarted` event, one `RecoveryTierHit` per rank, and
    /// per-tier `recovery.tier_hits` counters. A disabled sink records
    /// nothing and evaluates nothing.
    pub fn record_telemetry(
        &self,
        sink: &gemini_telemetry::TelemetrySink,
        now: gemini_sim::SimTime,
    ) {
        if !sink.is_enabled() {
            return;
        }
        sink.event(now, || gemini_telemetry::TelemetryEvent::RetrievalStarted {
            case: format!("{:?}", self.case),
            rollback_to: self.iteration,
        });
        for src in &self.sources {
            let tier = tier_label(src.tier);
            sink.event(now, || gemini_telemetry::TelemetryEvent::RecoveryTierHit {
                rank: src.rank,
                tier,
                from: src.from,
            });
            sink.counter_add_labeled("recovery.tier_hits", "tier", tier.label(), 1);
        }
        if let Some(reason) = &self.degraded {
            sink.event(now, || {
                gemini_telemetry::TelemetryEvent::RecoveryDegraded {
                    reason: reason.clone(),
                }
            });
            sink.counter_add("recovery.degraded", 1);
        }
        sink.counter_add("recovery.plans", 1);
        sink.gauge_set("recovery.rollback_iteration", || self.iteration as f64);
    }

    /// How many sources read from each tier, as
    /// `(local_cpu, remote_cpu, persistent)` — the per-tier summary the
    /// incident flight recorder attaches to `RetrievalStarted` causal
    /// events.
    pub fn tier_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for src in &self.sources {
            match src.tier {
                StorageTier::LocalCpu => counts.0 += 1,
                StorageTier::RemoteCpu => counts.1 += 1,
                StorageTier::Persistent => counts.2 += 1,
            }
        }
        counts
    }

    /// The flight-recorder `TierRead` causal events for the ranks this
    /// plan actually restores (`replaced` ranks for hardware cases, every
    /// source's rank otherwise), in rank order.
    pub fn tier_reads(&self) -> Vec<(usize, gemini_telemetry::Tier)> {
        self.sources
            .iter()
            .filter(|src| self.replaced.is_empty() || self.replaced.contains(&src.rank))
            .map(|src| (src.rank, tier_label(src.tier)))
            .collect()
    }

    /// The wall-clock retrieval makespan of this plan, accounting for
    /// *source contention*: two replacement machines fetching from the
    /// same surviving host serialize on that host's transmit path (which
    /// happens when a ring-placement host serves several lost neighbours,
    /// or with m ≥ 3 group placements losing two members of one group).
    ///
    /// * local retrievals ride each machine's own copy engine in parallel;
    /// * remote retrievals occupy the serving host's TX serially;
    /// * persistent fallback funnels the whole model state through the
    ///   shared storage pipe.
    pub fn retrieval_makespan(
        &self,
        bytes_per_machine: ByteSize,
        machines: usize,
        net: &TransferCost,
        copy: &TransferCost,
        storage: &TransferCost,
    ) -> SimDuration {
        let mut makespan = SimDuration::ZERO;
        // Per-serving-host queue depth.
        let mut queue: BTreeMap<usize, u64> = BTreeMap::new();
        for src in &self.sources {
            match src.tier {
                StorageTier::LocalCpu => {
                    makespan = makespan.max(copy.time(bytes_per_machine));
                }
                StorageTier::RemoteCpu => {
                    let host = src.from.unwrap_or(src.rank);
                    let depth = queue.entry(host).or_insert(0);
                    *depth += 1;
                    let wait = SimDuration::from_secs_f64(
                        net.time(bytes_per_machine).as_secs_f64() * *depth as f64,
                    ) + copy.time(bytes_per_machine);
                    makespan = makespan.max(wait);
                }
                StorageTier::Persistent => {
                    makespan =
                        makespan.max(storage.time(bytes_per_machine * machines.max(1) as u64));
                }
            }
        }
        makespan
    }
}

/// Maps the core storage tier onto its telemetry-local mirror.
fn tier_label(tier: StorageTier) -> gemini_telemetry::Tier {
    match tier {
        StorageTier::LocalCpu => gemini_telemetry::Tier::LocalCpu,
        StorageTier::RemoteCpu => gemini_telemetry::Tier::RemoteCpu,
        StorageTier::Persistent => gemini_telemetry::Tier::Persistent,
    }
}

/// One shard adoption in a shrink repartition: a survivor takes over a
/// failed machine's model-state shard.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ShardMove {
    /// The failed machine whose shard moves.
    pub owner: usize,
    /// The surviving machine adopting it.
    pub to: usize,
    /// Where the adopter fetches the checkpoint from.
    pub tier: StorageTier,
    /// The serving peer for [`StorageTier::RemoteCpu`].
    pub from: Option<usize>,
}

/// A complete shrink-and-continue repartition plan: instead of blocking on
/// replacement machines, the survivors adopt the lost machines' shards and
/// the job resumes at reduced width ([`crate::policy::RecoveryMode::Shrink`]).
///
/// The plan is pure data computed from `BTree`-ordered state, so it is
/// byte-identical across reruns, `--jobs` counts and telemetry settings.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ShrinkPlan {
    /// Which retrieval mechanism feeds the adoptions ([`RecoveryCase::
    /// HardwareFromCpu`] when every lost shard survives in CPU memory,
    /// [`RecoveryCase::PersistentFallback`] otherwise; never
    /// [`RecoveryCase::SoftwareLocal`] — software failures don't shrink).
    pub case: RecoveryCase,
    /// The iteration the shrunken job resumes from.
    pub iteration: u64,
    /// Surviving machines, ascending; index = the machine's new rank.
    pub survivors: Vec<usize>,
    /// One adoption per failed machine, in owner order.
    pub moves: Vec<ShardMove>,
    /// The replica placement the shrunken job runs under (over
    /// `survivors.len()` relabeled ranks).
    pub placement: Placement,
    /// Throughput factor after the shrink (`survivors / machines` under
    /// linear scaling) — what the policy engine's degradation pricing and
    /// the executor's slowed iteration clock both use.
    pub throughput_factor: f64,
}

impl ShrinkPlan {
    /// The new (post-shrink) rank of a surviving machine.
    pub fn new_rank(&self, survivor: usize) -> Option<usize> {
        self.survivors.binary_search(&survivor).ok()
    }

    /// The wall-clock makespan of the adoption transfers, with the same
    /// source-contention model as [`RecoveryPlan::retrieval_makespan`]:
    /// holder adoptions ride the local copy engine in parallel, remote
    /// adoptions serialize on the serving host's TX, and a persistent
    /// fallback funnels the whole model state through the storage pipe.
    pub fn retrieval_makespan(
        &self,
        bytes_per_machine: ByteSize,
        machines: usize,
        net: &TransferCost,
        copy: &TransferCost,
        storage: &TransferCost,
    ) -> SimDuration {
        let mut makespan = SimDuration::ZERO;
        let mut queue: BTreeMap<usize, u64> = BTreeMap::new();
        for mv in &self.moves {
            match mv.tier {
                StorageTier::LocalCpu => {
                    makespan = makespan.max(copy.time(bytes_per_machine));
                }
                StorageTier::RemoteCpu => {
                    let host = mv.from.unwrap_or(mv.to);
                    let depth = queue.entry(host).or_insert(0);
                    *depth += 1;
                    let wait = SimDuration::from_secs_f64(
                        net.time(bytes_per_machine).as_secs_f64() * *depth as f64,
                    ) + copy.time(bytes_per_machine);
                    makespan = makespan.max(wait);
                }
                StorageTier::Persistent => {
                    makespan =
                        makespan.max(storage.time(bytes_per_machine * machines.max(1) as u64));
                }
            }
        }
        makespan
    }
}

/// Plans recoveries against a placement and its checkpoint store.
#[derive(Clone, Debug, Default)]
pub struct RecoveryPlanner;

impl RecoveryPlanner {
    /// Builds the plan for a batch of simultaneous failures.
    ///
    /// `store` must reflect the state *after* the failures (i.e.
    /// [`HierarchicalStore::machine_lost`] already applied for hardware
    /// failures), mirroring how the root agent observes the world.
    pub fn plan(
        &self,
        store: &HierarchicalStore,
        failures: &[(usize, FailureKind)],
    ) -> Result<RecoveryPlan, GeminiError> {
        self.plan_degraded(store, failures, &BTreeSet::new())
    }

    /// Like [`RecoveryPlanner::plan`], but some surviving hosts are
    /// temporarily *unreachable* over the network (degraded or partitioned
    /// NICs). Their CPU memory is intact — they restart locally — but they
    /// cannot serve remote-CPU retrievals. If a replacement machine's only
    /// source is unreachable, the planner degrades gracefully to the
    /// persistent checkpoint (for every rank, preserving consistency)
    /// instead of erroring, recording why in [`RecoveryPlan::degraded`].
    pub fn plan_degraded(
        &self,
        store: &HierarchicalStore,
        failures: &[(usize, FailureKind)],
        unreachable: &BTreeSet<usize>,
    ) -> Result<RecoveryPlan, GeminiError> {
        let n = store.placement().machines();
        for &(rank, _) in failures {
            if rank >= n {
                return Err(GeminiError::UnknownRank(rank));
            }
        }
        let hardware: BTreeSet<usize> = failures
            .iter()
            .filter(|(_, k)| *k == FailureKind::Hardware)
            .map(|(r, _)| *r)
            .collect();
        let cpu_intact: BTreeSet<usize> = (0..n).filter(|r| !hardware.contains(r)).collect();
        let replaced: Vec<usize> = hardware.iter().copied().collect();

        if hardware.is_empty() {
            // Software-only: everything is in local CPU memory. Network
            // reachability is irrelevant — nothing is fetched remotely.
            let iteration = store
                .latest_recoverable(&cpu_intact)
                .ok_or(GeminiError::NoCheckpointAvailable)?;
            return Ok(RecoveryPlan {
                case: RecoveryCase::SoftwareLocal,
                iteration,
                sources: (0..n)
                    .map(|rank| RetrievalSource {
                        rank,
                        tier: StorageTier::LocalCpu,
                        from: None,
                    })
                    .collect(),
                replaced,
                degraded: None,
            });
        }

        // Hosts that can *serve* remote retrievals: intact CPU memory and
        // a reachable NIC.
        let serving: BTreeSet<usize> = cpu_intact.difference(unreachable).copied().collect();
        if let Some(iteration) = store.latest_recoverable(&cpu_intact) {
            // Case 1: survivors restart locally; replacements fetch from a
            // surviving *reachable* peer holding their shard.
            let mut sources = Vec::with_capacity(n);
            let mut unreachable_only = false;
            for rank in 0..n {
                if hardware.contains(&rank) {
                    match store.source_for(rank, iteration, &serving) {
                        Some(from) => sources.push(RetrievalSource {
                            rank,
                            tier: StorageTier::RemoteCpu,
                            from: Some(from),
                        }),
                        None => {
                            // The shard survives in CPU memory but only on
                            // unreachable hosts: remote retrieval is
                            // partially unavailable.
                            unreachable_only = true;
                            break;
                        }
                    }
                } else {
                    sources.push(RetrievalSource {
                        rank,
                        tier: StorageTier::LocalCpu,
                        from: None,
                    });
                }
            }
            if !unreachable_only {
                return Ok(RecoveryPlan {
                    case: RecoveryCase::HardwareFromCpu,
                    iteration,
                    sources,
                    replaced,
                    degraded: None,
                });
            }
            // Degrade gracefully: every rank falls back to the persistent
            // checkpoint for consistency, and the plan records why.
            let persistent = store
                .persistent()
                .ok_or(GeminiError::NoCheckpointAvailable)?;
            return Ok(RecoveryPlan {
                case: RecoveryCase::PersistentFallback,
                iteration: persistent.iteration,
                sources: (0..n)
                    .map(|rank| RetrievalSource {
                        rank,
                        tier: StorageTier::Persistent,
                        from: None,
                    })
                    .collect(),
                replaced,
                degraded: Some(format!(
                    "remote-CPU sources unreachable ({} host(s) partitioned)",
                    unreachable.len()
                )),
            });
        }
        // Case 2: consistency forces everyone to the persistent
        // checkpoint.
        let persistent = store
            .persistent()
            .ok_or(GeminiError::NoCheckpointAvailable)?;
        Ok(RecoveryPlan {
            case: RecoveryCase::PersistentFallback,
            iteration: persistent.iteration,
            sources: (0..n)
                .map(|rank| RetrievalSource {
                    rank,
                    tier: StorageTier::Persistent,
                    from: None,
                })
                .collect(),
            replaced,
            degraded: None,
        })
    }

    /// Builds a shrink-and-continue repartition for a batch of *hardware*
    /// losses: every failed machine's shard is adopted by a survivor (the
    /// least-loaded one, preferring survivors that already hold a replica
    /// of that shard — those adopt at local-copy speed), and the job
    /// resumes over `survivors.len()` ranks under a freshly-derived
    /// placement. Below the placement's tolerance every committed shard
    /// survives in CPU memory; past it the plan degrades to the shared
    /// persistent checkpoint, exactly like [`RecoveryPlanner::plan`].
    ///
    /// `store` must reflect the state *after* the failures
    /// ([`HierarchicalStore::machine_lost`] applied), like
    /// [`RecoveryPlanner::plan`].
    pub fn plan_shrink(
        &self,
        store: &HierarchicalStore,
        failed: &BTreeSet<usize>,
    ) -> Result<ShrinkPlan, GeminiError> {
        let n = store.placement().machines();
        let m = store.placement().replicas();
        for &rank in failed {
            if rank >= n {
                return Err(GeminiError::UnknownRank(rank));
            }
        }
        if failed.is_empty() {
            return Err(GeminiError::InvalidDrill("shrink plan needs at least one loss"));
        }
        let survivors: Vec<usize> = (0..n).filter(|r| !failed.contains(r)).collect();
        if survivors.len() < m {
            return Err(GeminiError::InvalidPlacement {
                machines: survivors.len(),
                replicas: m,
                reason: "fewer survivors than the replica factor — cannot shrink",
            });
        }
        let placement = Placement::mixed(survivors.len(), m)?;
        let throughput_factor = survivors.len() as f64 / n as f64;
        let alive: BTreeSet<usize> = survivors.iter().copied().collect();

        // Per-survivor adoption count, so the extra memory and reload work
        // spread evenly instead of piling onto the lowest rank.
        let mut load: BTreeMap<usize, usize> = survivors.iter().map(|&s| (s, 0)).collect();
        let mut moves = Vec::with_capacity(failed.len());

        if let Some(iteration) = store.latest_recoverable(&alive) {
            for &owner in failed {
                // Survivors already holding this shard at the rollback
                // iteration can adopt it without any transfer.
                let holders: BTreeSet<usize> = store
                    .completed_sources(owner)
                    .into_iter()
                    .filter(|(h, it)| alive.contains(h) && *it == iteration)
                    .map(|(h, _)| h)
                    .collect();
                let to = survivors
                    .iter()
                    .copied()
                    .min_by_key(|s| (load[s], !holders.contains(s), *s))
                    .expect("survivors is non-empty");
                let (tier, from) = if holders.contains(&to) {
                    (StorageTier::LocalCpu, None)
                } else {
                    let from = store
                        .source_for(owner, iteration, &alive)
                        .expect("latest_recoverable guarantees a source");
                    (StorageTier::RemoteCpu, Some(from))
                };
                *load.get_mut(&to).expect("adopter is a survivor") += 1;
                moves.push(ShardMove {
                    owner,
                    to,
                    tier,
                    from,
                });
            }
            return Ok(ShrinkPlan {
                case: RecoveryCase::HardwareFromCpu,
                iteration,
                survivors,
                moves,
                placement,
                throughput_factor,
            });
        }

        // Past the placement tolerance: every rank (adopters included)
        // rolls back to the persistent checkpoint for consistency.
        let persistent = store
            .persistent()
            .ok_or(GeminiError::NoCheckpointAvailable)?;
        for &owner in failed {
            let to = survivors
                .iter()
                .copied()
                .min_by_key(|s| (load[s], *s))
                .expect("survivors is non-empty");
            *load.get_mut(&to).expect("adopter is a survivor") += 1;
            moves.push(ShardMove {
                owner,
                to,
                tier: StorageTier::Persistent,
                from: None,
            });
        }
        Ok(ShrinkPlan {
            case: RecoveryCase::PersistentFallback,
            iteration: persistent.iteration,
            survivors,
            moves,
            placement,
            throughput_factor,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::Placement;
    use gemini_net::ByteSize;

    fn store(n: usize, m: usize) -> HierarchicalStore {
        let mut s = HierarchicalStore::new(Placement::mixed(n, m).unwrap(), ByteSize::from_gb(75));
        s.persist(100);
        s.record_complete(310);
        s
    }

    #[test]
    fn tier_counts_and_reads_summarize_sources() {
        let plan = RecoveryPlan {
            case: RecoveryCase::HardwareFromCpu,
            iteration: 310,
            sources: vec![
                RetrievalSource {
                    rank: 0,
                    tier: StorageTier::LocalCpu,
                    from: None,
                },
                RetrievalSource {
                    rank: 1,
                    tier: StorageTier::RemoteCpu,
                    from: Some(0),
                },
                RetrievalSource {
                    rank: 2,
                    tier: StorageTier::Persistent,
                    from: None,
                },
            ],
            replaced: vec![1],
            degraded: None,
        };
        assert_eq!(plan.tier_counts(), (1, 1, 1));
        // Hardware case: only the replaced rank's read is an incident
        // TierRead.
        assert_eq!(
            plan.tier_reads(),
            vec![(1, gemini_telemetry::Tier::RemoteCpu)]
        );
        // Software case (no replacements): every source counts.
        let soft = RecoveryPlan {
            replaced: vec![],
            ..plan
        };
        assert_eq!(soft.tier_reads().len(), 3);
    }

    #[test]
    fn software_failure_recovers_locally_at_latest_iteration() {
        let s = store(4, 2);
        let plan = RecoveryPlanner
            .plan(&s, &[(2, FailureKind::Software)])
            .unwrap();
        assert_eq!(plan.case, RecoveryCase::SoftwareLocal);
        assert_eq!(plan.iteration, 310);
        assert!(plan.replaced.is_empty());
        assert!(plan.sources.iter().all(|s| s.tier == StorageTier::LocalCpu));
        assert_eq!(plan.sources.len(), 4);
    }

    #[test]
    fn fig6c_two_hardware_failures_cross_group() {
        // Fig. 6c: machines 2 and 4 (ranks 1 and 3) fail and are replaced;
        // each fetches from the surviving member of its group.
        let mut s = store(4, 2);
        s.machine_lost(1);
        s.machine_lost(3);
        let plan = RecoveryPlanner
            .plan(
                &s,
                &[(1, FailureKind::Hardware), (3, FailureKind::Hardware)],
            )
            .unwrap();
        assert_eq!(plan.case, RecoveryCase::HardwareFromCpu);
        assert_eq!(plan.iteration, 310);
        assert_eq!(plan.replaced, vec![1, 3]);
        let src1 = plan.sources.iter().find(|s| s.rank == 1).unwrap();
        assert_eq!(src1.tier, StorageTier::RemoteCpu);
        assert_eq!(src1.from, Some(0));
        let src3 = plan.sources.iter().find(|s| s.rank == 3).unwrap();
        assert_eq!(src3.from, Some(2));
        // Survivors restart locally.
        let src0 = plan.sources.iter().find(|s| s.rank == 0).unwrap();
        assert_eq!(src0.tier, StorageTier::LocalCpu);
    }

    #[test]
    fn whole_group_loss_falls_back_to_persistent() {
        let mut s = store(4, 2);
        s.machine_lost(0);
        s.machine_lost(1);
        let plan = RecoveryPlanner
            .plan(
                &s,
                &[(0, FailureKind::Hardware), (1, FailureKind::Hardware)],
            )
            .unwrap();
        assert_eq!(plan.case, RecoveryCase::PersistentFallback);
        // Rolls back to the persistent iteration, losing 210 iterations.
        assert_eq!(plan.iteration, 100);
        assert!(plan
            .sources
            .iter()
            .all(|s| s.tier == StorageTier::Persistent));
    }

    #[test]
    fn mixed_software_and_hardware_failures() {
        let mut s = store(6, 2);
        s.machine_lost(4);
        let plan = RecoveryPlanner
            .plan(
                &s,
                &[(1, FailureKind::Software), (4, FailureKind::Hardware)],
            )
            .unwrap();
        assert_eq!(plan.case, RecoveryCase::HardwareFromCpu);
        assert_eq!(plan.replaced, vec![4]);
        // The software-failed rank still has its local copy.
        let src1 = plan.sources.iter().find(|s| s.rank == 1).unwrap();
        assert_eq!(src1.tier, StorageTier::LocalCpu);
        let src4 = plan.sources.iter().find(|s| s.rank == 4).unwrap();
        assert_eq!(src4.tier, StorageTier::RemoteCpu);
        assert_eq!(src4.from, Some(5));
    }

    #[test]
    fn no_persistent_checkpoint_is_an_error() {
        let mut s = HierarchicalStore::new(Placement::mixed(4, 2).unwrap(), ByteSize::from_gb(75));
        s.record_complete(10);
        s.machine_lost(0);
        s.machine_lost(1);
        let err = RecoveryPlanner
            .plan(
                &s,
                &[(0, FailureKind::Hardware), (1, FailureKind::Hardware)],
            )
            .unwrap_err();
        assert_eq!(err, GeminiError::NoCheckpointAvailable);
    }

    #[test]
    fn unknown_rank_rejected() {
        let s = store(4, 2);
        assert_eq!(
            RecoveryPlanner
                .plan(&s, &[(9, FailureKind::Software)])
                .unwrap_err(),
            GeminiError::UnknownRank(9)
        );
    }

    #[test]
    fn retrieval_makespan_parallel_when_sources_disjoint() {
        use gemini_net::Bandwidth;
        let mut s = store(8, 2);
        s.machine_lost(1);
        s.machine_lost(3);
        let plan = RecoveryPlanner
            .plan(
                &s,
                &[(1, FailureKind::Hardware), (3, FailureKind::Hardware)],
            )
            .unwrap();
        let net = TransferCost::pure_bandwidth(Bandwidth::from_gbytes_per_sec(10.0));
        let copy = TransferCost::pure_bandwidth(Bandwidth::from_gbytes_per_sec(20.0));
        let storage = TransferCost::pure_bandwidth(Bandwidth::from_gbps(20.0));
        let t = plan.retrieval_makespan(ByteSize::from_gb(10), 8, &net, &copy, &storage);
        // Rank 1 fetches from host 0, rank 3 from host 2 — disjoint, so the
        // makespan is one transfer (1 s) plus the reload copy (0.5 s).
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-9, "{t}");
    }

    #[test]
    fn retrieval_makespan_serializes_on_shared_source() {
        use crate::recovery::RetrievalSource;
        use gemini_net::Bandwidth;
        // Hand-build a plan where two ranks fetch from the same host 0.
        let plan = RecoveryPlan {
            case: RecoveryCase::HardwareFromCpu,
            iteration: 1,
            sources: vec![
                RetrievalSource {
                    rank: 1,
                    tier: StorageTier::RemoteCpu,
                    from: Some(0),
                },
                RetrievalSource {
                    rank: 2,
                    tier: StorageTier::RemoteCpu,
                    from: Some(0),
                },
            ],
            replaced: vec![1, 2],
            degraded: None,
        };
        let net = TransferCost::pure_bandwidth(Bandwidth::from_gbytes_per_sec(10.0));
        let copy = TransferCost::pure_bandwidth(Bandwidth::from_gbytes_per_sec(20.0));
        let storage = TransferCost::pure_bandwidth(Bandwidth::from_gbps(20.0));
        let t = plan.retrieval_makespan(ByteSize::from_gb(10), 8, &net, &copy, &storage);
        // Host 0's TX serves 10 GB twice back-to-back (2 s) + reload copy.
        assert!((t.as_secs_f64() - 2.5).abs() < 1e-9, "{t}");
    }

    #[test]
    fn retrieval_makespan_persistent_uses_shared_pipe() {
        use gemini_net::Bandwidth;
        let mut s = store(4, 2);
        s.machine_lost(0);
        s.machine_lost(1);
        let plan = RecoveryPlanner
            .plan(
                &s,
                &[(0, FailureKind::Hardware), (1, FailureKind::Hardware)],
            )
            .unwrap();
        let net = TransferCost::pure_bandwidth(Bandwidth::from_gbytes_per_sec(10.0));
        let copy = TransferCost::pure_bandwidth(Bandwidth::from_gbytes_per_sec(20.0));
        let storage = TransferCost::pure_bandwidth(Bandwidth::from_gbps(20.0));
        let t = plan.retrieval_makespan(ByteSize::from_gb(75), 4, &net, &copy, &storage);
        // 300 GB through 2.5 GB/s = 120 s.
        assert!((t.as_secs_f64() - 120.0).abs() < 1e-6, "{t}");
    }

    #[test]
    fn partition_degrades_to_persistent_when_only_source_unreachable() {
        // Rank 1 fails (hardware); its only surviving replica lives on
        // rank 0, which is partitioned. The planner must not error — it
        // degrades every rank to the persistent checkpoint and says why.
        let mut s = store(4, 2);
        s.machine_lost(1);
        let unreachable: BTreeSet<usize> = [0].into_iter().collect();
        let plan = RecoveryPlanner
            .plan_degraded(&s, &[(1, FailureKind::Hardware)], &unreachable)
            .unwrap();
        assert_eq!(plan.case, RecoveryCase::PersistentFallback);
        assert_eq!(plan.iteration, 100);
        assert!(plan.degraded.is_some(), "degradation must be recorded");
        assert!(plan
            .sources
            .iter()
            .all(|s| s.tier == StorageTier::Persistent));
    }

    #[test]
    fn partition_reroutes_to_reachable_source_when_one_exists() {
        // With m = 3 the lost rank's shard survives on two peers; if one
        // is partitioned the planner picks the reachable one and stays on
        // the fast path.
        let mut s = store(6, 3);
        s.machine_lost(1);
        let plan_clear = RecoveryPlanner
            .plan(&s, &[(1, FailureKind::Hardware)])
            .unwrap();
        let preferred = plan_clear
            .sources
            .iter()
            .find(|src| src.rank == 1)
            .unwrap()
            .from
            .unwrap();
        let unreachable: BTreeSet<usize> = [preferred].into_iter().collect();
        let plan = RecoveryPlanner
            .plan_degraded(&s, &[(1, FailureKind::Hardware)], &unreachable)
            .unwrap();
        assert_eq!(plan.case, RecoveryCase::HardwareFromCpu);
        assert!(plan.degraded.is_none());
        let src = plan.sources.iter().find(|src| src.rank == 1).unwrap();
        assert_eq!(src.tier, StorageTier::RemoteCpu);
        assert_ne!(src.from, Some(preferred));
    }

    #[test]
    fn software_failures_ignore_partitions() {
        let s = store(4, 2);
        let unreachable: BTreeSet<usize> = [0, 2].into_iter().collect();
        let plan = RecoveryPlanner
            .plan_degraded(&s, &[(1, FailureKind::Software)], &unreachable)
            .unwrap();
        assert_eq!(plan.case, RecoveryCase::SoftwareLocal);
        assert_eq!(plan.iteration, 310);
        assert!(plan.degraded.is_none());
    }

    #[test]
    fn timeout_class_partitions_the_retry_budget() {
        use TimeoutClass::*;
        // Budget of 6: attempts 0,1 transient; 2,3,4 degraded; 5 fatal.
        let classes: Vec<TimeoutClass> =
            (0..6).map(|a| TimeoutClass::classify(a, 6)).collect();
        assert_eq!(
            classes,
            vec![Transient, Transient, Degraded, Degraded, Degraded, Fatal]
        );
        assert!(Transient.should_retry());
        assert!(Degraded.should_retry());
        assert!(!Fatal.should_retry());
        // Degenerate budgets never panic and end fatal.
        assert_eq!(TimeoutClass::classify(0, 1), Fatal);
        assert_eq!(TimeoutClass::classify(0, 0), Fatal);
    }

    #[test]
    fn shrink_below_tolerance_adopts_from_cpu_memory() {
        let mut s = store(8, 2);
        s.machine_lost(3);
        let failed: BTreeSet<usize> = [3].into_iter().collect();
        let plan = RecoveryPlanner.plan_shrink(&s, &failed).unwrap();
        assert_eq!(plan.case, RecoveryCase::HardwareFromCpu);
        assert_eq!(plan.iteration, 310);
        assert_eq!(plan.survivors, vec![0, 1, 2, 4, 5, 6, 7]);
        assert_eq!(plan.moves.len(), 1);
        let mv = plan.moves[0];
        assert_eq!(mv.owner, 3);
        // Rank 2 (group peer) already holds shard 3 → local adoption.
        assert_eq!(mv.to, 2);
        assert_eq!(mv.tier, StorageTier::LocalCpu);
        assert_eq!(mv.from, None);
        assert_eq!(plan.placement.machines(), 7);
        assert!((plan.throughput_factor - 7.0 / 8.0).abs() < 1e-12);
        assert_eq!(plan.new_rank(4), Some(3));
        assert_eq!(plan.new_rank(3), None);
    }

    #[test]
    fn shrink_balances_adoptions_across_survivors() {
        let mut s = store(10, 2);
        for r in [1, 3, 5] {
            s.machine_lost(r);
        }
        let failed: BTreeSet<usize> = [1, 3, 5].into_iter().collect();
        let plan = RecoveryPlanner.plan_shrink(&s, &failed).unwrap();
        assert_eq!(plan.case, RecoveryCase::HardwareFromCpu);
        // Each lost shard's surviving group peer adopts it locally — three
        // distinct adopters, no survivor takes two shards.
        let adopters: Vec<usize> = plan.moves.iter().map(|m| m.to).collect();
        assert_eq!(adopters, vec![0, 2, 4]);
        assert!(plan.moves.iter().all(|m| m.tier == StorageTier::LocalCpu));
    }

    #[test]
    fn shrink_past_tolerance_falls_back_to_persistent() {
        let mut s = store(8, 2);
        s.machine_lost(0);
        s.machine_lost(1);
        let failed: BTreeSet<usize> = [0, 1].into_iter().collect();
        let plan = RecoveryPlanner.plan_shrink(&s, &failed).unwrap();
        assert_eq!(plan.case, RecoveryCase::PersistentFallback);
        assert_eq!(plan.iteration, 100);
        assert!(plan
            .moves
            .iter()
            .all(|m| m.tier == StorageTier::Persistent && m.from.is_none()));
        // Still balanced: two moves, two distinct adopters.
        assert_ne!(plan.moves[0].to, plan.moves[1].to);
    }

    #[test]
    fn shrink_errors_are_structured() {
        let mut s = store(4, 2);
        s.machine_lost(0);
        s.machine_lost(1);
        // Whole group lost and no persistent anchor → unrecoverable.
        let mut bare = HierarchicalStore::new(
            Placement::mixed(4, 2).unwrap(),
            ByteSize::from_gb(75),
        );
        bare.record_complete(10);
        bare.machine_lost(0);
        bare.machine_lost(1);
        assert_eq!(
            RecoveryPlanner
                .plan_shrink(&bare, &[0, 1].into_iter().collect())
                .unwrap_err(),
            GeminiError::NoCheckpointAvailable
        );
        // Empty loss set and out-of-range ranks are rejected.
        assert!(RecoveryPlanner.plan_shrink(&s, &BTreeSet::new()).is_err());
        assert_eq!(
            RecoveryPlanner
                .plan_shrink(&s, &[9].into_iter().collect())
                .unwrap_err(),
            GeminiError::UnknownRank(9)
        );
        // Fewer survivors than replicas cannot re-place.
        let mut tiny = HierarchicalStore::new(
            Placement::mixed(3, 2).unwrap(),
            ByteSize::from_gb(75),
        );
        tiny.persist(1);
        tiny.record_complete(2);
        tiny.machine_lost(0);
        tiny.machine_lost(1);
        assert!(matches!(
            RecoveryPlanner
                .plan_shrink(&tiny, &[0, 1].into_iter().collect())
                .unwrap_err(),
            GeminiError::InvalidPlacement { .. }
        ));
    }

    #[test]
    fn shrink_plan_is_deterministic() {
        let build = || {
            let mut s = store(12, 3);
            for r in [2, 7, 11] {
                s.machine_lost(r);
            }
            let plan = RecoveryPlanner
                .plan_shrink(&s, &[2, 7, 11].into_iter().collect())
                .unwrap();
            format!("{plan:?}")
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn every_rank_appears_exactly_once_in_sources() {
        let mut s = store(10, 3);
        s.machine_lost(7);
        let plan = RecoveryPlanner
            .plan(&s, &[(7, FailureKind::Hardware)])
            .unwrap();
        let mut ranks: Vec<usize> = plan.sources.iter().map(|s| s.rank).collect();
        ranks.sort_unstable();
        assert_eq!(ranks, (0..10).collect::<Vec<_>>());
    }
}
