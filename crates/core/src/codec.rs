//! A real byte-level checkpoint codec.
//!
//! The simulation tracks checkpoint *metadata*, but recovery is only
//! credible if actual bytes round-trip: this codec frames a model-state
//! shard with a magic, version, identity fields, a length and a CRC-32
//! checksum, and refuses to decode anything corrupted or truncated — the
//! property that lets GEMINI distinguish a complete checkpoint buffer from
//! one a failure interrupted mid-write.

use crate::error::GeminiError;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Frame magic: "GMNI".
const MAGIC: u32 = 0x474D_4E49;
/// Current frame version.
const VERSION: u16 = 1;
/// Fixed header size: magic(4) + version(2) + owner(4) + iteration(8) +
/// len(8).
const HEADER_LEN: usize = 26;
/// Trailer: crc32(4).
const TRAILER_LEN: usize = 4;

/// A decoded checkpoint shard.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointPayload {
    /// Owning machine rank.
    pub owner: u32,
    /// Training iteration.
    pub iteration: u64,
    /// The serialized model states.
    pub data: Bytes,
}

/// Encodes a shard into a framed buffer.
pub fn encode(owner: u32, iteration: u64, data: &[u8]) -> Bytes {
    let mut buf = BytesMut::with_capacity(HEADER_LEN + data.len() + TRAILER_LEN);
    buf.put_u32(MAGIC);
    buf.put_u16(VERSION);
    buf.put_u32(owner);
    buf.put_u64(iteration);
    buf.put_u64(data.len() as u64);
    buf.put_slice(data);
    let crc = crc32(&buf);
    buf.put_u32(crc);
    buf.freeze()
}

/// Decodes a framed buffer, verifying magic, version, length and checksum.
pub fn decode(mut frame: &[u8]) -> Result<CheckpointPayload, GeminiError> {
    if frame.len() < HEADER_LEN + TRAILER_LEN {
        return Err(GeminiError::Codec("frame truncated"));
    }
    let body_len = frame.len() - TRAILER_LEN;
    let (body, mut trailer) = frame.split_at(body_len);
    let stored_crc = trailer.get_u32();
    if crc32(body) != stored_crc {
        return Err(GeminiError::Codec("checksum mismatch"));
    }
    if frame.get_u32() != MAGIC {
        return Err(GeminiError::Codec("bad magic"));
    }
    if frame.get_u16() != VERSION {
        return Err(GeminiError::Codec("unsupported version"));
    }
    let owner = frame.get_u32();
    let iteration = frame.get_u64();
    let len = frame.get_u64() as usize;
    if len != body_len - HEADER_LEN {
        return Err(GeminiError::Codec("length field mismatch"));
    }
    Ok(CheckpointPayload {
        owner,
        iteration,
        data: Bytes::copy_from_slice(&frame[..len]),
    })
}

/// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // CRC-32("123456789") = 0xCBF43926 (the standard check value).
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip() {
        let data: Vec<u8> = (0..10_000u32).flat_map(|x| x.to_le_bytes()).collect();
        let frame = encode(7, 310, &data);
        let decoded = decode(&frame).unwrap();
        assert_eq!(decoded.owner, 7);
        assert_eq!(decoded.iteration, 310);
        assert_eq!(&decoded.data[..], &data[..]);
    }

    #[test]
    fn empty_payload_roundtrips() {
        let frame = encode(0, 0, &[]);
        let decoded = decode(&frame).unwrap();
        assert!(decoded.data.is_empty());
    }

    #[test]
    fn corruption_detected() {
        let frame = encode(1, 2, b"model states");
        for idx in 0..frame.len() {
            let mut bad = frame.to_vec();
            bad[idx] ^= 0x01;
            assert!(decode(&bad).is_err(), "flip at byte {idx} went undetected");
        }
    }

    #[test]
    fn truncation_detected() {
        let frame = encode(1, 2, b"model states");
        for cut in 0..frame.len() {
            assert!(decode(&frame[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn wrong_magic_rejected() {
        let mut frame = encode(1, 2, b"x").to_vec();
        frame[0] = b'X';
        assert!(matches!(decode(&frame), Err(GeminiError::Codec(_))));
    }
}
