//! The checkpoint partition algorithm (paper §5.3, Algorithm 2).
//!
//! Given the profiled network idle timespans `T = {t1, …, td}`, the
//! checkpoint size `C`, the number of remote copies to transmit, the
//! reserved GPU buffer `R` split into `p` parts, and the point-to-point
//! cost `f(s) = α + s/B`, produce the chunk sizes and their assignment to
//! idle spans.
//!
//! Faithful to the paper with two clarifications:
//!
//! * Line 17 of the pseudocode updates `remain_span` by `f(remain_size)`;
//!   the consistent quantity is `f(size)` (the chunk just scheduled), which
//!   is what we use.
//! * The paper states `m − 1` replicas cross the network (the local copy
//!   uses the GPU→CPU engine only), so [`PartitionInput::copies`] is the
//!   number of *network* copies; callers pass `m − 1`.
//!
//! The last idle timespan is treated as unbounded (`t[d] = +∞`, line 2):
//! traffic that does not fit in real idle time spills past the end of the
//! iteration, and [`PartitionPlan::overflow`] reports by how much — the
//! iteration-time overhead the interleaving ablation (Fig. 16) measures.

use crate::error::GeminiError;
use gemini_net::{ByteSize, TransferCost};
use gemini_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// One checkpoint chunk scheduled into an idle span.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Chunk {
    /// Which network copy this chunk belongs to (`0 .. copies`).
    pub copy_index: usize,
    /// Chunk payload size.
    pub size: ByteSize,
    /// Index into the idle-span list this chunk is scheduled in.
    pub span_index: usize,
}

/// Input of Algorithm 2.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PartitionInput {
    /// Profiled idle timespans `T` in iteration order. The last one is
    /// treated as unbounded.
    pub idle_spans: Vec<SimDuration>,
    /// Size of one checkpoint `C` (this machine's model-state shard).
    pub ckpt_size: ByteSize,
    /// Number of checkpoint copies sent over the network (`m − 1`).
    pub copies: usize,
    /// Total reserved GPU buffer `R`.
    pub reserved_buffer: ByteSize,
    /// Number of buffer parts `p`.
    pub buffer_parts: usize,
    /// Point-to-point network cost `f(s) = α + s/B`.
    pub cost: TransferCost,
    /// Idle-span variance coefficient `γ ∈ (0, 1)`.
    pub gamma: f64,
}

/// The output of Algorithm 2.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PartitionPlan {
    /// The scheduled chunks, in transmission order.
    pub chunks: Vec<Chunk>,
    /// Bytes that could not be scheduled anywhere (only possible when the
    /// input has no idle spans at all).
    pub unscheduled: ByteSize,
}

impl PartitionInput {
    /// Maximum chunk size `R / p`.
    pub fn max_chunk(&self) -> ByteSize {
        self.reserved_buffer / self.buffer_parts.max(1) as u64
    }

    fn validate(&self) -> Result<(), GeminiError> {
        if self.idle_spans.is_empty() {
            return Err(GeminiError::InvalidPartitionInput("no idle spans"));
        }
        if self.ckpt_size.is_zero() {
            return Err(GeminiError::InvalidPartitionInput("zero checkpoint size"));
        }
        if self.buffer_parts == 0 || self.reserved_buffer.is_zero() {
            return Err(GeminiError::InvalidPartitionInput("zero buffer"));
        }
        if !(0.0..=1.0).contains(&self.gamma) || self.gamma == 0.0 {
            return Err(GeminiError::InvalidPartitionInput(
                "gamma must be in (0, 1]",
            ));
        }
        Ok(())
    }
}

/// Runs Algorithm 2.
///
/// # Examples
///
/// ```
/// use gemini_core::partition::{checkpoint_partition, PartitionInput};
/// use gemini_net::{Bandwidth, ByteSize, TransferCost};
/// use gemini_sim::SimDuration;
///
/// let input = PartitionInput {
///     idle_spans: vec![SimDuration::from_millis(500), SimDuration::from_secs(8)],
///     ckpt_size: ByteSize::from_gb(2),
///     copies: 1, // m - 1 remote copies
///     reserved_buffer: ByteSize::from_mib(128),
///     buffer_parts: 4,
///     cost: TransferCost::new(
///         SimDuration::from_micros(100),
///         Bandwidth::from_gbytes_per_sec(10.0),
///     ),
///     gamma: 0.8,
/// };
/// let plan = checkpoint_partition(&input)?;
/// assert_eq!(plan.total_bytes(), ByteSize::from_gb(2));
/// assert!(plan.max_chunk() <= input.max_chunk());
/// assert!(plan.overflow(&input.idle_spans, &input.cost).is_zero());
/// # Ok::<(), gemini_core::GeminiError>(())
/// ```
pub fn checkpoint_partition(input: &PartitionInput) -> Result<PartitionPlan, GeminiError> {
    input.validate()?;
    let mut plan = PartitionPlan::default();
    if input.copies == 0 {
        return Ok(plan);
    }
    let max_chunk = input.max_chunk();
    let f_max = input.cost.time(max_chunk);
    let mut copy_index = 0usize;
    let mut remain_size = input.ckpt_size;
    let last = input.idle_spans.len() - 1;

    for (span_index, &span) in input.idle_spans.iter().enumerate() {
        // Line 2: the last span is unbounded; line 7: scale by γ.
        let mut remain_span = if span_index == last {
            SimDuration::MAX
        } else {
            span.mul_f64(input.gamma)
        };
        loop {
            // Lines 9-13: pick the chunk size this span still admits.
            let size = if remain_span == SimDuration::MAX || remain_span > f_max {
                max_chunk
            } else {
                input.cost.max_size_within(remain_span)
            };
            let size = size.min(remain_size);
            if size.is_zero() {
                break; // span exhausted
            }
            remain_size = remain_size.saturating_sub(size);
            if remain_span != SimDuration::MAX {
                remain_span = remain_span.saturating_sub(input.cost.time(size));
            }
            plan.chunks.push(Chunk {
                copy_index,
                size,
                span_index,
            });
            // Lines 20-25: move to the next copy or finish.
            if remain_size.is_zero() {
                if copy_index + 1 < input.copies {
                    copy_index += 1;
                    remain_size = input.ckpt_size;
                } else {
                    return Ok(plan);
                }
            }
        }
    }
    // Unreachable with a non-empty span list (the last span is unbounded),
    // but kept for robustness.
    plan.unscheduled = remain_size + input.ckpt_size * (input.copies - 1 - copy_index) as u64;
    Ok(plan)
}

impl PartitionPlan {
    /// Total bytes scheduled.
    pub fn total_bytes(&self) -> ByteSize {
        self.chunks.iter().map(|c| c.size).sum()
    }

    /// Number of chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// The largest chunk (must not exceed `R / p`).
    pub fn max_chunk(&self) -> ByteSize {
        self.chunks
            .iter()
            .map(|c| c.size)
            .fold(ByteSize::ZERO, ByteSize::max)
    }

    /// Network time the chunks scheduled in `span_index` occupy.
    pub fn span_time(&self, span_index: usize, cost: &TransferCost) -> SimDuration {
        self.chunks
            .iter()
            .filter(|c| c.span_index == span_index)
            .fold(SimDuration::ZERO, |acc, c| acc + cost.time(c.size))
    }

    /// How far the traffic scheduled into the final (unbounded) span
    /// exceeds that span's real length — the iteration-time overhead when
    /// the idle time is insufficient (§5.3, "Finish checkpointing within an
    /// iteration").
    pub fn overflow(&self, idle_spans: &[SimDuration], cost: &TransferCost) -> SimDuration {
        if idle_spans.is_empty() {
            return SimDuration::ZERO;
        }
        let last = idle_spans.len() - 1;
        self.span_time(last, cost).saturating_sub(idle_spans[last])
    }

    /// Checks the plan against its input: chunk sizes within `R/p`, total
    /// bytes equal to `copies × C`, per-span γ-budget respected for all but
    /// the final span. Returns a description of the first violation.
    pub fn check_against(&self, input: &PartitionInput) -> Result<(), String> {
        let max = input.max_chunk();
        for (i, c) in self.chunks.iter().enumerate() {
            if c.size > max {
                return Err(format!("chunk {i} exceeds R/p: {} > {max}", c.size));
            }
            if c.size.is_zero() {
                return Err(format!("chunk {i} is empty"));
            }
        }
        let expect = input.ckpt_size * input.copies as u64;
        let got = self.total_bytes() + self.unscheduled;
        if got != expect {
            return Err(format!("bytes {got} != copies×C {expect}"));
        }
        let last = input.idle_spans.len().saturating_sub(1);
        for (idx, &span) in input.idle_spans.iter().enumerate() {
            if idx == last {
                continue;
            }
            let used = self.span_time(idx, &input.cost);
            let budget = span.mul_f64(input.gamma);
            if used > budget {
                return Err(format!("span {idx} overfull: {used} > γ-budget {budget}"));
            }
        }
        // Copy indices are monotone (a copy finishes before the next starts).
        for pair in self.chunks.windows(2) {
            if pair[1].copy_index < pair[0].copy_index {
                return Err("copy indices regressed".into());
            }
            if pair[1].span_index < pair[0].span_index {
                return Err("span indices regressed".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemini_net::Bandwidth;

    fn cost() -> TransferCost {
        // 10 GB/s, 1 ms startup.
        TransferCost::new(
            SimDuration::from_millis(1),
            Bandwidth::from_gbytes_per_sec(10.0),
        )
    }

    fn input(spans_ms: &[u64], ckpt_mb: u64, copies: usize) -> PartitionInput {
        PartitionInput {
            idle_spans: spans_ms
                .iter()
                .map(|&ms| SimDuration::from_millis(ms))
                .collect(),
            ckpt_size: ByteSize::from_mb(ckpt_mb),
            copies,
            reserved_buffer: ByteSize::from_mib(128),
            buffer_parts: 4,
            cost: cost(),
            gamma: 0.8,
        }
    }

    #[test]
    fn everything_scheduled_and_conserved() {
        let inp = input(&[500, 300, 800, 10_000], 900, 1);
        let plan = checkpoint_partition(&inp).unwrap();
        plan.check_against(&inp).unwrap();
        assert_eq!(plan.total_bytes(), ByteSize::from_mb(900));
        assert_eq!(plan.unscheduled, ByteSize::ZERO);
    }

    #[test]
    fn chunks_respect_buffer_limit() {
        let inp = input(&[5_000, 5_000], 2_000, 2);
        let plan = checkpoint_partition(&inp).unwrap();
        assert!(plan.max_chunk() <= inp.max_chunk());
        assert!(plan.chunk_count() > 1);
        plan.check_against(&inp).unwrap();
    }

    #[test]
    fn multiple_copies_partition_m_times() {
        let one = checkpoint_partition(&input(&[50_000], 100, 1)).unwrap();
        let three = checkpoint_partition(&input(&[50_000], 100, 3)).unwrap();
        assert_eq!(three.total_bytes(), one.total_bytes() * 3);
        assert_eq!(three.chunks.iter().map(|c| c.copy_index).max(), Some(2));
    }

    #[test]
    fn zero_copies_is_empty_plan() {
        let plan = checkpoint_partition(&input(&[1_000], 100, 0)).unwrap();
        assert!(plan.chunks.is_empty());
    }

    #[test]
    fn gamma_shrinks_usable_span() {
        // A 100 ms span at γ=0.8 gives 80 ms; at 10 GB/s minus α=1 ms per
        // chunk the span admits < 800 MB.
        let mut inp = input(&[100, 1], 1_000, 1);
        inp.gamma = 0.8;
        let plan = checkpoint_partition(&inp).unwrap();
        let first_span_bytes: ByteSize = plan
            .chunks
            .iter()
            .filter(|c| c.span_index == 0)
            .map(|c| c.size)
            .sum();
        assert!(first_span_bytes < ByteSize::from_mb(800));
        plan.check_against(&inp).unwrap();
    }

    #[test]
    fn tiny_spans_are_skipped() {
        // A span shorter than α admits nothing.
        let inp = input(&[0, 10_000], 100, 1);
        let plan = checkpoint_partition(&inp).unwrap();
        assert!(plan.chunks.iter().all(|c| c.span_index == 1));
    }

    #[test]
    fn last_span_absorbs_overflow() {
        // One real span far too small: everything lands in the final span
        // and overflows it.
        let inp = input(&[10, 20], 4_000, 1);
        let plan = checkpoint_partition(&inp).unwrap();
        assert_eq!(plan.unscheduled, ByteSize::ZERO);
        let overflow = plan.overflow(&inp.idle_spans, &inp.cost);
        assert!(overflow > SimDuration::ZERO);
        // ≈ 4 GB at 10 GB/s ≈ 400 ms (plus ~118 per-chunk α's of 1 ms)
        // minus the 20 ms span.
        assert!(
            (overflow.as_secs_f64() - 0.49).abs() < 0.1,
            "overflow = {overflow}"
        );
    }

    #[test]
    fn no_overflow_when_idle_time_sufficient() {
        let inp = input(&[500, 500, 60_000], 900, 2);
        let plan = checkpoint_partition(&inp).unwrap();
        assert_eq!(plan.overflow(&inp.idle_spans, &inp.cost), SimDuration::ZERO);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let mut inp = input(&[], 100, 1);
        assert!(checkpoint_partition(&inp).is_err());
        inp = input(&[100], 0, 1);
        assert!(checkpoint_partition(&inp).is_err());
        inp = input(&[100], 100, 1);
        inp.buffer_parts = 0;
        assert!(checkpoint_partition(&inp).is_err());
        inp = input(&[100], 100, 1);
        inp.gamma = 0.0;
        assert!(checkpoint_partition(&inp).is_err());
        inp = input(&[100], 100, 1);
        inp.gamma = 1.5;
        assert!(checkpoint_partition(&inp).is_err());
    }

    #[test]
    fn chunk_order_is_monotone_in_spans_and_copies() {
        let inp = input(&[300, 300, 300, 300, 9_000], 500, 2);
        let plan = checkpoint_partition(&inp).unwrap();
        plan.check_against(&inp).unwrap();
    }

    #[test]
    fn paper_scale_gpt2_100b() {
        // GPT-2 100B on p4d: 75 GB per machine, one remote copy, idle spans
        // totalling ≈15 s at 40 GB/s effective — fits with no overflow.
        let inp = PartitionInput {
            idle_spans: vec![
                SimDuration::from_secs_f64(0.5),
                SimDuration::from_secs_f64(1.0),
                SimDuration::from_secs_f64(1.5),
                SimDuration::from_secs_f64(2.0),
                SimDuration::from_secs_f64(9.5),
            ],
            ckpt_size: ByteSize::from_gb(75),
            copies: 1,
            reserved_buffer: ByteSize::from_mib(128),
            buffer_parts: 4,
            cost: TransferCost::new(
                SimDuration::from_micros(100),
                Bandwidth::from_gbytes_per_sec(40.0),
            ),
            gamma: 0.8,
        };
        let plan = checkpoint_partition(&inp).unwrap();
        plan.check_against(&inp).unwrap();
        assert_eq!(plan.total_bytes(), ByteSize::from_gb(75));
        // 75 GB in 32 MiB chunks ≈ 2235 chunks.
        assert!(
            plan.chunk_count() > 2_000,
            "chunks = {}",
            plan.chunk_count()
        );
        let overflow = plan.overflow(&inp.idle_spans, &inp.cost);
        assert!(
            overflow < SimDuration::from_secs(1),
            "overflow = {overflow}"
        );
    }
}
