//! The wasted-time model (paper §2.1, Equation 1 and Figure 1).
//!
//! A failure wipes the training progress since the last complete
//! checkpoint and costs the retrieval of that checkpoint:
//!
//! ```text
//! T_wasted = t_ckpt + 1/(2f) + t_rtvl            (Equation 1)
//! 1/f ≥ max(t_ckpt, T_iter)                      (Equation 2)
//! ```
//!
//! where `t_ckpt` is the checkpoint time, `f` the checkpoint frequency and
//! `t_rtvl` the retrieval time, assuming failures land uniformly between
//! consecutive checkpoints.

use gemini_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// A checkpointing regime: how long a checkpoint takes, how often it runs
/// and how long retrieval takes on failure.
///
/// # Examples
///
/// ```
/// use gemini_core::WastedTimeModel;
/// use gemini_sim::SimDuration;
///
/// // A BLOOM-style regime: 9.3 min checkpoints every 3 h, 8 min retrieval.
/// let w = WastedTimeModel::new(
///     SimDuration::from_secs(558),
///     SimDuration::from_hours(3),
///     SimDuration::from_secs(62),
///     SimDuration::from_secs(480),
/// );
/// let avg_minutes = w.average_wasted().as_secs_f64() / 60.0;
/// assert!((avg_minutes - 107.3).abs() < 1.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WastedTimeModel {
    /// Checkpoint time `t_ckpt`.
    pub ckpt_time: SimDuration,
    /// Checkpoint interval `1/f`.
    pub interval: SimDuration,
    /// Retrieval time `t_rtvl`.
    pub retrieval_time: SimDuration,
}

impl WastedTimeModel {
    /// Builds a regime, clamping the interval up to Equation 2's floor
    /// `max(t_ckpt, t_iter)`: one checkpoint cannot start before the
    /// previous completes, and more than one per iteration is pointless.
    pub fn new(
        ckpt_time: SimDuration,
        requested_interval: SimDuration,
        iteration_time: SimDuration,
        retrieval_time: SimDuration,
    ) -> Self {
        let floor = ckpt_time.max(iteration_time);
        WastedTimeModel {
            ckpt_time,
            interval: requested_interval.max(floor),
            retrieval_time,
        }
    }

    /// Best case (failure right after a checkpoint completes):
    /// `t_ckpt + t_rtvl`.
    pub fn best_case(&self) -> SimDuration {
        self.ckpt_time + self.retrieval_time
    }

    /// Worst case (failure right before a checkpoint completes):
    /// `t_ckpt + 1/f + t_rtvl`.
    pub fn worst_case(&self) -> SimDuration {
        self.ckpt_time + self.interval + self.retrieval_time
    }

    /// Equation 1: the average wasted time `t_ckpt + 1/(2f) + t_rtvl`.
    pub fn average_wasted(&self) -> SimDuration {
        self.ckpt_time + self.interval / 2 + self.retrieval_time
    }

    /// Checkpoint frequency in checkpoints per hour (for Fig. 12).
    pub fn frequency_per_hour(&self) -> f64 {
        if self.interval.is_zero() {
            return 0.0;
        }
        3_600.0 / self.interval.as_secs_f64()
    }
}

/// An *accumulator* over an actual run, complementing the closed-form
/// [`WastedTimeModel`]: every failure contributes the rework of the
/// iterations rolled back plus the recovery downtime, and every
/// checkpoint/persist contributes its visible overhead. The policy bench
/// compares adaptive vs fixed policies by the [`WastedLedger::total`] of
/// otherwise-identical chaos campaigns.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WastedLedger {
    /// Failures recorded.
    pub failures: u64,
    /// Iterations of lost progress re-done after rollbacks.
    pub rework_iters: u64,
    /// Time re-training the rolled-back iterations.
    pub rework: SimDuration,
    /// Downtime spent detecting + recovering (training stalled).
    pub downtime: SimDuration,
    /// Checkpoint/persist overhead visible to training.
    pub overhead: SimDuration,
}

impl WastedLedger {
    /// Records one failure: `rolled_back` iterations of `iteration_time`
    /// each must be re-trained, and `downtime` passed with training
    /// stalled.
    pub fn record_failure(
        &mut self,
        rolled_back: u64,
        iteration_time: SimDuration,
        downtime: SimDuration,
    ) {
        self.failures += 1;
        self.rework_iters += rolled_back;
        self.rework = self.rework.saturating_add(iteration_time * rolled_back);
        self.downtime = self.downtime.saturating_add(downtime);
    }

    /// Records checkpoint (or persistent-upload) overhead visible to
    /// training.
    pub fn record_overhead(&mut self, overhead: SimDuration) {
        self.overhead = self.overhead.saturating_add(overhead);
    }

    /// Total wasted time: rework + downtime + overhead.
    pub fn total(&self) -> SimDuration {
        self.rework
            .saturating_add(self.downtime)
            .saturating_add(self.overhead)
    }

    /// The three wasted-time categories as `(name, amount)` pairs, in
    /// ledger-field order. This is the contract the incident flight
    /// recorder's attribution invariant checks against: per-category
    /// attribution sums must reproduce these amounts *exactly*.
    pub fn components(&self) -> [(&'static str, SimDuration); 3] {
        [
            ("rework", self.rework),
            ("downtime", self.downtime),
            ("overhead", self.overhead),
        ]
    }

    /// Whether per-category sums reproduce this ledger exactly; on
    /// mismatch, returns the categories that disagree as
    /// `(name, ledger_amount, attributed_amount)`.
    pub fn check_attribution(
        &self,
        rework: SimDuration,
        downtime: SimDuration,
        overhead: SimDuration,
    ) -> Result<(), Vec<(&'static str, SimDuration, SimDuration)>> {
        let mut bad = Vec::new();
        for (name, ledger, attributed) in [
            ("rework", self.rework, rework),
            ("downtime", self.downtime, downtime),
            ("overhead", self.overhead, overhead),
        ] {
            if ledger != attributed {
                bad.push((name, ledger, attributed));
            }
        }
        if bad.is_empty() {
            Ok(())
        } else {
            Err(bad)
        }
    }

    /// Merges another ledger into this one (campaign aggregation).
    pub fn merge(&mut self, other: &WastedLedger) {
        self.failures += other.failures;
        self.rework_iters += other.rework_iters;
        self.rework = self.rework.saturating_add(other.rework);
        self.downtime = self.downtime.saturating_add(other.downtime);
        self.overhead = self.overhead.saturating_add(other.overhead);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mins(m: u64) -> SimDuration {
        SimDuration::from_mins(m)
    }

    #[test]
    fn average_is_midpoint_of_best_and_worst() {
        let w = WastedTimeModel::new(mins(9), mins(180), mins(1), mins(8));
        let avg = w.average_wasted();
        let mid = (w.best_case() + w.worst_case()) / 2;
        assert_eq!(avg, mid);
    }

    #[test]
    fn bloom_strawman_numbers() {
        // Strawman = BLOOM's 3-hour frequency to 20 Gbps storage:
        // t_ckpt ≈ 9.3 min (1.2 TB / 2.5 GB/s / 16 machines aggregated),
        // retrieval ≈ 8 min → average ≈ 9.3 + 90 + 8 ≈ 107 min.
        let w = WastedTimeModel::new(
            SimDuration::from_secs(558),
            mins(180),
            SimDuration::from_secs(62),
            SimDuration::from_secs(480),
        );
        let avg_min = w.average_wasted().as_secs_f64() / 60.0;
        assert!((avg_min - 107.3).abs() < 1.0, "avg = {avg_min:.1} min");
    }

    #[test]
    fn equation2_floor_applies() {
        // Requesting an interval below max(t_ckpt, t_iter) clamps up.
        let w = WastedTimeModel::new(
            SimDuration::from_secs(558),
            SimDuration::from_secs(1),
            SimDuration::from_secs(62),
            SimDuration::ZERO,
        );
        assert_eq!(w.interval, SimDuration::from_secs(558));
        // GEMINI's regime: ckpt faster than an iteration → floor is T_iter.
        let g = WastedTimeModel::new(
            SimDuration::from_secs(2),
            SimDuration::ZERO,
            SimDuration::from_secs(62),
            SimDuration::from_secs(3),
        );
        assert_eq!(g.interval, SimDuration::from_secs(62));
    }

    #[test]
    fn gemini_software_failure_is_1_5x_iteration() {
        // §7.2: with local checkpoints the average wasted time is ≈1.5
        // iterations (t_ckpt ≈ 0 network-visible, retrieval ≈ T_iter-scale
        // negligible): T_iter/2 + T_iter ≈ 1.5 T_iter — here we check the
        // arithmetic shape with t_ckpt = T_iter (the state becomes durable
        // by the end of the same iteration) and t_rtvl ≈ 0.
        let t_iter = SimDuration::from_secs(62);
        let g = WastedTimeModel::new(t_iter, t_iter, t_iter, SimDuration::ZERO);
        let ratio = g.average_wasted().as_secs_f64() / t_iter.as_secs_f64();
        assert!((ratio - 1.5).abs() < 1e-9);
    }

    #[test]
    fn ledger_accumulates_and_merges() {
        let mut a = WastedLedger::default();
        a.record_failure(10, SimDuration::from_secs(62), mins(5));
        a.record_overhead(SimDuration::from_secs(30));
        assert_eq!(a.failures, 1);
        assert_eq!(a.rework_iters, 10);
        assert_eq!(a.rework, SimDuration::from_secs(620));
        assert_eq!(
            a.total(),
            SimDuration::from_secs(620) + mins(5) + SimDuration::from_secs(30)
        );
        let mut b = WastedLedger::default();
        b.record_failure(3, SimDuration::from_secs(100), SimDuration::ZERO);
        b.merge(&a);
        assert_eq!(b.failures, 2);
        assert_eq!(b.rework_iters, 13);
        assert_eq!(b.total(), SimDuration::from_secs(300) + a.total());
    }

    #[test]
    fn attribution_check_demands_exact_sums() {
        let mut l = WastedLedger::default();
        l.record_failure(10, SimDuration::from_secs(62), mins(5));
        l.record_overhead(SimDuration::from_secs(30));
        assert!(l
            .check_attribution(
                SimDuration::from_secs(620),
                mins(5),
                SimDuration::from_secs(30)
            )
            .is_ok());
        // One nanosecond off in any category is a mismatch.
        let err = l
            .check_attribution(
                SimDuration::from_secs(620) + SimDuration::from_nanos(1),
                mins(5),
                SimDuration::from_secs(30),
            )
            .unwrap_err();
        assert_eq!(err.len(), 1);
        assert_eq!(err[0].0, "rework");
        assert_eq!(
            l.components().map(|(n, _)| n),
            ["rework", "downtime", "overhead"]
        );
    }

    #[test]
    fn frequency_per_hour() {
        let w = WastedTimeModel::new(mins(1), mins(180), mins(1), mins(1));
        assert!((w.frequency_per_hour() - 1.0 / 3.0).abs() < 1e-12);
        let g = WastedTimeModel::new(
            SimDuration::from_secs(2),
            SimDuration::from_secs(62),
            SimDuration::from_secs(62),
            SimDuration::ZERO,
        );
        assert!((g.frequency_per_hour() - 58.06).abs() < 0.1);
    }
}
