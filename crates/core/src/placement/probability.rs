//! Recovery-probability analysis (paper Theorem 1, Corollary 1, Fig. 9).
//!
//! Three independent estimators are provided and cross-checked against each
//! other in the tests:
//!
//! 1. **Closed forms**: Corollary 1's bound for group placement, the
//!    Theorem 1 upper bound and near-optimality gap, and the exact
//!    no-adjacent-pair formula for ring placement with `m = 2`.
//! 2. **Exact enumeration** over all `C(N, k)` failure sets (iterative
//!    Gosper's-hack bitmask subset walking, for `N ≤ 128`).
//! 3. **Monte Carlo** sampling, for arbitrary sizes — sharded so trials
//!    can run on every core while the estimate stays bit-identical to a
//!    serial run at any `jobs` count.
//!
//! The kernels here are the hot path of the Fig. 9 / Fig. 15 sweeps, so
//! they run on `u128` failure bitmasks: zero heap allocation per
//! enumerated subset or Monte-Carlo trial for `N ≤ 128`.

use crate::placement::Placement;
use gemini_parallel::{par_map_cost, shard_ranges, TaskCost};
use gemini_sim::DetRng;
use rand::RngCore;
use std::collections::BTreeSet;
use std::sync::OnceLock;

/// Largest `n` for which a Pascal-triangle lookup table backs
/// [`binomial`]; also the bitmask width limit of the exact enumerator.
pub const BINOMIAL_TABLE_N: usize = 128;

/// The exact enumerator walks at most this many subsets before bailing to
/// `None`. Raised from the historical `1e7` after the Gosper's-hack
/// rewrite: ~`2.5e8` subsets fit the criterion bench budget on a CI-class
/// machine.
pub const EXACT_ENUMERATION_CAP: f64 = 2.5e8;

/// Trials per Monte-Carlo shard. The shard structure is a pure function of
/// the trial count — never of the job count — so the merged estimate is
/// bit-identical at any parallelism.
pub const MC_SHARD_TRIALS: usize = 4096;

fn binomial_table() -> &'static Vec<Vec<f64>> {
    static TABLE: OnceLock<Vec<Vec<f64>>> = OnceLock::new();
    TABLE.get_or_init(|| {
        // Pascal's recurrence: exact in f64 wherever the value fits in 53
        // bits, and within an ulp of the true ratio elsewhere.
        let n_max = BINOMIAL_TABLE_N;
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(n_max + 1);
        rows.push(vec![1.0]);
        for n in 1..=n_max {
            let prev = &rows[n - 1];
            let mut row = vec![0.0; n + 1];
            row[0] = 1.0;
            row[n] = 1.0;
            for k in 1..n {
                row[k] = prev[k - 1] + prev[k];
            }
            rows.push(row);
        }
        rows
    })
}

/// `C(n, k)` as an `f64` (exact for the magnitudes used here). Backed by a
/// precomputed Pascal triangle for `n ≤ 128` (the exact enumerator asks
/// for binomials once per `(n, k)` query but closed-form sweeps ask per
/// point); larger `n` falls back to the multiplicative product.
pub fn binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    if n as usize <= BINOMIAL_TABLE_N {
        return binomial_table()[n as usize][k as usize];
    }
    let k = k.min(n - k);
    let mut acc = 1.0f64;
    for i in 0..k {
        acc = acc * (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

/// Corollary 1: with group placement (`m | N`) and `k` simultaneous
/// machine losses, the probability that GEMINI recovers from CPU memory.
/// Exact for `m ≤ k < 2m`; a lower bound for `k ≥ 2m`; exactly 1 for
/// `k < m`.
pub fn corollary1_probability(n: usize, m: usize, k: usize) -> f64 {
    if k < m {
        return 1.0;
    }
    let (nf, mf, kf) = (n as u64, m as u64, k as u64);
    let bad = (nf / mf) as f64 * binomial(nf - mf, kf - mf);
    (1.0 - bad / binomial(nf, kf)).max(0.0)
}

/// Theorem 1's upper bound on the recovery probability of *any* placement
/// with `k = m` simultaneous losses: `1 − ⌈N/m⌉ / C(N, m)` (no placement
/// can use fewer than `⌈N/m⌉` distinct host-sets).
pub fn theorem1_upper_bound(n: usize, m: usize) -> f64 {
    let min_sets = n.div_ceil(m) as f64;
    (1.0 - min_sets / binomial(n as u64, m as u64)).max(0.0)
}

/// Theorem 1.2's bound on the gap between the mixed strategy and the upper
/// bound when `m ∤ N`: `(2m − 3)/C(N, m)`.
pub fn theorem1_gap_bound(n: usize, m: usize) -> f64 {
    if m < 2 {
        return 0.0;
    }
    (2 * m - 3) as f64 / binomial(n as u64, m as u64)
}

/// Exact ring-placement recovery probability for `m = 2`: a failure set is
/// fatal iff it contains two ring-adjacent machines; the number of
/// `k`-subsets of an `n`-cycle with **no** two adjacent elements is
/// `n/(n−k) · C(n−k, k)`.
pub fn ring_m2_probability(n: usize, k: usize) -> f64 {
    if k < 2 {
        return 1.0;
    }
    if k > n {
        return 0.0;
    }
    let good = n as f64 / (n - k) as f64 * binomial((n - k) as u64, k as u64);
    good / binomial(n as u64, k as u64)
}

/// The fatal-set masks of a placement strategy: a failure bitmask is fatal
/// iff it covers one of these `u128` masks. Precomputed once and reused
/// across every enumerated subset / Monte-Carlo trial, replacing the
/// per-trial `BTreeSet` set-cover test.
///
/// Construction minimizes the family: duplicate host-sets collapse and any
/// set that is a superset of another is dropped (covering the superset
/// implies covering the subset, so it can never *add* a fatality).
#[derive(Clone, Debug)]
pub struct FatalSets {
    masks: Vec<u128>,
    machines: usize,
    min_size: u32,
}

impl FatalSets {
    /// Builds fatal-set masks from explicit host-sets over `n ≤ 128`
    /// machines; `None` beyond the bitmask width.
    pub fn from_host_sets(host_sets: &[Vec<usize>], n: usize) -> Option<FatalSets> {
        if n > 128 {
            return None;
        }
        let mut masks: Vec<u128> = host_sets
            .iter()
            .map(|hosts| hosts.iter().fold(0u128, |acc, &h| acc | (1 << h)))
            .collect();
        masks.sort_unstable();
        masks.dedup();
        // Drop supersets of other sets (minimal family only).
        let minimal: Vec<u128> = masks
            .iter()
            .copied()
            .filter(|&m| !masks.iter().any(|&other| other != m && other & m == other))
            .collect();
        let min_size = minimal.iter().map(|m| m.count_ones()).min().unwrap_or(0);
        Some(FatalSets {
            masks: minimal,
            machines: n,
            min_size,
        })
    }

    /// Builds the fatal-set masks of `placement` (`None` when it has more
    /// than 128 machines).
    pub fn from_placement(placement: &Placement) -> Option<FatalSets> {
        Self::from_host_sets(&placement.unique_host_sets(), placement.machines())
    }

    /// Whether the failure bitmask is survivable: no replica host-set is
    /// fully contained in `failed`.
    #[inline]
    pub fn recoverable(&self, failed: u128) -> bool {
        !self.masks.iter().any(|&s| s & failed == s)
    }

    /// Batched cover test: how many of the eight failure masks are
    /// survivable. Sweeps the fatal family once per *block* instead of once
    /// per trial, giving the AND/compare units eight independent masks per
    /// fatal set (the Monte-Carlo kernels process trials in blocks of 8
    /// through this). Exactly equivalent to eight [`Self::recoverable`]
    /// calls.
    #[inline]
    pub fn recoverable_batch8(&self, failed: &[u128; 8]) -> u32 {
        let mut fatal_lanes = 0u32;
        for &s in &self.masks {
            let mut hits = 0u32;
            for (lane, &f) in failed.iter().enumerate() {
                hits |= ((s & f == s) as u32) << lane;
            }
            fatal_lanes |= hits;
            if fatal_lanes == 0xff {
                break; // every lane already fatal — nothing left to learn
            }
        }
        8 - fatal_lanes.count_ones()
    }

    /// Number of machines the masks are defined over.
    pub fn machines(&self) -> usize {
        self.machines
    }

    /// The minimal fatal-set cardinality: any failure of fewer machines is
    /// recoverable outright — the early fatal-prune of the enumerator.
    pub fn min_fatal_size(&self) -> u32 {
        self.min_size
    }

    /// The minimal fatal masks (sorted, deduplicated, superset-free).
    pub fn masks(&self) -> &[u128] {
        &self.masks
    }
}

/// Exact recovery probability by enumerating every `C(N, k)` failure set.
/// Returns `None` when `N > 128` (bitmask width) or the subset count
/// exceeds [`EXACT_ENUMERATION_CAP`].
pub fn exact_recovery_probability(placement: &Placement, k: usize) -> Option<f64> {
    let sets: Vec<Vec<usize>> = placement.unique_host_sets();
    host_sets_recovery_probability(&sets, placement.machines(), k)
}

/// Exact recovery probability of an *arbitrary* strategy described by its
/// distinct replica host-sets — the `S′ = unique(S)` of the Theorem 1
/// analysis. This is how the optimality claim is adversarially tested:
/// random strategies (any assignment of `m` hosts per machine, own machine
/// included) are priced with the same enumerator and compared against
/// [`theorem1_upper_bound`].
///
/// Enumeration is iterative (Gosper's hack over `u128` masks) rather than
/// the old recursive `C(N, k)` walk, with the fatal-set family minimized
/// up front and an early prune when `k` is below the smallest fatal set.
pub fn host_sets_recovery_probability(host_sets: &[Vec<usize>], n: usize, k: usize) -> Option<f64> {
    if n > 128 || k > n {
        return None;
    }
    let total = binomial(n as u64, k as u64);
    if total > EXACT_ENUMERATION_CAP {
        return None;
    }
    let fatal = FatalSets::from_host_sets(host_sets, n)?;
    // Early fatal-prune: fewer losses than the smallest replica set can
    // never cover one — every subset is recoverable, skip the walk.
    if (k as u32) < fatal.min_fatal_size() || k == 0 {
        return Some(1.0);
    }
    let total_subsets = total as u64; // exact: capped well below 2^53
    let mut good: u64 = 0;
    let mut remaining = total_subsets;
    // First k-subset in Gosper order: the lowest k bits.
    let mut v: u128 = if k == 128 {
        u128::MAX
    } else {
        (1u128 << k) - 1
    };
    loop {
        if fatal.recoverable(v) {
            good += 1;
        }
        remaining -= 1;
        if remaining == 0 {
            break;
        }
        v = gosper_next(v);
    }
    Some(good as f64 / total_subsets.max(1) as f64)
}

/// The next `k`-subset mask in Gosper's-hack order. Wrapping arithmetic:
/// the caller never advances past the final subset of `0..n`, but the
/// intermediate `v + c` may carry out of the top bit when `n = 128`.
#[inline]
pub(crate) fn gosper_next(v: u128) -> u128 {
    let c = v & v.wrapping_neg();
    let r = v.wrapping_add(c);
    r | (((v ^ r) >> 2) / c)
}

/// Monte Carlo estimate of the recovery probability with `k` simultaneous
/// uniform-random machine losses. Serial entry point — identical to
/// [`monte_carlo_recovery_probability_jobs`] with `jobs = 1` (which is in
/// turn bit-identical at any job count).
pub fn monte_carlo_recovery_probability(
    placement: &Placement,
    k: usize,
    trials: u32,
    rng: &mut DetRng,
) -> f64 {
    monte_carlo_recovery_probability_jobs(placement, k, trials, rng, 1)
}

/// Sharded Monte Carlo estimate: `trials` are split into fixed-size shards
/// ([`MC_SHARD_TRIALS`]), each shard forks an independent child stream
/// from its shard index, and shard tallies merge by index — so the result
/// is bit-identical for every `jobs` value.
///
/// For `N ≤ 128` the trial loop runs entirely on `u128` bitmasks
/// ([`DetRng::sample_mask`] + [`FatalSets::recoverable`]): **zero heap
/// allocations per trial** (the historical kernel built a `Vec` and a
/// `BTreeSet` per trial). Larger clusters fall back to Floyd sampling into
/// one reused scratch vector per shard.
pub fn monte_carlo_recovery_probability_jobs(
    placement: &Placement,
    k: usize,
    trials: u32,
    rng: &mut DetRng,
    jobs: usize,
) -> f64 {
    if k == 0 {
        return 1.0;
    }
    let n = placement.machines();
    // Consume one draw so repeated calls on the same stream see fresh
    // trials, then derive per-shard streams purely from (salt, shard id).
    let salt = rng.next_u64();
    let root = DetRng::new(salt);
    let shards = shard_ranges(trials as usize, MC_SHARD_TRIALS);
    let fatal = FatalSets::from_placement(placement);
    // Cost hint: a 4096-trial shard of mask tests runs in a few hundred
    // microseconds, so one shard is never worth a thread but a real sweep
    // (dozens of shards) is — the pool decides from here.
    let tallies: Vec<u64> = par_map_cost(jobs, shards.len(), TaskCost::micros(200), |s| {
        let (start, end) = shards[s];
        let mut srng = root.fork_index(s as u64);
        let mut good = 0u64;
        match &fatal {
            Some(fatal) => {
                // Fast path (N ≤ 128): mask sampling + mask cover test;
                // no allocation inside this loop. Trials run in blocks of
                // 8 masks so one sweep of the fatal family covers eight
                // trials ([`FatalSets::recoverable_batch8`]); the RNG draw
                // order is identical to the scalar loop, so the estimate
                // is bit-identical to it.
                let total = end - start;
                let mut masks = [0u128; 8];
                for _ in 0..total / 8 {
                    for m in masks.iter_mut() {
                        *m = srng.sample_mask(n, k);
                    }
                    good += u64::from(fatal.recoverable_batch8(&masks));
                }
                for _ in 0..total % 8 {
                    if fatal.recoverable(srng.sample_mask(n, k)) {
                        good += 1;
                    }
                }
            }
            None => {
                let mut scratch: Vec<usize> = Vec::with_capacity(k);
                for _ in start..end {
                    srng.sample_distinct_into(n, k, &mut scratch);
                    if placement.recoverable_sorted(&scratch) {
                        good += 1;
                    }
                }
            }
        }
        good
    });
    let good: u64 = tallies.iter().sum();
    good as f64 / (trials.max(1) as u64) as f64
}

/// The historical per-trial `Vec` + `BTreeSet` Monte-Carlo kernel, kept as
/// the reference implementation for the `probability` criterion bench
/// (bitmask-vs-BTreeSet throughput) and the statistical cross-check test.
pub fn monte_carlo_recovery_probability_reference(
    placement: &Placement,
    k: usize,
    trials: u32,
    rng: &mut DetRng,
) -> f64 {
    if k == 0 {
        return 1.0;
    }
    let n = placement.machines();
    let mut good = 0u32;
    for _ in 0..trials {
        let failed: BTreeSet<usize> = rng.sample_distinct(n, k).into_iter().collect();
        if placement.recoverable(&failed) {
            good += 1;
        }
    }
    good as f64 / trials.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batched_cover_test_matches_scalar() {
        for (n, m) in [(9usize, 2usize), (16, 3), (25, 2), (128, 3)] {
            let p = Placement::mixed(n, m).unwrap();
            let fatal = FatalSets::from_placement(&p).unwrap();
            let mut rng = DetRng::new(0x5eed ^ n as u64);
            for k in [1usize, m, m + 1, n / 2] {
                let mut masks = [0u128; 8];
                for m in masks.iter_mut() {
                    *m = rng.sample_mask(n, k);
                }
                let scalar = masks
                    .iter()
                    .filter(|&&f| fatal.recoverable(f))
                    .count() as u32;
                assert_eq!(fatal.recoverable_batch8(&masks), scalar, "n={n} k={k}");
            }
        }
    }

    #[test]
    fn batched_monte_carlo_is_bit_identical_to_any_jobs() {
        // The block-of-8 kernel must not perturb the estimate: same draws,
        // same tally, at every job count (serial included).
        let p = Placement::ring(24, 2).unwrap();
        let baseline = {
            let mut rng = DetRng::new(77);
            monte_carlo_recovery_probability_jobs(&p, 3, 10_000, &mut rng, 1)
        };
        for jobs in [2usize, 4, 8] {
            let mut rng = DetRng::new(77);
            let est = monte_carlo_recovery_probability_jobs(&p, 3, 10_000, &mut rng, jobs);
            assert_eq!(est.to_bits(), baseline.to_bits(), "jobs={jobs}");
        }
    }

    #[test]
    fn binomial_basics() {
        assert_eq!(binomial(16, 2), 120.0);
        assert_eq!(binomial(16, 0), 1.0);
        assert_eq!(binomial(4, 5), 0.0);
        assert!((binomial(128, 3) - 341_376.0).abs() < 1e-6);
    }

    #[test]
    fn binomial_table_matches_multiplicative_product() {
        // The Pascal LUT and the multiplicative fallback agree everywhere
        // both are exact, and the LUT is exact where f64 integers are.
        for n in [5u64, 16, 33, 50] {
            for k in 0..=n {
                let mut acc = 1.0f64;
                let kk = k.min(n - k);
                for i in 0..kk {
                    acc = acc * (n - i) as f64 / (i + 1) as f64;
                }
                let lut = binomial(n, k);
                assert!(
                    (lut - acc).abs() <= acc * 1e-12,
                    "C({n},{k}): lut {lut} vs product {acc}"
                );
            }
        }
        assert_eq!(binomial(20, 10), 184_756.0);
        assert_eq!(binomial(50, 25), 126_410_606_437_752.0);
        // And the > 128 fallback still works (Fig. 15b's N = 1000).
        assert!((binomial(1000, 2) - 499_500.0).abs() < 1e-6);
    }

    #[test]
    fn corollary1_matches_paper_headline_numbers() {
        // §4 / §7.2: N=16, m=2, k=2 → 93.3%; k=3 → 80.0%.
        assert!((corollary1_probability(16, 2, 2) - 0.9333).abs() < 1e-3);
        assert!((corollary1_probability(16, 2, 3) - 0.80).abs() < 1e-9);
        // k < m is always recoverable.
        assert_eq!(corollary1_probability(16, 2, 1), 1.0);
    }

    #[test]
    fn corollary1_increases_with_n() {
        // "the probability … increases with N" (§4).
        let mut prev = 0.0;
        for n in [8, 16, 32, 64, 128] {
            let p = corollary1_probability(n, 2, 2);
            assert!(p > prev, "N={n}: {p}");
            prev = p;
        }
    }

    #[test]
    fn exact_enumeration_agrees_with_corollary1_for_k_eq_m() {
        for n in [4, 8, 12, 16] {
            let p = Placement::group(n, 2).unwrap();
            let exact = exact_recovery_probability(&p, 2).unwrap();
            let analytic = corollary1_probability(n, 2, 2);
            assert!(
                (exact - analytic).abs() < 1e-12,
                "N={n}: exact {exact} vs analytic {analytic}"
            );
        }
        // m = 3 as well (k = m exactly).
        let p = Placement::group(12, 3).unwrap();
        assert!(
            (exact_recovery_probability(&p, 3).unwrap() - corollary1_probability(12, 3, 3)).abs()
                < 1e-12
        );
    }

    #[test]
    fn exact_enumeration_agrees_for_m_le_k_lt_2m() {
        // Corollary 1 is exact in this band.
        let p = Placement::group(16, 2).unwrap();
        let exact = exact_recovery_probability(&p, 3).unwrap();
        assert!((exact - corollary1_probability(16, 2, 3)).abs() < 1e-12);
    }

    #[test]
    fn corollary1_is_lower_bound_for_large_k() {
        // k ≥ 2m: double-counting makes the closed form conservative.
        for k in 4..8 {
            let p = Placement::group(16, 2).unwrap();
            let exact = exact_recovery_probability(&p, k).unwrap();
            let bound = corollary1_probability(16, 2, k);
            assert!(
                exact >= bound - 1e-12,
                "k={k}: exact {exact} < bound {bound}"
            );
        }
    }

    #[test]
    fn ring_m2_closed_form_matches_enumeration() {
        for n in [6, 10, 16] {
            for k in 2..5 {
                let p = Placement::ring(n, 2).unwrap();
                let exact = exact_recovery_probability(&p, k).unwrap();
                let analytic = ring_m2_probability(n, k);
                assert!(
                    (exact - analytic).abs() < 1e-12,
                    "n={n} k={k}: {exact} vs {analytic}"
                );
            }
        }
    }

    #[test]
    fn group_beats_ring_as_in_fig9() {
        // Fig. 9 and §7.2: at N=16, m=2, k=3 the ring is ≈25% worse.
        let gemini = corollary1_probability(16, 2, 3);
        let ring = ring_m2_probability(16, 3);
        assert!(gemini > ring);
        let drop = (gemini - ring) / gemini;
        assert!((0.15..0.30).contains(&drop), "relative drop = {drop:.3}");
    }

    #[test]
    fn group_attains_theorem1_upper_bound_when_divisible() {
        for (n, m) in [(16, 2), (12, 3), (20, 4)] {
            let p = Placement::group(n, m).unwrap();
            let exact = exact_recovery_probability(&p, m).unwrap();
            let bound = theorem1_upper_bound(n, m);
            assert!(
                (exact - bound).abs() < 1e-12,
                "N={n} m={m}: {exact} vs bound {bound}"
            );
        }
    }

    #[test]
    fn mixed_within_theorem1_gap_when_not_divisible() {
        for (n, m) in [(5, 2), (17, 2), (10, 3), (11, 3), (14, 4)] {
            let p = Placement::mixed(n, m).unwrap();
            let exact = exact_recovery_probability(&p, m).unwrap();
            let bound = theorem1_upper_bound(n, m);
            let gap = theorem1_gap_bound(n, m);
            assert!(exact <= bound + 1e-12, "N={n} m={m}");
            assert!(
                bound - exact <= gap + 1e-12,
                "N={n} m={m}: gap {} exceeds bound {gap}",
                bound - exact
            );
        }
    }

    #[test]
    fn fatal_sets_are_minimal_and_prune() {
        // Duplicates collapse, supersets drop.
        let sets = vec![vec![0, 1], vec![0, 1], vec![0, 1, 2], vec![3, 4, 5]];
        let fatal = FatalSets::from_host_sets(&sets, 8).unwrap();
        assert_eq!(fatal.masks().len(), 2);
        assert_eq!(fatal.min_fatal_size(), 2);
        assert!(fatal.recoverable(0b0000_0001)); // {0} alone survives
        assert!(!fatal.recoverable(0b0000_0011)); // {0,1} is fatal
        assert!(!fatal.recoverable(0b0011_1011)); // superset of {3,4,5}
        assert!(fatal.recoverable(0b0001_1100)); // {2,3,4}: covers nothing
                                                 // Beyond the mask width: None.
        assert!(FatalSets::from_host_sets(&sets, 129).is_none());
    }

    #[test]
    fn early_prune_short_circuits_below_min_fatal_size() {
        // k = 1 < m = 2: certain recovery without walking C(64, 1).
        let p = Placement::mixed(64, 2).unwrap();
        assert_eq!(exact_recovery_probability(&p, 1), Some(1.0));
    }

    #[test]
    fn gosper_walk_visits_every_subset_once() {
        // Count subsets of C(10, 3) by brute force against the walk.
        let sets = vec![vec![0usize, 1]];
        let p = host_sets_recovery_probability(&sets, 10, 3).unwrap();
        // Fatal: subsets containing both 0 and 1 → C(8,1) = 8 of C(10,3)=120.
        assert!((p - (1.0 - 8.0 / 120.0)).abs() < 1e-12, "p = {p}");
    }

    #[test]
    fn raised_cap_admits_beyond_the_old_1e7_limit() {
        // The cap admits ≥ 1e8-subset enumerations (the criterion bench
        // times C(50, 7) ≈ 9.99e7); the unit test walks C(40, 7) ≈ 1.86e7
        // — already beyond the old 1e7 bail-out — to stay debug-friendly.
        assert!(EXACT_ENUMERATION_CAP >= 1e8);
        assert!(binomial(50, 7) > 9.9e7 && binomial(50, 7) < EXACT_ENUMERATION_CAP);
        assert!(binomial(40, 7) > 1.8e7);
        let p = Placement::group(40, 2).unwrap();
        let exact = exact_recovery_probability(&p, 7).unwrap();
        let analytic_floor = corollary1_probability(40, 2, 7);
        // Corollary 1 is a lower bound for k ≥ 2m.
        assert!(exact >= analytic_floor - 1e-12);
        assert!(exact < 1.0);
    }

    #[test]
    fn monte_carlo_agrees_with_exact() {
        let p = Placement::mixed(16, 2).unwrap();
        let exact = exact_recovery_probability(&p, 3).unwrap();
        let mut rng = DetRng::new(42);
        let mc = monte_carlo_recovery_probability(&p, 3, 60_000, &mut rng);
        assert!((mc - exact).abs() < 0.01, "MC {mc:.4} vs exact {exact:.4}");
    }

    #[test]
    fn monte_carlo_reference_kernel_agrees_with_bitmask_kernel() {
        let p = Placement::mixed(16, 2).unwrap();
        let exact = exact_recovery_probability(&p, 3).unwrap();
        let mut rng = DetRng::new(7);
        let reference = monte_carlo_recovery_probability_reference(&p, 3, 40_000, &mut rng);
        let mut rng = DetRng::new(7);
        let bitmask = monte_carlo_recovery_probability(&p, 3, 40_000, &mut rng);
        assert!((reference - exact).abs() < 0.012, "ref {reference:.4}");
        assert!((bitmask - exact).abs() < 0.012, "mask {bitmask:.4}");
    }

    #[test]
    fn monte_carlo_is_bit_identical_across_job_counts() {
        let p = Placement::mixed(48, 2).unwrap();
        let serial = {
            let mut rng = DetRng::new(5);
            monte_carlo_recovery_probability_jobs(&p, 3, 30_000, &mut rng, 1)
        };
        for jobs in [2, 4, 8] {
            let mut rng = DetRng::new(5);
            let par = monte_carlo_recovery_probability_jobs(&p, 3, 30_000, &mut rng, jobs);
            assert_eq!(serial.to_bits(), par.to_bits(), "jobs={jobs}");
        }
    }

    #[test]
    fn monte_carlo_repeat_calls_on_one_stream_differ() {
        // The estimator consumes from the caller's stream, so back-to-back
        // calls see fresh trials (matching the historical behaviour).
        let p = Placement::mixed(16, 2).unwrap();
        let mut rng = DetRng::new(3);
        let a = monte_carlo_recovery_probability(&p, 2, 5_000, &mut rng);
        let b = monte_carlo_recovery_probability(&p, 2, 5_000, &mut rng);
        assert_ne!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn monte_carlo_handles_big_clusters() {
        // Fig. 15b scale: 1000 instances (the > 128 scratch-vector path).
        let p = Placement::mixed(1000, 2).unwrap();
        let mut rng = DetRng::new(7);
        let mc = monte_carlo_recovery_probability(&p, 2, 20_000, &mut rng);
        let analytic = corollary1_probability(1000, 2, 2);
        assert!((mc - analytic).abs() < 0.01, "{mc} vs {analytic}");
    }

    #[test]
    fn enumeration_bails_out_gracefully() {
        let p = Placement::mixed(64, 2).unwrap();
        // C(64, 8) ≈ 4.4e9 > the raised cap → None.
        assert!(exact_recovery_probability(&p, 8).is_none());
        assert!(exact_recovery_probability(&p, 2).is_some());
    }

    #[test]
    fn k_zero_is_certain() {
        let p = Placement::mixed(8, 2).unwrap();
        assert_eq!(exact_recovery_probability(&p, 0), Some(1.0));
        let mut rng = DetRng::new(1);
        assert_eq!(monte_carlo_recovery_probability(&p, 0, 10, &mut rng), 1.0);
    }
}
