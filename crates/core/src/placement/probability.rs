//! Recovery-probability analysis (paper Theorem 1, Corollary 1, Fig. 9).
//!
//! Three independent estimators are provided and cross-checked against each
//! other in the tests:
//!
//! 1. **Closed forms**: Corollary 1's bound for group placement, the
//!    Theorem 1 upper bound and near-optimality gap, and the exact
//!    no-adjacent-pair formula for ring placement with `m = 2`.
//! 2. **Exact enumeration** over all `C(N, k)` failure sets (bitmask
//!    subset checks, for `N ≤ 128`).
//! 3. **Monte Carlo** sampling, for arbitrary sizes.

use crate::placement::Placement;
use gemini_sim::DetRng;
use std::collections::BTreeSet;

/// `C(n, k)` as an `f64` (exact for the magnitudes used here).
pub fn binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 1.0f64;
    for i in 0..k {
        acc = acc * (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

/// Corollary 1: with group placement (`m | N`) and `k` simultaneous
/// machine losses, the probability that GEMINI recovers from CPU memory.
/// Exact for `m ≤ k < 2m`; a lower bound for `k ≥ 2m`; exactly 1 for
/// `k < m`.
pub fn corollary1_probability(n: usize, m: usize, k: usize) -> f64 {
    if k < m {
        return 1.0;
    }
    let (nf, mf, kf) = (n as u64, m as u64, k as u64);
    let bad = (nf / mf) as f64 * binomial(nf - mf, kf - mf);
    (1.0 - bad / binomial(nf, kf)).max(0.0)
}

/// Theorem 1's upper bound on the recovery probability of *any* placement
/// with `k = m` simultaneous losses: `1 − ⌈N/m⌉ / C(N, m)` (no placement
/// can use fewer than `⌈N/m⌉` distinct host-sets).
pub fn theorem1_upper_bound(n: usize, m: usize) -> f64 {
    let min_sets = n.div_ceil(m) as f64;
    (1.0 - min_sets / binomial(n as u64, m as u64)).max(0.0)
}

/// Theorem 1.2's bound on the gap between the mixed strategy and the upper
/// bound when `m ∤ N`: `(2m − 3)/C(N, m)`.
pub fn theorem1_gap_bound(n: usize, m: usize) -> f64 {
    if m < 2 {
        return 0.0;
    }
    (2 * m - 3) as f64 / binomial(n as u64, m as u64)
}

/// Exact ring-placement recovery probability for `m = 2`: a failure set is
/// fatal iff it contains two ring-adjacent machines; the number of
/// `k`-subsets of an `n`-cycle with **no** two adjacent elements is
/// `n/(n−k) · C(n−k, k)`.
pub fn ring_m2_probability(n: usize, k: usize) -> f64 {
    if k < 2 {
        return 1.0;
    }
    if k > n {
        return 0.0;
    }
    let good = n as f64 / (n - k) as f64 * binomial((n - k) as u64, k as u64);
    good / binomial(n as u64, k as u64)
}

/// Exact recovery probability by enumerating every `C(N, k)` failure set.
/// Returns `None` when `N > 128` (bitmask width) or the subset count
/// exceeds `10^7`.
pub fn exact_recovery_probability(placement: &Placement, k: usize) -> Option<f64> {
    let sets: Vec<Vec<usize>> = placement.unique_host_sets();
    host_sets_recovery_probability(&sets, placement.machines(), k)
}

/// Exact recovery probability of an *arbitrary* strategy described by its
/// distinct replica host-sets — the `S′ = unique(S)` of the Theorem 1
/// analysis. This is how the optimality claim is adversarially tested:
/// random strategies (any assignment of `m` hosts per machine, own machine
/// included) are priced with the same enumerator and compared against
/// [`theorem1_upper_bound`].
pub fn host_sets_recovery_probability(host_sets: &[Vec<usize>], n: usize, k: usize) -> Option<f64> {
    if n > 128 || k > n {
        return None;
    }
    if binomial(n as u64, k as u64) > 1e7 {
        return None;
    }
    // A failure set is fatal iff it fully covers some replica host-set.
    let sets: Vec<u128> = host_sets
        .iter()
        .map(|hosts| hosts.iter().fold(0u128, |acc, &h| acc | (1 << h)))
        .collect();
    let mut total: u64 = 0;
    let mut good: u64 = 0;
    let mut chosen = vec![0usize; k];
    enumerate_subsets(n, k, 0, 0, &mut chosen, &mut |mask: u128| {
        total += 1;
        if !sets.iter().any(|&s| s & mask == s) {
            good += 1;
        }
    });
    Some(good as f64 / total.max(1) as f64)
}

fn enumerate_subsets(
    n: usize,
    k: usize,
    depth: usize,
    mask: u128,
    chosen: &mut [usize],
    visit: &mut impl FnMut(u128),
) {
    if depth == k {
        visit(mask);
        return;
    }
    let start = if depth == 0 { 0 } else { chosen[depth - 1] + 1 };
    // Leave room for the remaining k - depth - 1 picks.
    for i in start..=n - (k - depth) {
        chosen[depth] = i;
        enumerate_subsets(n, k, depth + 1, mask | (1 << i), chosen, visit);
    }
}

/// Monte Carlo estimate of the recovery probability with `k` simultaneous
/// uniform-random machine losses.
pub fn monte_carlo_recovery_probability(
    placement: &Placement,
    k: usize,
    trials: u32,
    rng: &mut DetRng,
) -> f64 {
    if k == 0 {
        return 1.0;
    }
    let n = placement.machines();
    let mut good = 0u32;
    for _ in 0..trials {
        let failed: BTreeSet<usize> = rng.sample_distinct(n, k).into_iter().collect();
        if placement.recoverable(&failed) {
            good += 1;
        }
    }
    good as f64 / trials.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_basics() {
        assert_eq!(binomial(16, 2), 120.0);
        assert_eq!(binomial(16, 0), 1.0);
        assert_eq!(binomial(4, 5), 0.0);
        assert!((binomial(128, 3) - 341_376.0).abs() < 1e-6);
    }

    #[test]
    fn corollary1_matches_paper_headline_numbers() {
        // §4 / §7.2: N=16, m=2, k=2 → 93.3%; k=3 → 80.0%.
        assert!((corollary1_probability(16, 2, 2) - 0.9333).abs() < 1e-3);
        assert!((corollary1_probability(16, 2, 3) - 0.80).abs() < 1e-9);
        // k < m is always recoverable.
        assert_eq!(corollary1_probability(16, 2, 1), 1.0);
    }

    #[test]
    fn corollary1_increases_with_n() {
        // "the probability … increases with N" (§4).
        let mut prev = 0.0;
        for n in [8, 16, 32, 64, 128] {
            let p = corollary1_probability(n, 2, 2);
            assert!(p > prev, "N={n}: {p}");
            prev = p;
        }
    }

    #[test]
    fn exact_enumeration_agrees_with_corollary1_for_k_eq_m() {
        for n in [4, 8, 12, 16] {
            let p = Placement::group(n, 2).unwrap();
            let exact = exact_recovery_probability(&p, 2).unwrap();
            let analytic = corollary1_probability(n, 2, 2);
            assert!(
                (exact - analytic).abs() < 1e-12,
                "N={n}: exact {exact} vs analytic {analytic}"
            );
        }
        // m = 3 as well (k = m exactly).
        let p = Placement::group(12, 3).unwrap();
        assert!(
            (exact_recovery_probability(&p, 3).unwrap() - corollary1_probability(12, 3, 3)).abs()
                < 1e-12
        );
    }

    #[test]
    fn exact_enumeration_agrees_for_m_le_k_lt_2m() {
        // Corollary 1 is exact in this band.
        let p = Placement::group(16, 2).unwrap();
        let exact = exact_recovery_probability(&p, 3).unwrap();
        assert!((exact - corollary1_probability(16, 2, 3)).abs() < 1e-12);
    }

    #[test]
    fn corollary1_is_lower_bound_for_large_k() {
        // k ≥ 2m: double-counting makes the closed form conservative.
        for k in 4..8 {
            let p = Placement::group(16, 2).unwrap();
            let exact = exact_recovery_probability(&p, k).unwrap();
            let bound = corollary1_probability(16, 2, k);
            assert!(
                exact >= bound - 1e-12,
                "k={k}: exact {exact} < bound {bound}"
            );
        }
    }

    #[test]
    fn ring_m2_closed_form_matches_enumeration() {
        for n in [6, 10, 16] {
            for k in 2..5 {
                let p = Placement::ring(n, 2).unwrap();
                let exact = exact_recovery_probability(&p, k).unwrap();
                let analytic = ring_m2_probability(n, k);
                assert!(
                    (exact - analytic).abs() < 1e-12,
                    "n={n} k={k}: {exact} vs {analytic}"
                );
            }
        }
    }

    #[test]
    fn group_beats_ring_as_in_fig9() {
        // Fig. 9 and §7.2: at N=16, m=2, k=3 the ring is ≈25% worse.
        let gemini = corollary1_probability(16, 2, 3);
        let ring = ring_m2_probability(16, 3);
        assert!(gemini > ring);
        let drop = (gemini - ring) / gemini;
        assert!((0.15..0.30).contains(&drop), "relative drop = {drop:.3}");
    }

    #[test]
    fn group_attains_theorem1_upper_bound_when_divisible() {
        for (n, m) in [(16, 2), (12, 3), (20, 4)] {
            let p = Placement::group(n, m).unwrap();
            let exact = exact_recovery_probability(&p, m).unwrap();
            let bound = theorem1_upper_bound(n, m);
            assert!(
                (exact - bound).abs() < 1e-12,
                "N={n} m={m}: {exact} vs bound {bound}"
            );
        }
    }

    #[test]
    fn mixed_within_theorem1_gap_when_not_divisible() {
        for (n, m) in [(5, 2), (17, 2), (10, 3), (11, 3), (14, 4)] {
            let p = Placement::mixed(n, m).unwrap();
            let exact = exact_recovery_probability(&p, m).unwrap();
            let bound = theorem1_upper_bound(n, m);
            let gap = theorem1_gap_bound(n, m);
            assert!(exact <= bound + 1e-12, "N={n} m={m}");
            assert!(
                bound - exact <= gap + 1e-12,
                "N={n} m={m}: gap {} exceeds bound {gap}",
                bound - exact
            );
        }
    }

    #[test]
    fn monte_carlo_agrees_with_exact() {
        let p = Placement::mixed(16, 2).unwrap();
        let exact = exact_recovery_probability(&p, 3).unwrap();
        let mut rng = DetRng::new(42);
        let mc = monte_carlo_recovery_probability(&p, 3, 60_000, &mut rng);
        assert!((mc - exact).abs() < 0.01, "MC {mc:.4} vs exact {exact:.4}");
    }

    #[test]
    fn monte_carlo_handles_big_clusters() {
        // Fig. 15b scale: 1000 instances.
        let p = Placement::mixed(1000, 2).unwrap();
        let mut rng = DetRng::new(7);
        let mc = monte_carlo_recovery_probability(&p, 2, 20_000, &mut rng);
        let analytic = corollary1_probability(1000, 2, 2);
        assert!((mc - analytic).abs() < 0.01, "{mc} vs {analytic}");
    }

    #[test]
    fn enumeration_bails_out_gracefully() {
        let p = Placement::mixed(64, 2).unwrap();
        // C(64, 8) ≈ 4.4e9 > 1e7 → None.
        assert!(exact_recovery_probability(&p, 8).is_none());
        assert!(exact_recovery_probability(&p, 2).is_some());
    }

    #[test]
    fn k_zero_is_certain() {
        let p = Placement::mixed(8, 2).unwrap();
        assert_eq!(exact_recovery_probability(&p, 0), Some(1.0));
        let mut rng = DetRng::new(1);
        assert_eq!(monte_carlo_recovery_probability(&p, 0, 10, &mut rng), 1.0);
    }
}
