//! Topology-aware checkpoint placement — an extension beyond the paper.
//!
//! The paper notes that "the network links and switches that connect GPU
//! machines can fail … disconnecting them from training" (§6.1): a single
//! top-of-rack switch failure takes out *every machine in the rack
//! simultaneously*. Algorithm 1 is rack-oblivious; if a placement group
//! happens to sit entirely inside one rack, a switch failure destroys all
//! replicas of its members' checkpoints and forces the slow persistent
//! fallback.
//!
//! [`rack_aware_mixed`] fixes this with a rank reordering: machines are
//! enumerated round-robin across racks before Algorithm 1's grouping, so
//! every placement group spans `min(m, racks)` distinct racks. Group sizes,
//! communication cost and the Theorem 1 probability under independent
//! failures are identical to the rack-oblivious mixed strategy — the only
//! change is *which* machines group together.

use crate::error::GeminiError;
use crate::placement::Placement;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The physical rack layout of a cluster.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    /// `rack_of[machine]` = rack index.
    rack_of: Vec<usize>,
    racks: usize,
}

impl Topology {
    /// Machines dealt into `racks` racks contiguously (machine `i` sits in
    /// rack `i / ceil(n/racks)`) — the typical sequential rack fill.
    pub fn contiguous(machines: usize, racks: usize) -> Result<Topology, GeminiError> {
        if racks == 0 || machines == 0 {
            return Err(GeminiError::InvalidPlacement {
                machines,
                replicas: racks,
                reason: "topology needs at least one machine and one rack",
            });
        }
        let per_rack = machines.div_ceil(racks);
        Ok(Topology {
            rack_of: (0..machines).map(|i| i / per_rack).collect(),
            racks,
        })
    }

    /// An explicit layout.
    pub fn from_assignment(rack_of: Vec<usize>) -> Result<Topology, GeminiError> {
        if rack_of.is_empty() {
            return Err(GeminiError::InvalidPlacement {
                machines: 0,
                replicas: 0,
                reason: "topology needs at least one machine",
            });
        }
        let racks = rack_of.iter().max().map(|&r| r + 1).unwrap_or(0);
        Ok(Topology { rack_of, racks })
    }

    /// Number of machines.
    pub fn machines(&self) -> usize {
        self.rack_of.len()
    }

    /// Number of racks.
    pub fn racks(&self) -> usize {
        self.racks
    }

    /// The rack of `machine`.
    pub fn rack_of(&self, machine: usize) -> Result<usize, GeminiError> {
        self.rack_of
            .get(machine)
            .copied()
            .ok_or(GeminiError::UnknownRank(machine))
    }

    /// All machines in `rack`, ascending.
    pub fn machines_in_rack(&self, rack: usize) -> Vec<usize> {
        self.rack_of
            .iter()
            .enumerate()
            .filter(|(_, &r)| r == rack)
            .map(|(m, _)| m)
            .collect()
    }

    /// Machines enumerated round-robin across racks: first machine of each
    /// rack, then the second of each, and so on. Consecutive machines in
    /// this order sit in distinct racks (while racks still have members).
    pub fn round_robin_order(&self) -> Vec<usize> {
        let mut by_rack: Vec<Vec<usize>> =
            (0..self.racks).map(|r| self.machines_in_rack(r)).collect();
        let mut order = Vec::with_capacity(self.machines());
        let mut depth = 0;
        while order.len() < self.machines() {
            for rack in by_rack.iter_mut() {
                if depth < rack.len() {
                    order.push(rack[depth]);
                }
            }
            depth += 1;
        }
        order
    }
}

/// Algorithm 1's mixed placement applied to the rack round-robin order:
/// groups span as many racks as possible.
pub fn rack_aware_mixed(topology: &Topology, replicas: usize) -> Result<Placement, GeminiError> {
    let base = Placement::mixed(topology.machines(), replicas)?;
    let order = topology.round_robin_order();
    Ok(base.relabeled(&order)?)
}

/// Whether a placement can recover from CPU memory after losing *all*
/// machines of `rack` simultaneously (the switch-failure case).
pub fn rack_failure_recoverable(placement: &Placement, topology: &Topology, rack: usize) -> bool {
    let failed: BTreeSet<usize> = topology.machines_in_rack(rack).into_iter().collect();
    placement.recoverable(&failed)
}

/// The fraction of single-rack failures a placement survives.
pub fn rack_survival_rate(placement: &Placement, topology: &Topology) -> f64 {
    if topology.racks() == 0 {
        return 1.0;
    }
    let survived = (0..topology.racks())
        .filter(|&r| rack_failure_recoverable(placement, topology, r))
        .count();
    survived as f64 / topology.racks() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_topology_layout() {
        let t = Topology::contiguous(16, 4).unwrap();
        assert_eq!(t.racks(), 4);
        assert_eq!(t.rack_of(0).unwrap(), 0);
        assert_eq!(t.rack_of(5).unwrap(), 1);
        assert_eq!(t.machines_in_rack(3), vec![12, 13, 14, 15]);
    }

    #[test]
    fn round_robin_alternates_racks() {
        let t = Topology::contiguous(8, 2).unwrap();
        assert_eq!(t.round_robin_order(), vec![0, 4, 1, 5, 2, 6, 3, 7]);
    }

    #[test]
    fn round_robin_handles_uneven_racks() {
        let t = Topology::from_assignment(vec![0, 0, 0, 1, 1, 2]).unwrap();
        let order = t.round_robin_order();
        assert_eq!(order, vec![0, 3, 5, 1, 4, 2]);
        // It is a permutation.
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn oblivious_placement_dies_with_its_rack() {
        // 16 machines, 4 racks of 4, m = 2. Rack-oblivious groups are
        // {0,1},{2,3},… — both members of each group share a rack, so any
        // rack failure wipes two whole groups.
        let t = Topology::contiguous(16, 4).unwrap();
        let oblivious = Placement::mixed(16, 2).unwrap();
        assert_eq!(rack_survival_rate(&oblivious, &t), 0.0);
    }

    #[test]
    fn rack_aware_placement_survives_any_single_rack() {
        let t = Topology::contiguous(16, 4).unwrap();
        let aware = rack_aware_mixed(&t, 2).unwrap();
        aware.check_invariants().unwrap();
        assert_eq!(rack_survival_rate(&aware, &t), 1.0);
        // Every group spans two racks.
        for group in aware.groups() {
            let racks: BTreeSet<usize> = group
                .members
                .iter()
                .map(|&m| t.rack_of(m).unwrap())
                .collect();
            assert_eq!(racks.len(), group.members.len().min(t.racks()));
        }
    }

    #[test]
    fn rack_aware_keeps_algorithm1_structure() {
        let t = Topology::contiguous(17, 4).unwrap();
        let aware = rack_aware_mixed(&t, 2).unwrap();
        let base = Placement::mixed(17, 2).unwrap();
        // Same number of groups and host-set count — only the labels moved.
        assert_eq!(aware.groups().len(), base.groups().len());
        assert_eq!(
            aware.unique_host_sets().len(),
            base.unique_host_sets().len()
        );
        assert_eq!(aware.sends_per_machine(), base.sends_per_machine());
    }

    #[test]
    fn more_racks_than_replicas_not_required() {
        // With one rack, rack-awareness cannot help (survival 0), but the
        // construction still works.
        let t = Topology::contiguous(8, 1).unwrap();
        let aware = rack_aware_mixed(&t, 2).unwrap();
        aware.check_invariants().unwrap();
        assert_eq!(rack_survival_rate(&aware, &t), 0.0);
    }

    #[test]
    fn invalid_topologies_rejected() {
        assert!(Topology::contiguous(0, 4).is_err());
        assert!(Topology::contiguous(4, 0).is_err());
        assert!(Topology::from_assignment(vec![]).is_err());
        let t = Topology::contiguous(4, 2).unwrap();
        assert!(t.rack_of(9).is_err());
    }
}
