//! Expert-shard placement math for MoE workloads.
//!
//! An expert-parallel MoE layer keeps each expert's optimizer shard on a
//! small set of machines rather than striping it across the whole world the
//! way ZeRO-3 stripes the backbone. We model expert replication on top of
//! Algorithm 1's dense placement: the dense placement groups are tiled into
//! *expert replication groups* of `span` consecutive dense groups, and each
//! expert shard assigned to a replication group keeps one replica on the
//! **designated host** (the first member) of every dense group in its span.
//! An expert shard is lost only when *all* of its designated hosts fail
//! simultaneously.
//!
//! Recoverability of a failure set is therefore dense recoverability AND
//! every expert replication group retaining a surviving designated host.
//! Because expert replication groups cover disjoint machine sets, the safe
//! `k`-subset count still factorizes — per expert group it is an
//! inclusion–exclusion of the dense convolution minus the convolution
//! *conditioned on every designated host failing*:
//!
//! * **Group kind** (size `s`, designated host fixed): dense-safe subsets
//!   containing the designated host number `C(s−1, t−1)` for `1 ≤ t < s`.
//! * **Ring kind** (cycle of `L`, no `w`-run, designated host fixed): by
//!   rotational symmetry exactly `t/L` of the safe `t`-subsets contain any
//!   fixed position, so the count is `t · safe(t) / L` — an exact integer.
//!
//! All counts stay nonnegative integers below `2^53` on the differential
//! grid (`N ≤ 30`, `k ≤ 7`), so the analytic kernel agrees **bit-for-bit**
//! with the Gosper enumerator, exactly as the dense kernel does.

use crate::error::GeminiError;
use crate::placement::analytic::{cycle_subsets_without_run, group_polynomial};
use crate::placement::probability::{binomial, gosper_next, EXACT_ENUMERATION_CAP};
use crate::placement::{GroupKind, Placement, PlacementGroup};
use serde::{Deserialize, Serialize};

/// One expert replication group: a span of dense placement groups whose
/// designated hosts replicate the expert shards assigned to this group.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ExpertReplicationGroup {
    /// Indices of the dense placement groups in this span.
    pub dense_groups: Vec<usize>,
    /// Designated host rank of each dense group (its first member).
    pub designated: Vec<usize>,
}

/// Expert-shard placement layered over a dense [`Placement`].
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct ExpertPlacement {
    placement: Placement,
    span: usize,
    groups: Vec<ExpertReplicationGroup>,
}

impl ExpertPlacement {
    /// Tiles the dense placement's groups into expert replication groups of
    /// `span` consecutive dense groups (the final group may be shorter).
    pub fn new(placement: Placement, span: usize) -> Result<ExpertPlacement, GeminiError> {
        if span == 0 {
            return Err(GeminiError::InvalidPlacement {
                machines: placement.machines(),
                replicas: placement.replicas(),
                reason: "expert span must be at least 1",
            });
        }
        let mut groups = Vec::new();
        let dense = placement.groups();
        let mut i = 0usize;
        while i < dense.len() {
            let end = (i + span).min(dense.len());
            groups.push(ExpertReplicationGroup {
                dense_groups: (i..end).collect(),
                designated: (i..end).map(|g| dense[g].members[0]).collect(),
            });
            i = end;
        }
        Ok(ExpertPlacement {
            placement,
            span,
            groups,
        })
    }

    /// The underlying dense placement.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The configured span (dense groups per expert replication group).
    pub fn span(&self) -> usize {
        self.span
    }

    /// The expert replication groups.
    pub fn groups(&self) -> &[ExpertReplicationGroup] {
        &self.groups
    }

    /// The replication group that holds expert `expert`'s shards
    /// (round-robin assignment).
    pub fn group_for_expert(&self, expert: usize) -> &ExpertReplicationGroup {
        &self.groups[expert % self.groups.len()]
    }

    /// Whether a failure bitmask leaves both the dense checkpoints and
    /// every expert replication group recoverable. Requires `N ≤ 128`.
    pub fn recoverable_mask(&self, failed: u128) -> bool {
        self.placement.recoverable_mask(failed)
            && self
                .groups
                .iter()
                .all(|g| g.designated.iter().any(|&h| failed >> h & 1 == 0))
    }

    /// Exact probability that `k` simultaneous uniform machine failures
    /// leave the dense checkpoints *and* every expert shard recoverable,
    /// computed analytically — no enumeration.
    pub fn analytic_recovery_probability(&self, k: usize) -> f64 {
        let n = self.placement.machines();
        if k == 0 {
            return 1.0;
        }
        if k > n {
            return 0.0;
        }
        let replicas = self.placement.replicas();
        let dense = self.placement.groups();
        // Convolution over expert replication groups of
        // E_j(x) = Π dense polys − Π designated-all-failed polys.
        let mut conv = vec![0.0f64; k + 1];
        conv[0] = 1.0;
        for eg in &self.groups {
            let mut safe = vec![0.0f64; k + 1];
            safe[0] = 1.0;
            let mut doomed = vec![0.0f64; k + 1];
            doomed[0] = 1.0;
            for &gi in &eg.dense_groups {
                let group = &dense[gi];
                let poly = group_polynomial(group, replicas, k);
                let cond = conditioned_polynomial(group, replicas, k);
                safe = convolve(&safe, &poly, k);
                doomed = convolve(&doomed, &cond, k);
            }
            let expert_poly: Vec<f64> = safe
                .iter()
                .zip(doomed.iter())
                .map(|(s, d)| s - d)
                .collect();
            conv = convolve(&conv, &expert_poly, k);
        }
        conv[k] / binomial(n as u64, k as u64)
    }

    /// Exact probability by Gosper enumeration of every `k`-subset —
    /// `None` when the cluster exceeds the mask width or the subset count
    /// exceeds the enumeration cap. The differential-test oracle.
    pub fn exact_recovery_probability(&self, k: usize) -> Option<f64> {
        let n = self.placement.machines();
        if n > 128 || k > n {
            return if k > n { Some(0.0) } else { None };
        }
        let total = binomial(n as u64, k as u64);
        if total > EXACT_ENUMERATION_CAP {
            return None;
        }
        if k == 0 {
            return Some(1.0);
        }
        let total_subsets = total as u64;
        let mut good = 0u64;
        let mut remaining = total_subsets;
        let mut v: u128 = if k == 128 {
            u128::MAX
        } else {
            (1u128 << k) - 1
        };
        loop {
            if self.recoverable_mask(v) {
                good += 1;
            }
            remaining -= 1;
            if remaining == 0 {
                break;
            }
            v = gosper_next(v);
        }
        Some(good as f64 / total_subsets as f64)
    }
}

/// Multiplies two safe-count polynomials, truncating at degree `k`.
fn convolve(a: &[f64], b: &[f64], k: usize) -> Vec<f64> {
    let mut out = vec![0.0f64; k + 1];
    for (i, &ai) in a.iter().enumerate().take(k + 1) {
        if ai == 0.0 {
            continue;
        }
        for (jx, &bj) in b.iter().enumerate().take(k + 1 - i) {
            out[i + jx] += ai * bj;
        }
    }
    out
}

/// Counts the `t`-subsets of one dense group that are group-safe *and*
/// contain the group's designated host (its first member) — the
/// inclusion–exclusion term for "every designated host of the span failed".
fn conditioned_polynomial(group: &PlacementGroup, replicas: usize, k: usize) -> Vec<f64> {
    let s = group.members.len();
    let top = s.min(k);
    let mut poly = Vec::with_capacity(top + 1);
    match group.kind {
        GroupKind::Group => {
            for t in 0..=top {
                poly.push(if t == 0 || t == s {
                    0.0
                } else {
                    binomial(s as u64 - 1, t as u64 - 1)
                });
            }
        }
        GroupKind::Ring => {
            let window = replicas.min(s);
            for t in 0..=top {
                if t == 0 {
                    poly.push(0.0);
                } else {
                    // t/L of the safe subsets contain any fixed position —
                    // multiply first so the division is an exact integer.
                    let safe = cycle_subsets_without_run(s, t, window);
                    poly.push(t as f64 * safe / s as f64);
                }
            }
        }
    }
    poly
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::probability::exact_recovery_probability;

    #[test]
    fn hand_checked_two_group_case() {
        // N=4, m=2 → dense groups {0,1} and {2,3}; span 2 → one expert
        // group with designated hosts {0, 2}. Of the four dense-safe
        // 2-subsets, only {0,2} kills both designated hosts: P = 3/6.
        let ep = ExpertPlacement::new(Placement::mixed(4, 2).unwrap(), 2).unwrap();
        assert_eq!(ep.groups().len(), 1);
        assert_eq!(ep.groups()[0].designated, vec![0, 2]);
        assert_eq!(ep.analytic_recovery_probability(2), 0.5);
        assert_eq!(ep.exact_recovery_probability(2), Some(0.5));
    }

    #[test]
    fn span_one_designates_every_group_head() {
        let ep = ExpertPlacement::new(Placement::mixed(16, 2).unwrap(), 1).unwrap();
        assert_eq!(ep.groups().len(), 8);
        for (j, g) in ep.groups().iter().enumerate() {
            assert_eq!(g.designated, vec![2 * j]);
        }
        // Killing any single designated host loses its expert shards.
        assert!(!ep.recoverable_mask(1 << 0));
        assert!(ep.recoverable_mask(1 << 1));
    }

    #[test]
    fn expert_recoverability_never_exceeds_dense() {
        for n in [8usize, 11, 16, 17] {
            for span in 1..=3 {
                let p = Placement::mixed(n, 2).unwrap();
                let ep = ExpertPlacement::new(p.clone(), span).unwrap();
                for k in 0..=5.min(n) {
                    let dense = exact_recovery_probability(&p, k).unwrap();
                    let expert = ep.analytic_recovery_probability(k);
                    assert!(
                        expert <= dense + 1e-12,
                        "n={n} span={span} k={k}: expert {expert} > dense {dense}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_gosper_bit_for_bit_on_a_grid() {
        for n in [4usize, 7, 11, 16, 17, 23, 30] {
            for m in 2..=3usize.min(n) {
                for span in 1..=3usize {
                    let placements = [
                        Some(Placement::mixed(n, m).unwrap()),
                        (n % m == 0).then(|| Placement::group(n, m).unwrap()),
                        Some(Placement::ring(n, m).unwrap()),
                    ];
                    for p in placements.into_iter().flatten() {
                        let ep = ExpertPlacement::new(p, span).unwrap();
                        for k in 0..=7usize.min(n) {
                            let gosper = ep.exact_recovery_probability(k).unwrap();
                            let analytic = ep.analytic_recovery_probability(k);
                            assert_eq!(
                                gosper.to_bits(),
                                analytic.to_bits(),
                                "n={n} m={m} span={span} k={k}: {gosper} vs {analytic}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn group_for_expert_is_round_robin() {
        let ep = ExpertPlacement::new(Placement::mixed(16, 2).unwrap(), 2).unwrap();
        assert_eq!(ep.groups().len(), 4);
        assert_eq!(ep.group_for_expert(0), &ep.groups()[0]);
        assert_eq!(ep.group_for_expert(5), &ep.groups()[1]);
        assert_eq!(ep.span(), 2);
        assert_eq!(ep.placement().machines(), 16);
    }

    #[test]
    fn edges_and_validation() {
        let p = Placement::mixed(8, 2).unwrap();
        assert!(ExpertPlacement::new(p.clone(), 0).is_err());
        let ep = ExpertPlacement::new(p, 8).unwrap();
        // Span larger than the group list → one group covering everything.
        assert_eq!(ep.groups().len(), 1);
        assert_eq!(ep.analytic_recovery_probability(0), 1.0);
        assert_eq!(ep.analytic_recovery_probability(9), 0.0);
        assert_eq!(ep.exact_recovery_probability(9), Some(0.0));
        // Losing every machine kills everything.
        assert_eq!(ep.analytic_recovery_probability(8), 0.0);
    }
}
