//! Checkpoint placement to CPU memory (paper §4, Algorithm 1).
//!
//! Given `N` machines and `m` checkpoint replicas, decide which machines
//! host each machine's replicas so that the probability of recovering a
//! simultaneous multi-machine failure from CPU memory is maximized.
//!
//! * **Group** placement partitions the machines into groups of `m`; every
//!   member of a group hosts replicas for every other member. Optimal when
//!   `m | N` (Theorem 1.1).
//! * **Ring** placement sends each machine's checkpoint to the next `m − 1`
//!   machines around a ring — strictly worse (more distinct host-sets, see
//!   Fig. 3), kept as the paper's comparison baseline.
//! * **Mixed** placement (Algorithm 1) uses groups for the first
//!   `⌊N/m⌋ − 1` groups and a ring over the remaining `N − m(⌊N/m⌋ − 1)`
//!   machines when `m ∤ N`; near-optimal with a gap bounded by
//!   `(2m−3)/C(N,m)` (Theorem 1.2).
//!
//! Every machine always keeps one replica in its *own* CPU memory, which
//! both avoids network traffic for that copy and enables instant recovery
//! from software failures (§4, §6.2).

pub mod analytic;
pub mod expert;
pub mod probability;
pub mod topology;

use crate::error::GeminiError;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Which placement strategy produced a [`Placement`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum PlacementStrategy {
    /// Pure group placement (requires `m | N`).
    Group,
    /// Pure ring placement (the paper's baseline).
    Ring,
    /// Algorithm 1's mixed strategy.
    Mixed,
}

/// How the members of one placement group exchange replicas.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum GroupKind {
    /// All-to-all within the group (group placement).
    Group,
    /// Each member sends to its `m − 1` ring successors within the group.
    Ring,
}

/// One group emitted by Algorithm 1.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct PlacementGroup {
    /// Machine ranks in the group.
    pub members: Vec<usize>,
    /// Whether replicas are exchanged all-to-all or along a ring.
    pub kind: GroupKind,
}

/// A complete checkpoint placement: for every machine, the `m` machines
/// (including itself) that hold its checkpoint replicas.
///
/// # Examples
///
/// ```
/// use gemini_core::Placement;
/// use std::collections::BTreeSet;
///
/// // 16 machines, 2 replicas: Algorithm 1 picks pure group placement.
/// let placement = Placement::mixed(16, 2)?;
/// assert_eq!(placement.replica_hosts(5)?, &[4, 5]);
///
/// // Losing one machine from each of two groups is recoverable...
/// let failed: BTreeSet<usize> = [4, 9].into_iter().collect();
/// assert!(placement.recoverable(&failed));
/// // ...losing a whole group is not.
/// let failed: BTreeSet<usize> = [4, 5].into_iter().collect();
/// assert!(!placement.recoverable(&failed));
/// # Ok::<(), gemini_core::GeminiError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Placement {
    machines: usize,
    replicas: usize,
    strategy: PlacementStrategy,
    groups: Vec<PlacementGroup>,
    /// `replica_hosts[i]` = sorted hosts of machine `i`'s replicas
    /// (contains `i` itself — the local copy).
    replica_hosts: Vec<Vec<usize>>,
}

fn validate(machines: usize, replicas: usize) -> Result<(), GeminiError> {
    if replicas == 0 {
        return Err(GeminiError::InvalidPlacement {
            machines,
            replicas,
            reason: "at least one replica (the local copy) is required",
        });
    }
    if machines == 0 {
        return Err(GeminiError::InvalidPlacement {
            machines,
            replicas,
            reason: "cluster has no machines",
        });
    }
    if replicas > machines {
        return Err(GeminiError::InvalidPlacement {
            machines,
            replicas,
            reason: "more replicas than machines",
        });
    }
    Ok(())
}

impl Placement {
    /// Algorithm 1: the mixed checkpoint placement strategy.
    pub fn mixed(machines: usize, replicas: usize) -> Result<Placement, GeminiError> {
        validate(machines, replicas)?;
        let (n, m) = (machines, replicas);
        let full_groups = if n % m == 0 { n / m } else { n / m - 1 }.max(0);
        let mut groups = Vec::new();
        for g in 0..full_groups {
            groups.push(PlacementGroup {
                members: (g * m..(g + 1) * m).collect(),
                kind: GroupKind::Group,
            });
        }
        let strategy = if n % m == 0 {
            PlacementStrategy::Group
        } else {
            // Remaining machines (m + n mod m of them, or all of them when
            // n < 2m) form a ring.
            groups.push(PlacementGroup {
                members: (full_groups * m..n).collect(),
                kind: GroupKind::Ring,
            });
            PlacementStrategy::Mixed
        };
        Ok(Self::from_groups(n, m, strategy, groups))
    }

    /// Pure group placement; errors unless `m | N`.
    pub fn group(machines: usize, replicas: usize) -> Result<Placement, GeminiError> {
        validate(machines, replicas)?;
        if machines % replicas != 0 {
            return Err(GeminiError::NotDivisible { machines, replicas });
        }
        Self::mixed(machines, replicas)
    }

    /// Pure ring placement over all `N` machines (the baseline of Fig. 3b
    /// and Fig. 9): machine `i` stores its checkpoint locally and on the
    /// `m − 1` machines that follow it on the ring.
    pub fn ring(machines: usize, replicas: usize) -> Result<Placement, GeminiError> {
        validate(machines, replicas)?;
        let groups = vec![PlacementGroup {
            members: (0..machines).collect(),
            kind: GroupKind::Ring,
        }];
        Ok(Self::from_groups(
            machines,
            replicas,
            PlacementStrategy::Ring,
            groups,
        ))
    }

    fn from_groups(
        machines: usize,
        replicas: usize,
        strategy: PlacementStrategy,
        groups: Vec<PlacementGroup>,
    ) -> Placement {
        let mut replica_hosts = vec![Vec::new(); machines];
        for group in &groups {
            match group.kind {
                GroupKind::Group => {
                    for &i in &group.members {
                        replica_hosts[i] = group.members.clone();
                    }
                }
                GroupKind::Ring => {
                    let len = group.members.len();
                    for (pos, &i) in group.members.iter().enumerate() {
                        let mut hosts: Vec<usize> = (0..replicas.min(len))
                            .map(|step| group.members[(pos + step) % len])
                            .collect();
                        hosts.sort_unstable();
                        replica_hosts[i] = hosts;
                    }
                }
            }
        }
        Placement {
            machines,
            replicas,
            strategy,
            groups,
            replica_hosts,
        }
    }

    /// Number of machines `N`.
    pub fn machines(&self) -> usize {
        self.machines
    }

    /// Number of replicas `m`.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// The strategy Algorithm 1 selected.
    pub fn strategy(&self) -> PlacementStrategy {
        self.strategy
    }

    /// The group list `G`.
    pub fn groups(&self) -> &[PlacementGroup] {
        &self.groups
    }

    /// The hosts of machine `i`'s replicas (sorted, includes `i`).
    pub fn replica_hosts(&self, machine: usize) -> Result<&[usize], GeminiError> {
        self.replica_hosts
            .get(machine)
            .map(Vec::as_slice)
            .ok_or(GeminiError::UnknownRank(machine))
    }

    /// The machines machine `i` must *send* its checkpoint to (its hosts
    /// minus itself).
    pub fn remote_targets(&self, machine: usize) -> Result<Vec<usize>, GeminiError> {
        Ok(self
            .replica_hosts(machine)?
            .iter()
            .copied()
            .filter(|&h| h != machine)
            .collect())
    }

    /// The checkpoint *owners* whose replicas machine `h` hosts, excluding
    /// its own (i.e. the remote replicas resident in `h`'s CPU memory).
    pub fn hosted_owners(&self, host: usize) -> Result<Vec<usize>, GeminiError> {
        if host >= self.machines {
            return Err(GeminiError::UnknownRank(host));
        }
        Ok((0..self.machines)
            .filter(|&o| o != host && self.replica_hosts[o].contains(&host))
            .collect())
    }

    /// Whether a simultaneous failure of `failed` machines is recoverable
    /// from CPU memory: every machine's replica set must retain at least
    /// one surviving host.
    ///
    /// Thin wrapper: for `N ≤ 128` the set is folded into a `u128` bitmask
    /// and dispatched to [`Placement::recoverable_mask`]; larger clusters
    /// keep the tree-lookup path.
    pub fn recoverable(&self, failed: &BTreeSet<usize>) -> bool {
        if self.machines <= 128 {
            let mask = failed
                .iter()
                .filter(|&&h| h < 128)
                .fold(0u128, |acc, &h| acc | (1 << h));
            return self.recoverable_mask(mask);
        }
        (0..self.machines).all(|i| self.replica_hosts[i].iter().any(|h| !failed.contains(h)))
    }

    /// [`Placement::recoverable`] on a `u128` failure bitmask (bit `i` set
    /// ⇔ machine `i` failed). Requires `N ≤ 128`; allocation-free — the
    /// hot-path form used by the exact enumerator and Monte Carlo sampler.
    pub fn recoverable_mask(&self, failed: u128) -> bool {
        debug_assert!(
            self.machines <= 128,
            "recoverable_mask requires N <= 128, got {}",
            self.machines
        );
        self.replica_hosts
            .iter()
            .all(|hosts| hosts.iter().any(|&h| failed >> h & 1 == 0))
    }

    /// [`Placement::recoverable`] on a sorted slice of failed ranks — the
    /// allocation-free fallback for clusters wider than the 128-bit mask.
    pub fn recoverable_sorted(&self, failed: &[usize]) -> bool {
        debug_assert!(failed.windows(2).all(|w| w[0] < w[1]), "must be sorted");
        self.replica_hosts
            .iter()
            .all(|hosts| hosts.iter().any(|&h| failed.binary_search(&h).is_err()))
    }

    /// The distinct replica host-sets as `u128` bitmasks (`None` when the
    /// cluster exceeds the 128-machine mask width).
    pub fn host_set_masks(&self) -> Option<Vec<u128>> {
        if self.machines > 128 {
            return None;
        }
        let mut masks: Vec<u128> = self
            .replica_hosts
            .iter()
            .map(|hosts| hosts.iter().fold(0u128, |acc, &h| acc | (1 << h)))
            .collect();
        masks.sort_unstable();
        masks.dedup();
        Some(masks)
    }

    /// The distinct replica host-sets `S′ = unique(S)` of the Theorem 1
    /// analysis; the recovery probability falls as this count grows.
    pub fn unique_host_sets(&self) -> Vec<Vec<usize>> {
        let mut sets: Vec<Vec<usize>> = self.replica_hosts.clone();
        sets.sort();
        sets.dedup();
        sets
    }

    /// Total checkpoint copies each machine sends over the network per
    /// checkpoint round (`m − 1` for every strategy — the property that
    /// makes the mixed strategy communication-minimal, Theorem 1.2).
    pub fn sends_per_machine(&self) -> usize {
        self.replicas - 1
    }

    /// Re-labels the placement through a permutation: the machine at
    /// logical position `i` of the original structure becomes `order[i]`.
    /// Group shapes, communication cost and failure-probability structure
    /// are preserved; only machine identities move. This is how
    /// topology-aware placement reuses Algorithm 1 (see
    /// [`topology::rack_aware_mixed`]).
    pub fn relabeled(&self, order: &[usize]) -> Result<Placement, GeminiError> {
        if order.len() != self.machines {
            return Err(GeminiError::InvalidPlacement {
                machines: self.machines,
                replicas: self.replicas,
                reason: "relabel order must cover every machine",
            });
        }
        let distinct: BTreeSet<usize> = order.iter().copied().collect();
        if distinct.len() != order.len() || order.iter().any(|&m| m >= self.machines) {
            return Err(GeminiError::InvalidPlacement {
                machines: self.machines,
                replicas: self.replicas,
                reason: "relabel order must be a permutation of the machines",
            });
        }
        let groups = self
            .groups
            .iter()
            .map(|g| PlacementGroup {
                members: g.members.iter().map(|&m| order[m]).collect(),
                kind: g.kind,
            })
            .collect();
        Ok(Self::from_groups(
            self.machines,
            self.replicas,
            self.strategy,
            groups,
        ))
    }

    /// Validates structural invariants; used by property tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        for i in 0..self.machines {
            let hosts = &self.replica_hosts[i];
            if !hosts.contains(&i) {
                return Err(format!("machine {i} lacks its local replica"));
            }
            let expect = self.replicas.min(
                self.groups
                    .iter()
                    .find(|g| g.members.contains(&i))
                    .map(|g| g.members.len())
                    .unwrap_or(0),
            );
            if hosts.len() != expect {
                return Err(format!(
                    "machine {i} has {} hosts, expected {expect}",
                    hosts.len()
                ));
            }
            let distinct: BTreeSet<usize> = hosts.iter().copied().collect();
            if distinct.len() != hosts.len() {
                return Err(format!("machine {i} has duplicate hosts"));
            }
        }
        let covered: BTreeSet<usize> = self
            .groups
            .iter()
            .flat_map(|g| g.members.iter().copied())
            .collect();
        if covered.len() != self.machines {
            return Err("groups do not partition the machines".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn failed(set: &[usize]) -> BTreeSet<usize> {
        set.iter().copied().collect()
    }

    #[test]
    fn divisible_gives_pure_groups() {
        // Fig. 3a: N = 4, m = 2 → two groups {1,2} and {3,4} (0-indexed).
        let p = Placement::mixed(4, 2).unwrap();
        assert_eq!(p.strategy(), PlacementStrategy::Group);
        assert_eq!(p.groups().len(), 2);
        assert_eq!(p.groups()[0].members, vec![0, 1]);
        assert_eq!(p.groups()[1].members, vec![2, 3]);
        assert_eq!(p.replica_hosts(0).unwrap(), &[0, 1]);
        assert_eq!(p.replica_hosts(3).unwrap(), &[2, 3]);
        p.check_invariants().unwrap();
    }

    #[test]
    fn non_divisible_gives_mixed() {
        // Fig. 3c: N = 5, m = 2 → one group {1,2}, ring {3,4,5}.
        let p = Placement::mixed(5, 2).unwrap();
        assert_eq!(p.strategy(), PlacementStrategy::Mixed);
        assert_eq!(p.groups().len(), 2);
        assert_eq!(p.groups()[0].members, vec![0, 1]);
        assert_eq!(p.groups()[0].kind, GroupKind::Group);
        assert_eq!(p.groups()[1].members, vec![2, 3, 4]);
        assert_eq!(p.groups()[1].kind, GroupKind::Ring);
        // Ring hosts: 2 → {2,3}, 3 → {3,4}, 4 → {4,2}.
        assert_eq!(p.replica_hosts(2).unwrap(), &[2, 3]);
        assert_eq!(p.replica_hosts(3).unwrap(), &[3, 4]);
        assert_eq!(p.replica_hosts(4).unwrap(), &[2, 4]);
        p.check_invariants().unwrap();
    }

    #[test]
    fn small_n_is_single_ring() {
        // N = 5, m = 3: ⌊5/3⌋ − 1 = 0 full groups → everything is one ring.
        let p = Placement::mixed(5, 3).unwrap();
        assert_eq!(p.groups().len(), 1);
        assert_eq!(p.groups()[0].kind, GroupKind::Ring);
        assert_eq!(p.replica_hosts(4).unwrap(), &[0, 1, 4]);
        p.check_invariants().unwrap();
    }

    #[test]
    fn group_constructor_enforces_divisibility() {
        assert!(Placement::group(16, 2).is_ok());
        assert_eq!(
            Placement::group(5, 2),
            Err(GeminiError::NotDivisible {
                machines: 5,
                replicas: 2
            })
        );
    }

    #[test]
    fn validation_rejects_nonsense() {
        assert!(Placement::mixed(0, 1).is_err());
        assert!(Placement::mixed(4, 0).is_err());
        assert!(Placement::mixed(2, 3).is_err());
    }

    #[test]
    fn group_placement_recoverability_matches_fig3() {
        // Fig. 3a discussion: group placement with N=4, m=2 survives any
        // two simultaneous failures except {1,2} and {3,4}.
        let p = Placement::mixed(4, 2).unwrap();
        assert!(!p.recoverable(&failed(&[0, 1])));
        assert!(!p.recoverable(&failed(&[2, 3])));
        assert!(p.recoverable(&failed(&[0, 2])));
        assert!(p.recoverable(&failed(&[0, 3])));
        assert!(p.recoverable(&failed(&[1, 2])));
        assert!(p.recoverable(&failed(&[1, 3])));
    }

    #[test]
    fn ring_placement_recoverability_matches_fig3() {
        // Fig. 3b discussion: ring placement with N=4, m=2 loses a
        // checkpoint for any two *consecutive* failures (four cases).
        let p = Placement::ring(4, 2).unwrap();
        assert!(!p.recoverable(&failed(&[0, 1])));
        assert!(!p.recoverable(&failed(&[1, 2])));
        assert!(!p.recoverable(&failed(&[2, 3])));
        assert!(!p.recoverable(&failed(&[3, 0])));
        assert!(p.recoverable(&failed(&[0, 2])));
        assert!(p.recoverable(&failed(&[1, 3])));
    }

    #[test]
    fn fewer_failures_than_replicas_always_recoverable() {
        for (n, m) in [(16, 2), (15, 4), (9, 3)] {
            let p = Placement::mixed(n, m).unwrap();
            for i in 0..n {
                assert!(p.recoverable(&failed(&[i])), "N={n} m={m} i={i}");
            }
        }
    }

    #[test]
    fn unique_host_sets_counts_match_theorem1() {
        // Group: N/m distinct sets. Ring: N distinct sets.
        let g = Placement::mixed(16, 2).unwrap();
        assert_eq!(g.unique_host_sets().len(), 8);
        let r = Placement::ring(16, 2).unwrap();
        assert_eq!(r.unique_host_sets().len(), 16);
        // Mixed with N=17, m=2: N − (m−1)(⌊N/m⌋−1) = 17 − 7 = 10.
        let x = Placement::mixed(17, 2).unwrap();
        assert_eq!(x.unique_host_sets().len(), 10);
    }

    #[test]
    fn remote_targets_and_hosted_owners_are_inverse() {
        let p = Placement::mixed(10, 3).unwrap();
        for i in 0..10 {
            for &t in &p.remote_targets(i).unwrap() {
                assert!(p.hosted_owners(t).unwrap().contains(&i));
            }
        }
        assert_eq!(p.sends_per_machine(), 2);
    }

    #[test]
    fn recoverable_mask_agrees_with_set_wrapper() {
        // Exhaustive over all k=2 and k=3 failure sets for a mixed layout.
        let p = Placement::mixed(11, 3).unwrap();
        for a in 0..11 {
            for b in (a + 1)..11 {
                let set = failed(&[a, b]);
                let mask = (1u128 << a) | (1 << b);
                assert_eq!(p.recoverable(&set), p.recoverable_mask(mask), "{a},{b}");
                let slice = [a, b];
                assert_eq!(p.recoverable(&set), p.recoverable_sorted(&slice));
                for c in (b + 1)..11 {
                    let set = failed(&[a, b, c]);
                    let mask = mask | (1u128 << c);
                    assert_eq!(p.recoverable(&set), p.recoverable_mask(mask), "{a},{b},{c}");
                    assert_eq!(p.recoverable(&set), p.recoverable_sorted(&[a, b, c]));
                }
            }
        }
    }

    #[test]
    fn wide_clusters_skip_the_mask_path() {
        // > 128 machines: the BTreeSet wrapper and sorted-slice fallback
        // must still agree (no u128 truncation).
        let p = Placement::mixed(200, 2).unwrap();
        assert!(p.host_set_masks().is_none());
        for pair in [[0usize, 1], [0, 199], [198, 199], [50, 51]] {
            let set = failed(&pair);
            assert_eq!(p.recoverable(&set), p.recoverable_sorted(&pair), "{pair:?}");
        }
        // A whole group is fatal even past the mask width.
        assert!(!p.recoverable(&failed(&[0, 1])));
    }

    #[test]
    fn host_set_masks_match_unique_host_sets() {
        let p = Placement::mixed(17, 2).unwrap();
        let masks = p.host_set_masks().unwrap();
        let sets = p.unique_host_sets();
        assert_eq!(masks.len(), sets.len());
        let mut rebuilt: Vec<u128> = sets
            .iter()
            .map(|s| s.iter().fold(0u128, |acc, &h| acc | (1 << h)))
            .collect();
        rebuilt.sort_unstable();
        assert_eq!(masks, rebuilt);
    }

    #[test]
    fn unknown_rank_errors() {
        let p = Placement::mixed(4, 2).unwrap();
        assert!(p.replica_hosts(9).is_err());
        assert!(p.hosted_owners(9).is_err());
    }
}
