//! Analytic (DP / transfer-matrix) recoverability kernel — exact recovery
//! probabilities at fleet scale, without enumeration.
//!
//! [`host_sets_recovery_probability`](super::probability::host_sets_recovery_probability)
//! walks all `C(N, k)` failure subsets with Gosper's hack: faithful, but
//! `C(50, 7) ≈ 1e8` already costs ~1 s and `C(10 000, 7) ≈ 2e24` is
//! intractable. Every placement Algorithm 1 can emit, however, is a
//! disjoint union of [`PlacementGroup`]s, and a failure set is fatal iff
//! *some group individually* loses one of its replica host-sets — failures
//! in one group can never combine with failures in another to destroy a
//! checkpoint. Recoverability therefore factorizes over groups, and the
//! count of safe `k`-subsets is a coefficient in a product of small
//! per-group polynomials:
//!
//! * For each group `g`, build `P_g(x) = Σ_t safe_g(t) · x^t`, where
//!   `safe_g(t)` counts the `t`-subsets of the group's members that cover
//!   no fatal host-set of that group.
//! * Multiply the polynomials (truncating at degree `k`): the coefficient
//!   of `x^k` in `Π_g P_g(x)` counts the safe `k`-subsets of the whole
//!   cluster, because groups partition the machines.
//! * Divide by `C(N, k)`.
//!
//! The per-group counts are closed-form:
//!
//! * **Group kind** (all-to-all replication, fatal iff the whole group of
//!   size `s` fails): `safe(t) = C(s, t)` for `t < s`, and `0` at `t = s`.
//! * **Ring kind** (member at position `p` hosted by the `w = min(m, L)`
//!   consecutive members starting at `p`; fatal iff any `w` consecutive
//!   members all fail): `safe(t)` is the number of `t`-subsets of an
//!   `L`-cycle with no run of `w` consecutive chosen elements. Picking the
//!   `L − t` *unchosen* positions as separators, the chosen runs between
//!   them are a composition of `t` into `L − t` parts each `≤ w − 1`, and
//!   the cycle symmetry contributes the classic `L / (L − t)` transfer
//!   factor:
//!   `safe(t) = L/(L−t) · caps(L−t, t, w−1)` for `0 < t < L`, where
//!   `caps(g, t, c)` counts compositions of `t` into `g` parts bounded by
//!   `c`, by inclusion–exclusion over which parts overflow:
//!   `caps(g, t, c) = Σ_j (−1)^j C(g, j) C(t − j(c+1) + g − 1, g − 1)`.
//!
//! Complexity is `O(Σ_g min(|g|, k)·k)` for the convolution plus `O(k²)`
//! binomials per ring group — microseconds at `N = 10 000, k = 7`, versus
//! an enumeration that would outlive the universe.
//!
//! **Exactness.** All intermediate values are nonnegative integers (the
//! inclusion–exclusion partial sums are integers too), and for `N ≤ 30`,
//! `k ≤ 7` every one of them is far below `2^53`, so `f64` arithmetic is
//! *exact* and the final division is the same `good / C(N, k)` the Gosper
//! kernel performs — the results agree **bit-for-bit**, which the
//! differential tests (unit, integration and proptest) assert across
//! mixed/group/ring strategies. Beyond `2^53` the kernel degrades to
//! ordinary f64 rounding (~1e-15 relative), still exact *method*, unlike
//! Monte-Carlo sampling.

use crate::placement::probability::binomial;
use crate::placement::{GroupKind, Placement, PlacementGroup};

/// Compositions of `t` into `parts` nonnegative parts each `≤ cap`,
/// by inclusion–exclusion over the parts that exceed `cap`.
fn bounded_compositions(parts: usize, t: usize, cap: usize) -> f64 {
    if parts == 0 {
        return if t == 0 { 1.0 } else { 0.0 };
    }
    let (g, t, c) = (parts as u64, t as u64, cap as u64);
    let mut acc = 0.0f64;
    let mut j = 0u64;
    let mut sign = 1.0f64;
    while j <= g && j * (c + 1) <= t {
        let rem = t - j * (c + 1);
        acc += sign * binomial(g, j) * binomial(rem + g - 1, g - 1);
        sign = -sign;
        j += 1;
    }
    acc
}

/// Number of `t`-subsets of an `L`-cycle containing no `window` (`≥ 1`)
/// consecutive chosen elements. `window` is clamped to `L` by the caller.
pub fn cycle_subsets_without_run(l: usize, t: usize, window: usize) -> f64 {
    debug_assert!(window >= 1 && window <= l);
    if t == 0 {
        return 1.0;
    }
    if t >= l {
        // Choosing the whole cycle always covers a window (window ≤ L).
        return 0.0;
    }
    let unchosen = l - t;
    // Multiply before dividing: L · caps is an exact integer divisible by
    // L − t, so the quotient is exact in f64 (L/(L−t) first would not be).
    l as f64 * bounded_compositions(unchosen, t, window - 1) / unchosen as f64
}

/// The safe-subset polynomial of one placement group, truncated at degree
/// `k`: coefficient `t` counts the `t`-subsets of the group's members that
/// destroy none of the group's replica host-sets.
pub(crate) fn group_polynomial(group: &PlacementGroup, replicas: usize, k: usize) -> Vec<f64> {
    let s = group.members.len();
    let top = s.min(k);
    let mut poly = Vec::with_capacity(top + 1);
    match group.kind {
        GroupKind::Group => {
            // Fatal iff the entire group fails.
            for t in 0..=top {
                poly.push(if t == s {
                    0.0
                } else {
                    binomial(s as u64, t as u64)
                });
            }
        }
        GroupKind::Ring => {
            let window = replicas.min(s);
            for t in 0..=top {
                poly.push(cycle_subsets_without_run(s, t, window));
            }
        }
    }
    poly
}

/// Exact probability that `k` simultaneous uniform machine failures leave
/// every checkpoint group recoverable, computed analytically from the
/// placement's group structure in `O(N·k)` — no subset enumeration.
///
/// Agrees bit-for-bit with
/// [`exact_recovery_probability`](super::probability::exact_recovery_probability)
/// wherever both are exact integers in `f64` (all `N ≤ 30`, `k ≤ 7`
/// differential cases), and stays exact-method at `N = 10 000` and beyond
/// where enumeration is intractable.
pub fn analytic_recovery_probability(placement: &Placement, k: usize) -> f64 {
    let n = placement.machines();
    if k == 0 {
        return 1.0;
    }
    if k > n {
        return 0.0;
    }
    let good = safe_subset_count(placement, k);
    good / binomial(n as u64, k as u64)
}

/// The number of `k`-subsets of the cluster that are survivable — the
/// numerator of [`analytic_recovery_probability`], exposed so differential
/// tests can compare integer counts directly.
pub fn safe_subset_count(placement: &Placement, k: usize) -> f64 {
    let replicas = placement.replicas();
    let mut conv = vec![0.0f64; k + 1];
    conv[0] = 1.0;
    let mut degree = 0usize; // highest possibly-nonzero degree so far
    for group in placement.groups() {
        let poly = group_polynomial(group, replicas, k);
        let new_degree = (degree + poly.len() - 1).min(k);
        let mut next = vec![0.0f64; k + 1];
        for t in 0..=degree {
            let c = conv[t];
            if c == 0.0 {
                continue;
            }
            let top = (k - t).min(poly.len() - 1);
            for (u, p) in poly.iter().enumerate().take(top + 1) {
                next[t + u] += c * p;
            }
        }
        conv = next;
        degree = new_degree;
    }
    conv[k]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::probability::{
        corollary1_probability, exact_recovery_probability, ring_m2_probability,
    };

    /// Brute-force cycle count for the closed form to differentiate against.
    fn cycle_brute(l: usize, t: usize, window: usize) -> f64 {
        let mut count = 0u64;
        for bits in 0u64..(1 << l) {
            if bits.count_ones() as usize != t {
                continue;
            }
            let mut fatal = false;
            for start in 0..l {
                if (0..window).all(|i| bits >> ((start + i) % l) & 1 == 1) {
                    fatal = true;
                    break;
                }
            }
            if !fatal {
                count += 1;
            }
        }
        count as f64
    }

    #[test]
    fn cycle_counts_match_brute_force() {
        for l in 3..=12 {
            for window in 1..=l {
                for t in 0..=l.min(7) {
                    let analytic = cycle_subsets_without_run(l, t, window);
                    let brute = cycle_brute(l, t, window);
                    assert_eq!(
                        analytic.to_bits(),
                        brute.to_bits(),
                        "L={l} t={t} w={window}: {analytic} vs {brute}"
                    );
                }
            }
        }
    }

    #[test]
    fn known_cycle_values() {
        // Two non-adjacent of a 4-cycle: {0,2} and {1,3}.
        assert_eq!(cycle_subsets_without_run(4, 2, 2), 2.0);
        // Three of a 4-cycle always contain a 3-run.
        assert_eq!(cycle_subsets_without_run(4, 3, 3), 0.0);
        // Three of a 5-cycle with no 3-run: all but the 5 rotations.
        assert_eq!(cycle_subsets_without_run(5, 3, 3), 5.0);
    }

    #[test]
    fn matches_gosper_bit_for_bit_on_a_grid() {
        for n in [4usize, 7, 11, 16, 17, 23, 30] {
            for m in 2..=3usize.min(n) {
                for k in 0..=7usize.min(n) {
                    let placements = [
                        Some(Placement::mixed(n, m).unwrap()),
                        (n % m == 0).then(|| Placement::group(n, m).unwrap()),
                        Some(Placement::ring(n, m).unwrap()),
                    ];
                    for p in placements.into_iter().flatten() {
                        let gosper = exact_recovery_probability(&p, k).unwrap();
                        let analytic = analytic_recovery_probability(&p, k);
                        assert_eq!(
                            gosper.to_bits(),
                            analytic.to_bits(),
                            "n={n} m={m} k={k} {:?}: {gosper} vs {analytic}",
                            p.strategy()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn matches_ring_m2_closed_form() {
        for n in [6usize, 10, 16, 25] {
            for k in 2..6 {
                let p = Placement::ring(n, 2).unwrap();
                let a = analytic_recovery_probability(&p, k);
                let closed = ring_m2_probability(n, k);
                assert!((a - closed).abs() < 1e-12, "n={n} k={k}: {a} vs {closed}");
            }
        }
    }

    #[test]
    fn fleet_scale_matches_corollary1_where_exact() {
        // mixed(N, 2) with 2 | N is pure group placement; Corollary 1 is
        // exact for m ≤ k < 2m. The enumerator would need C(10⁴, 3) ≈ 1.7e11
        // subsets; the analytic kernel prices it instantly.
        for k in 2..4 {
            let p = Placement::mixed(10_000, 2).unwrap();
            let a = analytic_recovery_probability(&p, k);
            let c = corollary1_probability(10_000, 2, k);
            assert!(
                (a - c).abs() < 1e-12,
                "k={k}: analytic {a} vs corollary1 {c}"
            );
        }
    }

    #[test]
    fn fleet_scale_deep_k_is_sane_and_monotone() {
        let p = Placement::mixed(10_000, 3).unwrap();
        let mut prev = 1.0f64;
        for k in 0..=36 {
            let a = analytic_recovery_probability(&p, k);
            assert!((0.0..=1.0).contains(&a), "k={k}: {a}");
            assert!(a <= prev + 1e-12, "k={k}: {a} > {prev}");
            prev = a;
        }
        // Losing fewer machines than the replica factor is always safe.
        assert_eq!(analytic_recovery_probability(&p, 2), 1.0);
        assert!(analytic_recovery_probability(&p, 3) < 1.0);
    }

    #[test]
    fn k_edges() {
        let p = Placement::mixed(12, 2).unwrap();
        assert_eq!(analytic_recovery_probability(&p, 0), 1.0);
        assert_eq!(analytic_recovery_probability(&p, 13), 0.0);
        // Losing every machine destroys every group.
        assert_eq!(analytic_recovery_probability(&p, 12), 0.0);
    }
}
