//! The byte-level replica vault: the actual checkpoint frames a host's CPU
//! memory holds.
//!
//! [`crate::ckpt::HierarchicalStore`] tracks checkpoint *metadata* (which
//! iteration each (host, owner) slot holds); this module is its data plane.
//! Each slot stores encoded [`crate::codec`] frames with the same
//! double-buffer discipline — an in-progress frame being received and the
//! last completed one — under per-host capacity accounting, so recovery
//! paths can be exercised against real bytes end to end.

use crate::codec::{self, CheckpointPayload};
use crate::error::GeminiError;
use crate::placement::Placement;
use bytes::Bytes;
use gemini_net::ByteSize;
use std::collections::BTreeMap;

#[derive(Clone, Debug, Default)]
struct VaultSlot {
    completed: Option<Bytes>,
    in_progress: Option<Bytes>,
}

/// Byte-level storage of checkpoint replicas across all hosts.
#[derive(Clone, Debug)]
pub struct ReplicaVault {
    capacity_per_host: ByteSize,
    slots: BTreeMap<(usize, usize), VaultSlot>,
    hosts: usize,
    telemetry: gemini_telemetry::TelemetrySink,
}

impl ReplicaVault {
    /// Creates the vault for a placement with the given CPU-memory budget
    /// per host.
    ///
    /// Errors (rather than panicking — library paths must not panic) if the
    /// placement reports an owner outside its own machine range, which
    /// would indicate a corrupted placement.
    pub fn new(placement: &Placement, capacity_per_host: ByteSize) -> Result<Self, GeminiError> {
        let mut slots = BTreeMap::new();
        for owner in 0..placement.machines() {
            for &host in placement.replica_hosts(owner)? {
                slots.insert((host, owner), VaultSlot::default());
            }
        }
        Ok(ReplicaVault {
            capacity_per_host,
            slots,
            hosts: placement.machines(),
            telemetry: gemini_telemetry::TelemetrySink::disabled(),
        })
    }

    /// Attaches a telemetry sink; staged/committed/fetched frames bump
    /// `ckpt.*` counters through it. The vault has no clock, so it records
    /// counters only — callers with a clock emit the timed events.
    pub fn with_telemetry(mut self, sink: gemini_telemetry::TelemetrySink) -> Self {
        self.telemetry = sink;
        self
    }

    /// Bytes currently resident on `host` (both buffers of all its slots).
    pub fn used(&self, host: usize) -> ByteSize {
        self.slots
            .iter()
            .filter(|((h, _), _)| *h == host)
            .map(|(_, slot)| {
                let c = slot.completed.as_ref().map(|b| b.len()).unwrap_or(0);
                let p = slot.in_progress.as_ref().map(|b| b.len()).unwrap_or(0);
                ByteSize::from_bytes((c + p) as u64)
            })
            .sum()
    }

    /// Begins receiving a frame for `(host, owner)`. Fails if the host
    /// lacks capacity or the slot does not exist under the placement.
    pub fn stage(&mut self, host: usize, owner: usize, frame: Bytes) -> Result<(), GeminiError> {
        if host >= self.hosts {
            return Err(GeminiError::UnknownRank(host));
        }
        let incoming = ByteSize::from_bytes(frame.len() as u64);
        // Capacity check excludes the slot's current in-progress frame,
        // which this stage replaces.
        let current_in_progress = self
            .slots
            .get(&(host, owner))
            .ok_or(GeminiError::UnknownRank(owner))?
            .in_progress
            .as_ref()
            .map(|b| ByteSize::from_bytes(b.len() as u64))
            .unwrap_or(ByteSize::ZERO);
        let would_use = self.used(host).saturating_sub(current_in_progress) + incoming;
        if would_use > self.capacity_per_host {
            return Err(GeminiError::BufferTooLarge {
                requested: would_use,
                available: self.capacity_per_host,
            });
        }
        let slot = self
            .slots
            .get_mut(&(host, owner))
            .ok_or(GeminiError::UnknownRank(owner))?;
        self.telemetry
            .counter_add("ckpt.frames_staged_bytes", incoming.as_bytes());
        self.telemetry.counter_add("ckpt.frames_staged", 1);
        slot.in_progress = Some(frame);
        Ok(())
    }

    /// Promotes the in-progress frame of `(host, owner)` to completed.
    /// Staging-then-committing mirrors the paper's two CPU buffers (§7.1).
    pub fn commit(&mut self, host: usize, owner: usize) -> Result<(), GeminiError> {
        let slot = self
            .slots
            .get_mut(&(host, owner))
            .ok_or(GeminiError::UnknownRank(owner))?;
        if let Some(frame) = slot.in_progress.take() {
            slot.completed = Some(frame);
            self.telemetry.counter_add("ckpt.frames_committed", 1);
        }
        Ok(())
    }

    /// Stages and commits a full checkpoint round: every owner's encoded
    /// shard is replicated to all its hosts.
    pub fn checkpoint_round(
        &mut self,
        placement: &Placement,
        iteration: u64,
        shard_of: impl Fn(usize) -> Vec<u8>,
    ) -> Result<(), GeminiError> {
        for owner in 0..placement.machines() {
            let frame = codec::encode(owner as u32, iteration, &shard_of(owner));
            for &host in placement.replica_hosts(owner)? {
                self.stage(host, owner, frame.clone())?;
            }
        }
        for owner in 0..placement.machines() {
            for &host in placement.replica_hosts(owner)? {
                self.commit(host, owner)?;
            }
        }
        Ok(())
    }

    /// The completed frame for `(host, owner)`, if any.
    pub fn fetch(&self, host: usize, owner: usize) -> Option<Bytes> {
        self.slots
            .get(&(host, owner))
            .and_then(|s| s.completed.clone())
    }

    /// Fetches and decodes, verifying the frame's checksum — what a
    /// replacement machine does when pulling a replica from a peer.
    pub fn fetch_verified(
        &self,
        host: usize,
        owner: usize,
    ) -> Result<CheckpointPayload, GeminiError> {
        let frame = self
            .fetch(host, owner)
            .ok_or(GeminiError::NoCheckpointAvailable)?;
        let payload = codec::decode(&frame)?;
        if payload.owner as usize != owner {
            return Err(GeminiError::Codec("frame belongs to a different owner"));
        }
        Ok(payload)
    }

    /// A hardware failure wipes a host's CPU memory.
    pub fn wipe_host(&mut self, host: usize) {
        for ((h, _), slot) in self.slots.iter_mut() {
            if *h == host {
                *slot = VaultSlot::default();
            }
        }
        self.telemetry.counter_add("ckpt.hosts_wiped", 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vault(n: usize, m: usize, cap_kb: u64) -> (Placement, ReplicaVault) {
        let p = Placement::mixed(n, m).unwrap();
        let v = ReplicaVault::new(&p, ByteSize::from_kb(cap_kb)).unwrap();
        (p, v)
    }

    fn shard(owner: usize, iteration: u64) -> Vec<u8> {
        (0..256u32)
            .flat_map(|i| (i ^ owner as u32 ^ iteration as u32).to_le_bytes())
            .collect()
    }

    #[test]
    fn round_trips_real_bytes() {
        let (p, mut v) = vault(4, 2, 64);
        v.checkpoint_round(&p, 9, |o| shard(o, 9)).unwrap();
        for owner in 0..4 {
            for &host in p.replica_hosts(owner).unwrap() {
                let payload = v.fetch_verified(host, owner).unwrap();
                assert_eq!(payload.iteration, 9);
                assert_eq!(&payload.data[..], &shard(owner, 9)[..]);
            }
        }
    }

    #[test]
    fn staging_does_not_expose_incomplete_frames() {
        let (p, mut v) = vault(4, 2, 64);
        let frame = codec::encode(0, 1, &shard(0, 1));
        v.stage(1, 0, frame).unwrap();
        assert!(v.fetch(1, 0).is_none(), "in-progress must not be readable");
        v.commit(1, 0).unwrap();
        assert!(v.fetch(1, 0).is_some());
        let _ = p;
    }

    #[test]
    fn double_buffering_keeps_previous_until_commit() {
        let (p, mut v) = vault(4, 2, 64);
        v.checkpoint_round(&p, 1, |o| shard(o, 1)).unwrap();
        // Stage iteration 2 but do not commit: fetch still yields 1.
        let frame = codec::encode(0, 2, &shard(0, 2));
        v.stage(0, 0, frame).unwrap();
        assert_eq!(v.fetch_verified(0, 0).unwrap().iteration, 1);
        v.commit(0, 0).unwrap();
        assert_eq!(v.fetch_verified(0, 0).unwrap().iteration, 2);
    }

    #[test]
    fn capacity_is_enforced() {
        // Capacity of 1 KB cannot hold a ~1 KB shard twice (two slots per
        // host with m=2) — the first slot fits, its group peer's does not.
        let (p, mut v) = vault(2, 2, 1);
        let frame = codec::encode(0, 1, &shard(0, 1)); // > 1 KB
        let err = v.stage(0, 0, frame).unwrap_err();
        assert!(matches!(err, GeminiError::BufferTooLarge { .. }));
        let _ = p;
    }

    #[test]
    fn restaging_replaces_rather_than_accumulates() {
        // Capacity fits exactly two frames (own + peer's, one buffer each);
        // re-staging the same slot repeatedly must not leak capacity.
        let (p, mut v) = vault(2, 2, 8);
        let frame = codec::encode(0, 1, &shard(0, 1));
        for _ in 0..10 {
            v.stage(0, 0, frame.clone()).unwrap();
        }
        v.commit(0, 0).unwrap();
        assert!(v.fetch(0, 0).is_some());
        let _ = p;
    }

    #[test]
    fn wipe_host_clears_everything_there_only() {
        let (p, mut v) = vault(4, 2, 64);
        v.checkpoint_round(&p, 3, |o| shard(o, 3)).unwrap();
        v.wipe_host(1);
        assert!(v.fetch(1, 0).is_none());
        assert!(v.fetch(1, 1).is_none());
        // Machine 1's shard survives on its group peer, host 0.
        assert_eq!(v.fetch_verified(0, 1).unwrap().iteration, 3);
        assert_eq!(v.used(1), ByteSize::ZERO);
    }

    #[test]
    fn fetch_verified_rejects_cross_owner_frames() {
        let (p, mut v) = vault(4, 2, 64);
        // Maliciously stage owner 1's slot with owner 0's frame.
        let wrong = codec::encode(0, 5, &shard(0, 5));
        v.stage(0, 1, wrong).unwrap();
        v.commit(0, 1).unwrap();
        assert!(matches!(v.fetch_verified(0, 1), Err(GeminiError::Codec(_))));
        let _ = p;
    }

    #[test]
    fn out_of_range_owner_errors_instead_of_panicking() {
        // `new` iterates owners `0..machines()` so its `replica_hosts`
        // lookups are in range by construction — but the call now threads
        // errors instead of `.expect`ing, and the out-of-range owner case
        // surfaces as `UnknownRank` on every data-plane entry point.
        let (p, mut v) = vault(4, 2, 64);
        assert!(ReplicaVault::new(&p, ByteSize::from_kb(64)).is_ok());
        assert!(matches!(
            p.replica_hosts(4),
            Err(GeminiError::UnknownRank(4))
        ));
        let frame = codec::encode(4, 1, &shard(4, 1));
        assert!(matches!(
            v.stage(0, 99, frame),
            Err(GeminiError::UnknownRank(99))
        ));
        assert!(matches!(
            v.stage(99, 0, codec::encode(0, 1, &shard(0, 1))),
            Err(GeminiError::UnknownRank(99))
        ));
        assert!(matches!(
            v.commit(0, 99),
            Err(GeminiError::UnknownRank(99))
        ));
        assert!(v.fetch_verified(0, 99).is_err());
    }

    #[test]
    fn unknown_slot_errors() {
        let (_, mut v) = vault(4, 2, 64);
        // Host 3 does not hold owner 0's replica (different group).
        let frame = codec::encode(0, 1, &shard(0, 1));
        assert!(v.stage(3, 0, frame).is_err());
        assert!(v.fetch(3, 0).is_none());
        assert!(v.fetch_verified(3, 0).is_err());
    }
}
