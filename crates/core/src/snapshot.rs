//! Copy-on-write snapshots and keyed memoization for the query service.
//!
//! A long-running what-if service answers thousands of concurrent queries
//! against the *same* immutable world description (instance catalogs,
//! deployment templates, placement math). Two primitives make that cheap:
//!
//! * [`Snapshot`]/[`Fork`] — an `Arc`-backed copy-on-write cell. A
//!   snapshot is the shared immutable base; a fork is a per-query view
//!   that reads through to the base for free and clones it **only on
//!   first write**. Queries that never mutate (the overwhelming majority)
//!   share one allocation across every tenant; a `lookahead` query that
//!   wants to perturb the world pays for exactly one clone.
//! * [`MemoCache`]/[`RecoveryMemo`] — a bounded, keyed memo table with
//!   hit/miss telemetry. The flagship user is the placement
//!   recoverability curve: `(strategy, N, m, k) → P(recovery | k)` is a
//!   pure function (the [`analytic`] kernel), identical for every query
//!   that shares a placement spec, and far too expensive to recompute per
//!   tenant at fleet scale.
//!
//! Determinism: neither primitive changes any computed value — forks
//! materialize the same bytes a deep clone would, and the memo returns
//! exactly what the underlying kernel returns. Only the cost (and the
//! `service.*` counters) depend on sharing.
//!
//! [`analytic`]: crate::placement::analytic

use crate::placement::{analytic::analytic_recovery_probability, Placement, PlacementStrategy};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// An immutable, shareable snapshot of a world description `T`.
///
/// Cloning a `Snapshot` is an `Arc` bump; [`Snapshot::fork`] hands a query
/// its own copy-on-write view.
#[derive(Debug)]
pub struct Snapshot<T> {
    base: Arc<T>,
}

impl<T> Clone for Snapshot<T> {
    fn clone(&self) -> Self {
        Snapshot {
            base: Arc::clone(&self.base),
        }
    }
}

impl<T> Snapshot<T> {
    /// Wraps a fully-built world description.
    pub fn new(value: T) -> Snapshot<T> {
        Snapshot {
            base: Arc::new(value),
        }
    }

    /// Reads the shared base.
    pub fn get(&self) -> &T {
        &self.base
    }

    /// Whether two snapshots share the same underlying allocation.
    pub fn shares_with(&self, other: &Snapshot<T>) -> bool {
        Arc::ptr_eq(&self.base, &other.base)
    }

    /// How many handles (snapshots + un-diverged forks) share the base.
    pub fn handle_count(&self) -> usize {
        Arc::strong_count(&self.base)
    }
}

impl<T: Clone> Snapshot<T> {
    /// A per-query copy-on-write view: free until first mutation.
    pub fn fork(&self) -> Fork<T> {
        Fork {
            base: Arc::clone(&self.base),
            overlay: None,
        }
    }
}

/// A copy-on-write view over a [`Snapshot`] base.
///
/// Reads ([`Fork::get`]) see the overlay if the fork has diverged, the
/// shared base otherwise. The first [`Fork::make_mut`] clones the base
/// into a private overlay; the base — and every other tenant's view — is
/// never affected.
#[derive(Debug)]
pub struct Fork<T: Clone> {
    base: Arc<T>,
    overlay: Option<T>,
}

impl<T: Clone> Fork<T> {
    /// Reads the effective value (overlay if diverged, base otherwise).
    pub fn get(&self) -> &T {
        self.overlay.as_ref().unwrap_or(&self.base)
    }

    /// Mutable access, cloning the shared base into a private overlay on
    /// first use (the "copy" in copy-on-write).
    pub fn make_mut(&mut self) -> &mut T {
        if self.overlay.is_none() {
            self.overlay = Some((*self.base).clone());
        }
        self.overlay.as_mut().expect("overlay just materialized")
    }

    /// Whether this fork has paid for its own copy.
    pub fn is_diverged(&self) -> bool {
        self.overlay.is_some()
    }

    /// Promotes the fork into a snapshot of its own: the overlay if it
    /// diverged, otherwise the still-shared base (no copy either way).
    pub fn freeze(self) -> Snapshot<T> {
        match self.overlay {
            Some(owned) => Snapshot::new(owned),
            None => Snapshot { base: self.base },
        }
    }

    /// Consumes the fork, returning an owned value (clones only when the
    /// base is still shared and the fork never diverged).
    pub fn into_owned(self) -> T {
        match self.overlay {
            Some(owned) => owned,
            None => Arc::try_unwrap(self.base).unwrap_or_else(|base| (*base).clone()),
        }
    }
}

/// A bounded, thread-safe memo table keyed by `K` with hit/miss counters.
///
/// At the capacity bound, new results are still computed and returned but
/// no longer inserted — memory stays bounded and values never change,
/// only the hit rate degrades. (Values must be pure functions of their
/// key or the memo would break determinism.)
pub struct MemoCache<K: Ord + Clone, V: Clone> {
    entries: Mutex<BTreeMap<K, V>>,
    cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Ord + Clone, V: Clone> MemoCache<K, V> {
    /// An empty memo admitting at most `cap` entries.
    pub fn new(cap: usize) -> MemoCache<K, V> {
        MemoCache {
            entries: Mutex::new(BTreeMap::new()),
            cap: cap.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Returns the memoized value for `key`, computing and (capacity
    /// permitting) inserting it on a miss.
    pub fn get_or_insert_with<F: FnOnce() -> V>(&self, key: K, compute: F) -> V {
        {
            let entries = self.entries.lock().expect("memo cache poisoned");
            if let Some(v) = entries.get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return v.clone();
            }
        }
        // Compute outside the lock: a slow kernel must not serialize every
        // other tenant's cache hits. (Racing misses may compute twice; the
        // single-flight layer above this dedups when that matters.)
        self.misses.fetch_add(1, Ordering::Relaxed);
        let value = compute();
        let mut entries = self.entries.lock().expect("memo cache poisoned");
        if entries.len() < self.cap || entries.contains_key(&key) {
            entries.insert(key, value.clone());
        }
        value
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Hits over total lookups (0.0 when nothing was looked up yet).
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = (self.hits(), self.misses());
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Number of memoized entries (bounded by the cap).
    pub fn len(&self) -> usize {
        self.entries.lock().expect("memo cache poisoned").len()
    }

    /// Whether the memo is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Canonical memo key for a placement spec: the recoverability curve is a
/// pure function of `(strategy, N, m)` — group membership is derived
/// deterministically and the analytic kernel is label-invariant — so two
/// tenants asking about the same spec share one cache line per `k`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct PlacementSpecKey {
    /// Placement strategy, as a stable small integer.
    pub strategy: u8,
    /// Number of machines `N`.
    pub machines: u32,
    /// Replication factor `m`.
    pub replicas: u32,
}

impl PlacementSpecKey {
    /// The canonical key of an existing placement.
    pub fn of(placement: &Placement) -> PlacementSpecKey {
        let strategy = match placement.strategy() {
            PlacementStrategy::Group => 0,
            PlacementStrategy::Ring => 1,
            PlacementStrategy::Mixed => 2,
        };
        PlacementSpecKey {
            strategy,
            machines: placement.machines() as u32,
            replicas: placement.replicas() as u32,
        }
    }
}

/// Default bound on distinct `(placement spec, k)` memo entries; each
/// entry is a few dozen bytes, so the worst case is well under a MiB.
pub const RECOVERY_MEMO_CAP: usize = 16_384;

/// The placement-recoverability memo: `(placement spec, k) →
/// P(recovery | k failures)` over the exact analytic kernel, shared by
/// every query evaluating the same placement spec.
pub struct RecoveryMemo {
    cache: MemoCache<(PlacementSpecKey, u32), f64>,
}

impl Default for RecoveryMemo {
    fn default() -> Self {
        RecoveryMemo::new()
    }
}

impl RecoveryMemo {
    /// An empty memo with the default capacity bound.
    pub fn new() -> RecoveryMemo {
        RecoveryMemo {
            cache: MemoCache::new(RECOVERY_MEMO_CAP),
        }
    }

    /// `P(recovery | k failures)` for this placement, memoized by
    /// canonical spec. Bit-identical to calling
    /// [`analytic_recovery_probability`] directly.
    pub fn probability(&self, placement: &Placement, k: usize) -> f64 {
        let key = (PlacementSpecKey::of(placement), k as u32);
        self.cache
            .get_or_insert_with(key, || analytic_recovery_probability(placement, k))
    }

    /// The whole curve `k = 0 ..= max_k` (each point memoized).
    pub fn curve(&self, placement: &Placement, max_k: usize) -> Vec<f64> {
        (0..=max_k)
            .map(|k| self.probability(placement, k))
            .collect()
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.cache.hits()
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.cache.misses()
    }

    /// Hits over total lookups.
    pub fn hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }

    /// Number of memoized curve points.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Whether nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    struct World {
        machines: usize,
        note: String,
    }

    #[test]
    fn fork_reads_share_the_base_until_first_write() {
        let snap = Snapshot::new(World {
            machines: 16,
            note: "base".into(),
        });
        let fork = snap.fork();
        assert!(!fork.is_diverged());
        // Reading through the fork is literally the base allocation.
        assert!(std::ptr::eq(fork.get(), snap.get()));
        assert_eq!(snap.handle_count(), 2);
    }

    #[test]
    fn fork_write_clones_once_and_never_touches_the_base() {
        let snap = Snapshot::new(World {
            machines: 16,
            note: "base".into(),
        });
        let mut fork = snap.fork();
        fork.make_mut().machines = 32;
        fork.make_mut().note = "overlay".into();
        assert!(fork.is_diverged());
        assert_eq!(fork.get().machines, 32);
        // The shared base is untouched; other tenants still see it.
        assert_eq!(snap.get().machines, 16);
        assert_eq!(snap.get().note, "base");
        let other = snap.fork();
        assert_eq!(other.get().machines, 16);
    }

    #[test]
    fn freeze_promotes_without_copying_undiverged_forks() {
        let snap = Snapshot::new(World {
            machines: 8,
            note: "base".into(),
        });
        let clean = snap.fork().freeze();
        assert!(clean.shares_with(&snap));
        let mut fork = snap.fork();
        fork.make_mut().machines = 9;
        let diverged = fork.freeze();
        assert!(!diverged.shares_with(&snap));
        assert_eq!(diverged.get().machines, 9);
    }

    #[test]
    fn memo_counts_hits_and_misses() {
        let memo: MemoCache<u32, u64> = MemoCache::new(8);
        assert_eq!(memo.get_or_insert_with(1, || 10), 10);
        assert_eq!(memo.get_or_insert_with(1, || 99), 10, "hit returns memo");
        assert_eq!(memo.hits(), 1);
        assert_eq!(memo.misses(), 1);
        assert!((memo.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn memo_capacity_bounds_memory_not_correctness() {
        let memo: MemoCache<u32, u32> = MemoCache::new(4);
        for k in 0..100u32 {
            assert_eq!(memo.get_or_insert_with(k, move || k * 2), k * 2);
        }
        assert!(memo.len() <= 4, "len={} exceeds cap", memo.len());
        // Beyond-cap keys are recomputed, never wrong.
        assert_eq!(memo.get_or_insert_with(99, || 198), 198);
    }

    #[test]
    fn recovery_memo_matches_the_analytic_kernel_exactly() {
        let memo = RecoveryMemo::new();
        for (n, m) in [(8usize, 2usize), (12, 3), (16, 4)] {
            let p = Placement::mixed(n, m).unwrap();
            for k in 0..=m + 1 {
                let direct = analytic_recovery_probability(&p, k);
                let cold = memo.probability(&p, k);
                let warm = memo.probability(&p, k);
                assert_eq!(direct.to_bits(), cold.to_bits(), "N={n} m={m} k={k}");
                assert_eq!(cold.to_bits(), warm.to_bits());
            }
        }
        assert!(memo.hits() > 0 && memo.misses() > 0);
    }

    #[test]
    fn recovery_memo_key_is_shared_across_equivalent_placements() {
        let memo = RecoveryMemo::new();
        let a = Placement::mixed(16, 4).unwrap();
        let b = Placement::mixed(16, 4).unwrap();
        let _ = memo.probability(&a, 2);
        let before = memo.misses();
        let _ = memo.probability(&b, 2);
        assert_eq!(memo.misses(), before, "equivalent spec must hit");
    }
}
