//! GEMINI's configuration knobs.

use gemini_net::ByteSize;
use gemini_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Configuration of a GEMINI deployment. Defaults follow the paper's
/// implementation section (§7.1) and scheduling parameters (§5.3).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct GeminiConfig {
    /// Checkpoint replicas `m` (one local + `m − 1` remote). The paper's
    /// evaluation uses `m = 2` throughout.
    pub replicas: usize,
    /// GPU memory reserved for checkpoint communication: "GEMINI reserves
    /// 128MB GPU memory for checkpoint communications" (§7.1).
    pub reserved_buffer: ByteSize,
    /// Number of sub-buffers `p` the reserved buffer is split into for
    /// pipelining: "four small sub-buffers … the size of each is 32MB"
    /// (§7.4).
    pub sub_buffers: usize,
    /// The idle-span safety coefficient `γ ∈ (0, 1)` of Algorithm 2,
    /// absorbing iteration-to-iteration variance of the profiled spans.
    pub gamma: f64,
    /// Warm-up iterations profiled before checkpointing starts (§5.4).
    pub profile_iterations: usize,
    /// Interval between checkpoints to remote persistent storage (GEMINI
    /// still persists every three hours for non-recovery purposes, §7.1).
    pub persistent_interval: SimDuration,
    /// Worker heartbeat period into the distributed KV store.
    pub heartbeat_period: SimDuration,
    /// Health-key lease TTL: a machine is declared failed when its health
    /// status has not been refreshed for this long. Calibrated to the
    /// paper's measured 15 s detection latency (§7.3, Fig. 14).
    pub health_ttl: SimDuration,
    /// Per-machine checkpoint-serialization throughput for `torch.save()`.
    /// §7.3 measures 162 s to serialize two replicas of a GPT-2 100B
    /// machine checkpoint (2 × 75 GB), i.e. ≈0.93 GB/s per machine.
    pub serialize_bytes_per_sec: f64,
    /// Restart warm-up after a failure before training proceeds ("more
    /// than four minutes", §7.3).
    pub restart_warmup: SimDuration,
}

impl Default for GeminiConfig {
    fn default() -> Self {
        GeminiConfig {
            replicas: 2,
            reserved_buffer: ByteSize::from_mib(128),
            sub_buffers: 4,
            gamma: 0.8,
            profile_iterations: 20,
            persistent_interval: SimDuration::from_hours(3),
            heartbeat_period: SimDuration::from_secs(5),
            health_ttl: SimDuration::from_secs(15),
            serialize_bytes_per_sec: 0.93e9,
            restart_warmup: SimDuration::from_secs(250),
        }
    }
}

impl GeminiConfig {
    /// Size of one pipeline sub-buffer (`R / p`).
    pub fn sub_buffer_size(&self) -> ByteSize {
        self.reserved_buffer / self.sub_buffers.max(1) as u64
    }

    /// Time to serialize `bytes` of checkpoints with `torch.save()`.
    pub fn serialize_time(&self, bytes: ByteSize) -> SimDuration {
        if self.serialize_bytes_per_sec <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_secs_f64(bytes.as_bytes() as f64 / self.serialize_bytes_per_sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = GeminiConfig::default();
        assert_eq!(c.replicas, 2);
        assert_eq!(c.reserved_buffer, ByteSize::from_mib(128));
        assert_eq!(c.sub_buffers, 4);
        assert_eq!(c.sub_buffer_size(), ByteSize::from_mib(32));
        assert_eq!(c.persistent_interval, SimDuration::from_hours(3));
        assert_eq!(c.health_ttl, SimDuration::from_secs(15));
    }

    #[test]
    fn serialization_anchor_162s() {
        // Two replicas of a 75 GB machine checkpoint serialize in ≈162 s.
        let c = GeminiConfig::default();
        let t = c.serialize_time(ByteSize::from_gb(150)).as_secs_f64();
        assert!((t - 161.3).abs() < 2.0, "t = {t:.1}");
    }

    #[test]
    fn zero_rate_serializes_instantly() {
        let c = GeminiConfig {
            serialize_bytes_per_sec: 0.0,
            ..GeminiConfig::default()
        };
        assert_eq!(c.serialize_time(ByteSize::from_gb(1)), SimDuration::ZERO);
    }
}
