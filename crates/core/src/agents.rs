//! Worker and root agents (paper §3.2, Fig. 2).
//!
//! Every training machine runs a *worker agent* that publishes its health
//! status into the distributed KV store under a TTL lease and keeps it
//! alive with heartbeats. One machine additionally runs the *root agent*,
//! elected through the store's leader election; it periodically scans the
//! health keys, declares machines whose keys have lapsed as failed, and
//! (in the harness) drives replacement and checkpoint retrieval. Workers
//! symmetrically watch the root's election key; when it lapses, an alive
//! worker is promoted.

use crate::config::GeminiConfig;
use gemini_kvstore::{Campaign, Election, KvError, KvStore, LeaseId};
use gemini_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Key prefix for worker health statuses.
pub const HEALTH_PREFIX: &str = "gemini/health/";
/// Election key for the root agent.
pub const ROOT_ELECTION_KEY: &str = "gemini/root";

/// The health value a worker publishes.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthStatus {
    /// The worker's rank.
    pub rank: usize,
    /// The physical machine identity currently serving that rank.
    pub machine: u64,
    /// Heartbeat sequence number.
    pub beat: u64,
}

impl HealthStatus {
    fn encode(&self) -> String {
        format!("{}:{}:{}", self.rank, self.machine, self.beat)
    }

    fn decode(s: &str) -> Option<HealthStatus> {
        let mut it = s.split(':');
        let status = HealthStatus {
            rank: it.next()?.parse().ok()?,
            machine: it.next()?.parse().ok()?,
            beat: it.next()?.parse().ok()?,
        };
        // Strict: exactly three fields. Trailing garbage ("1:2:3:junk")
        // means a corrupt or foreign writer — reject rather than silently
        // truncate.
        if it.next().is_some() {
            return None;
        }
        Some(status)
    }
}

/// The per-machine worker agent.
#[derive(Clone, Debug)]
pub struct WorkerAgent {
    rank: usize,
    machine: u64,
    lease: Option<LeaseId>,
    beat: u64,
    config: GeminiConfig,
}

impl WorkerAgent {
    /// Creates the agent for `rank` on physical machine `machine`.
    pub fn new(rank: usize, machine: u64, config: GeminiConfig) -> Self {
        WorkerAgent {
            rank,
            machine,
            lease: None,
            beat: 0,
            config,
        }
    }

    /// The rank this agent serves.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// This worker's health key.
    pub fn health_key(&self) -> String {
        format!("{HEALTH_PREFIX}{}", self.rank)
    }

    /// Registers the health key under a fresh TTL lease. The heartbeat
    /// sequence number is *not* reset: `beat` is monotonic for the lifetime
    /// of the agent, so observers can distinguish a re-registered wedged
    /// worker (beat continues) from a genuinely fresh one (beat restarts
    /// at 0 only because the agent itself is new).
    pub fn register(&mut self, kv: &mut KvStore, now: SimTime) -> Result<(), KvError> {
        let lease = kv.grant_lease(now, self.config.health_ttl);
        self.lease = Some(lease);
        let status = HealthStatus {
            rank: self.rank,
            machine: self.machine,
            beat: self.beat,
        };
        kv.put(now, &self.health_key(), &status.encode(), Some(lease))?;
        Ok(())
    }

    /// One heartbeat: refresh the lease and bump the status. If the lease
    /// already lapsed (the process was wedged past the TTL), re-register.
    pub fn heartbeat(&mut self, kv: &mut KvStore, now: SimTime) -> Result<(), KvError> {
        match self.lease {
            Some(lease) if kv.lease_alive(now, lease) => {
                kv.keep_alive(now, lease)?;
                self.beat += 1;
                let status = HealthStatus {
                    rank: self.rank,
                    machine: self.machine,
                    beat: self.beat,
                };
                kv.put(now, &self.health_key(), &status.encode(), Some(lease))?;
                kv.telemetry().counter_add("kv.heartbeats", 1);
                Ok(())
            }
            _ => {
                // Wedged past the TTL: the lease is gone, so re-register —
                // but this is still a heartbeat, so the monotonic sequence
                // advances rather than resetting to zero.
                self.beat += 1;
                self.register(kv, now)
            }
        }
    }

    /// Tears down this worker's presence (clean shutdown).
    pub fn deregister(&mut self, kv: &mut KvStore, now: SimTime) -> Result<(), KvError> {
        if let Some(lease) = self.lease.take() {
            kv.revoke(now, lease)?;
        }
        Ok(())
    }

    /// Whether the root agent is currently alive, from this worker's view
    /// (workers "periodically check the root machine's health status").
    pub fn root_alive(&self, kv: &mut KvStore, now: SimTime) -> bool {
        Election::new(ROOT_ELECTION_KEY, self.config.health_ttl)
            .leader(kv, now)
            .is_some()
    }
}

/// What the root agent's scan reports.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScanReport {
    /// Ranks in `0..n` whose health key is present.
    pub alive: Vec<usize>,
    /// Ranks expected but missing (their lease expired → failed).
    pub missing: Vec<usize>,
    /// Ranks `>= n` found under the health prefix: stale keys from a
    /// since-shrunk deployment or a foreign writer. Never treated as
    /// alive; surfaced so operators can spot the pollution.
    pub out_of_range: Vec<usize>,
}

/// The root agent.
#[derive(Clone, Debug)]
pub struct RootAgent {
    identity: String,
    election: Election,
    lease: Option<LeaseId>,
}

impl RootAgent {
    /// Creates a root-agent candidate with the given identity string.
    pub fn new(identity: &str, config: &GeminiConfig) -> Self {
        RootAgent {
            identity: identity.to_string(),
            election: Election::new(ROOT_ELECTION_KEY, config.health_ttl),
            lease: None,
        }
    }

    /// The candidate identity.
    pub fn identity(&self) -> &str {
        &self.identity
    }

    /// Campaigns for (or renews) root leadership. Returns whether this
    /// agent currently leads.
    pub fn campaign(&mut self, kv: &mut KvStore, now: SimTime) -> Result<bool, KvError> {
        match self
            .election
            .campaign(kv, now, &self.identity, self.lease)?
        {
            Campaign::Leader(lease) => {
                self.lease = Some(lease);
                Ok(true)
            }
            Campaign::Follower { .. } => {
                // Losing the campaign while still holding a live lease
                // (e.g. the election key was lost in a KV blip but our
                // lease survived) used to just drop the handle, stranding
                // the lease in the store until its TTL. Revoke it instead
                // so the live-lease population stays bounded by the number
                // of current leaders.
                if let Some(lease) = self.lease.take() {
                    if kv.lease_alive(now, lease) {
                        let _ = kv.revoke(now, lease);
                        kv.telemetry().counter_add("kv.election_lease_revoked", 1);
                    }
                }
                Ok(false)
            }
        }
    }

    /// Whether this agent is the current leader.
    pub fn is_leader(&self, kv: &mut KvStore, now: SimTime) -> bool {
        self.election.leader(kv, now).as_deref() == Some(self.identity.as_str())
    }

    /// Scans worker health for ranks `0..n`, reporting who is missing.
    /// "The root agent periodically checks the health statuses in the
    /// distributed key-value store" (§3.2).
    pub fn scan(&self, kv: &mut KvStore, now: SimTime, n: usize) -> ScanReport {
        let mut alive = Vec::new();
        let mut out_of_range = Vec::new();
        let mut present = vec![false; n];
        // The non-cloning visitor keeps the once-a-second scan allocation-
        // free per key; a flat presence bitmap replaces the BTreeSet so the
        // sweep stays O(n) at fleet scale.
        kv.for_each_in_range(now, HEALTH_PREFIX, |_, v| {
            if let Some(h) = HealthStatus::decode(&v.value) {
                // Only ranks in the expected set count as alive; a stale
                // or foreign key must not inflate the membership view.
                if h.rank < n {
                    alive.push(h.rank);
                    present[h.rank] = true;
                } else {
                    out_of_range.push(h.rank);
                }
            }
        });
        let missing: Vec<usize> = (0..n).filter(|&r| !present[r]).collect();
        alive.sort_unstable();
        alive.dedup();
        out_of_range.sort_unstable();
        out_of_range.dedup();
        kv.telemetry().counter_add("kv.health_scans", 1);
        if !out_of_range.is_empty() {
            kv.telemetry()
                .counter_add("kv.scan_out_of_range", out_of_range.len() as u64);
        }
        let alive_count = alive.len();
        kv.telemetry()
            .gauge_set("kv.alive_workers", || alive_count as f64);
        ScanReport {
            alive,
            missing,
            out_of_range,
        }
    }

    /// Steps down voluntarily.
    pub fn resign(&mut self, kv: &mut KvStore, now: SimTime) -> Result<(), KvError> {
        if let Some(lease) = self.lease.take() {
            self.election.resign(kv, now, lease)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn cfg() -> GeminiConfig {
        GeminiConfig::default() // heartbeat 5 s, TTL 15 s
    }

    #[test]
    fn workers_register_and_root_sees_them() {
        let mut kv = KvStore::new();
        let mut workers: Vec<WorkerAgent> = (0..4)
            .map(|r| WorkerAgent::new(r, r as u64, cfg()))
            .collect();
        for w in &mut workers {
            w.register(&mut kv, t(0)).unwrap();
        }
        let root = RootAgent::new("machine-0", &cfg());
        let report = root.scan(&mut kv, t(1), 4);
        assert_eq!(report.alive, vec![0, 1, 2, 3]);
        assert!(report.missing.is_empty());
    }

    #[test]
    fn dead_worker_detected_within_ttl() {
        // The paper measures 15 s detection latency (Fig. 14); our TTL is
        // exactly that bound.
        let mut kv = KvStore::new();
        let mut workers: Vec<WorkerAgent> = (0..4)
            .map(|r| WorkerAgent::new(r, r as u64, cfg()))
            .collect();
        for w in &mut workers {
            w.register(&mut kv, t(0)).unwrap();
        }
        let root = RootAgent::new("machine-0", &cfg());
        // Everyone heartbeats except rank 2, which dies at t = 20. The root
        // scans every second; record when it first sees rank 2 missing.
        let mut first_missing = None;
        for s in 1..60 {
            if s % 5 == 0 {
                for w in workers.iter_mut() {
                    if w.rank() == 2 && s >= 20 {
                        continue;
                    }
                    w.heartbeat(&mut kv, t(s)).unwrap();
                }
            }
            let report = root.scan(&mut kv, t(s), 4);
            if !report.missing.is_empty() && first_missing.is_none() {
                assert_eq!(report.missing, vec![2]);
                assert_eq!(report.alive, vec![0, 1, 3]);
                first_missing = Some(s);
            }
        }
        // Rank 2's last beat was t=15, so its key lapses at t=30.
        assert_eq!(first_missing, Some(30));
    }

    #[test]
    fn detection_latency_bounded_by_ttl() {
        let mut kv = KvStore::new();
        let mut w = WorkerAgent::new(0, 0, cfg());
        w.register(&mut kv, t(0)).unwrap();
        let die_at = 7u64; // last refresh at t=5
        for s in (5..die_at).step_by(5) {
            w.heartbeat(&mut kv, t(s)).unwrap();
        }
        let root = RootAgent::new("r", &cfg());
        // Key lapses 15 s after the last refresh (t=5): at t=20.
        let mut detected_at = None;
        for s in die_at..60 {
            if !root.scan(&mut kv, t(s), 1).missing.is_empty() {
                detected_at = Some(s);
                break;
            }
        }
        let latency = detected_at.unwrap() - 5;
        assert_eq!(latency, 15, "detection latency = {latency}s");
    }

    #[test]
    fn root_failover_promotes_a_worker() {
        let mut kv = KvStore::new();
        let mut root0 = RootAgent::new("machine-0", &cfg());
        let mut root3 = RootAgent::new("machine-3", &cfg());
        assert!(root0.campaign(&mut kv, t(0)).unwrap());
        assert!(!root3.campaign(&mut kv, t(1)).unwrap());
        // Root 0 renews until t=20, then dies.
        for s in (5..=20).step_by(5) {
            assert!(root0.campaign(&mut kv, t(s)).unwrap());
        }
        // Workers still see it before the TTL runs out...
        let w = WorkerAgent::new(3, 3, cfg());
        assert!(w.root_alive(&mut kv, t(30)));
        // ...and notice it gone at t=35 (TTL 15 after last renewal).
        assert!(!w.root_alive(&mut kv, t(35)));
        assert!(root3.campaign(&mut kv, t(36)).unwrap());
        assert!(root3.is_leader(&mut kv, t(36)));
    }

    #[test]
    fn wedged_worker_reregisters() {
        let mut kv = KvStore::new();
        let mut w = WorkerAgent::new(1, 7, cfg());
        w.register(&mut kv, t(0)).unwrap();
        // The process stalls 40 s (lease long gone), then resumes.
        w.heartbeat(&mut kv, t(40)).unwrap();
        let root = RootAgent::new("r", &cfg());
        assert!(root.scan(&mut kv, t(41), 2).alive.contains(&1));
    }

    #[test]
    fn deregister_removes_key_immediately() {
        let mut kv = KvStore::new();
        let mut w = WorkerAgent::new(0, 0, cfg());
        w.register(&mut kv, t(0)).unwrap();
        w.deregister(&mut kv, t(1)).unwrap();
        let root = RootAgent::new("r", &cfg());
        assert_eq!(root.scan(&mut kv, t(1), 1).missing, vec![0]);
    }

    #[test]
    fn health_status_roundtrip() {
        let h = HealthStatus {
            rank: 3,
            machine: 42,
            beat: 17,
        };
        assert_eq!(HealthStatus::decode(&h.encode()), Some(h));
        assert_eq!(HealthStatus::decode("garbage"), None);
    }

    #[test]
    fn health_status_decode_rejects_trailing_fields() {
        // Regression: decode used to silently accept "1:2:3:junk",
        // truncating instead of rejecting.
        assert_eq!(HealthStatus::decode("1:2:3:junk"), None);
        assert_eq!(HealthStatus::decode("1:2:3:"), None);
        assert_eq!(HealthStatus::decode("1:2:3:4"), None);
        // Too few fields and non-numeric fields still fail.
        assert_eq!(HealthStatus::decode("1:2"), None);
        assert_eq!(HealthStatus::decode("1:x:3"), None);
        assert_eq!(HealthStatus::decode(""), None);
        // Exactly three numeric fields pass.
        assert_eq!(
            HealthStatus::decode("1:2:3"),
            Some(HealthStatus {
                rank: 1,
                machine: 2,
                beat: 3
            })
        );
    }

    #[test]
    fn reregistration_preserves_beat_counter() {
        // Regression: a wedged worker re-registering used to restart its
        // heartbeat sequence at 0, erasing the monotonic counter that lets
        // observers order health observations.
        let mut kv = KvStore::new();
        let mut w = WorkerAgent::new(0, 0, cfg());
        w.register(&mut kv, t(0)).unwrap();
        let mut last_beat = 0u64;
        for s in (5..=15).step_by(5) {
            w.heartbeat(&mut kv, t(s)).unwrap();
            let h = HealthStatus::decode(&kv.get(t(s), &w.health_key()).unwrap().value).unwrap();
            assert!(h.beat > last_beat || (s == 5 && h.beat == 1));
            last_beat = h.beat;
        }
        // Wedge: no heartbeats until t=50, lease long gone; the next
        // heartbeat re-registers.
        w.heartbeat(&mut kv, t(50)).unwrap();
        let h = HealthStatus::decode(&kv.get(t(50), &w.health_key()).unwrap().value).unwrap();
        assert!(
            h.beat > last_beat,
            "beat must stay monotonic across re-register: {} -> {}",
            last_beat,
            h.beat
        );
        // And it keeps climbing afterwards.
        w.heartbeat(&mut kv, t(55)).unwrap();
        let h2 = HealthStatus::decode(&kv.get(t(55), &w.health_key()).unwrap().value).unwrap();
        assert!(h2.beat > h.beat);
    }

    #[test]
    fn scan_bounds_alive_to_expected_ranks() {
        // Regression: stale/foreign health keys with rank >= n used to be
        // reported in `alive`, inflating the membership view.
        let mut kv = KvStore::new();
        for r in [0usize, 1, 7, 12] {
            let mut w = WorkerAgent::new(r, r as u64, cfg());
            w.register(&mut kv, t(0)).unwrap();
        }
        let root = RootAgent::new("r", &cfg());
        let report = root.scan(&mut kv, t(1), 4);
        assert_eq!(report.alive, vec![0, 1]);
        assert_eq!(report.missing, vec![2, 3]);
        assert_eq!(report.out_of_range, vec![7, 12]);
        // The pollution is surfaced as a telemetry counter too.
        let sink = gemini_telemetry::TelemetrySink::enabled();
        let mut kv2 = KvStore::new().with_telemetry(sink.clone());
        let mut w = WorkerAgent::new(9, 9, cfg());
        w.register(&mut kv2, t(0)).unwrap();
        root.scan(&mut kv2, t(1), 4);
        let snap = sink.metrics_snapshot();
        assert_eq!(
            snap.counter(gemini_telemetry::Key::plain("kv.scan_out_of_range")),
            1
        );
    }

    #[test]
    fn contested_root_campaigns_bound_live_leases() {
        // Regression (lease leak): when the election key is lost while the
        // holder's lease survives (a KV blip — exactly what the chaos
        // engine injects), the displaced root used to drop its live lease
        // handle on follow, stranding one lease per losing round until TTL
        // (~15 stranded leases in steady state here). Post-fix the live
        // population stays bounded by the number of campaigners.
        let mut kv = KvStore::new();
        let mut roots = [RootAgent::new("m0", &cfg()), RootAgent::new("m1", &cfg())];
        for s in 0..60u64 {
            // Alternate who campaigns first so leadership ping-pongs.
            let first = (s % 2) as usize;
            let _ = roots[first].campaign(&mut kv, t(s));
            let _ = roots[1 - first].campaign(&mut kv, t(s));
            assert!(
                kv.live_leases(t(s)) <= 2,
                "leaked leases at t={s}: {} live",
                kv.live_leases(t(s))
            );
            // KV blip: the election key vanishes but leases survive.
            let _ = kv.delete(t(s), ROOT_ELECTION_KEY);
        }
    }
}
