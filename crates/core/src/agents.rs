//! Worker and root agents (paper §3.2, Fig. 2).
//!
//! Every training machine runs a *worker agent* that publishes its health
//! status into the distributed KV store under a TTL lease and keeps it
//! alive with heartbeats. One machine additionally runs the *root agent*,
//! elected through the store's leader election; it periodically scans the
//! health keys, declares machines whose keys have lapsed as failed, and
//! (in the harness) drives replacement and checkpoint retrieval. Workers
//! symmetrically watch the root's election key; when it lapses, an alive
//! worker is promoted.

use crate::config::GeminiConfig;
use gemini_kvstore::{Campaign, Election, KvError, KvStore, LeaseId};
use gemini_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Key prefix for worker health statuses.
pub const HEALTH_PREFIX: &str = "gemini/health/";
/// Election key for the root agent.
pub const ROOT_ELECTION_KEY: &str = "gemini/root";

/// The health value a worker publishes.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthStatus {
    /// The worker's rank.
    pub rank: usize,
    /// The physical machine identity currently serving that rank.
    pub machine: u64,
    /// Heartbeat sequence number.
    pub beat: u64,
}

impl HealthStatus {
    fn encode(&self) -> String {
        format!("{}:{}:{}", self.rank, self.machine, self.beat)
    }

    fn decode(s: &str) -> Option<HealthStatus> {
        let mut it = s.split(':');
        Some(HealthStatus {
            rank: it.next()?.parse().ok()?,
            machine: it.next()?.parse().ok()?,
            beat: it.next()?.parse().ok()?,
        })
    }
}

/// The per-machine worker agent.
#[derive(Clone, Debug)]
pub struct WorkerAgent {
    rank: usize,
    machine: u64,
    lease: Option<LeaseId>,
    beat: u64,
    config: GeminiConfig,
}

impl WorkerAgent {
    /// Creates the agent for `rank` on physical machine `machine`.
    pub fn new(rank: usize, machine: u64, config: GeminiConfig) -> Self {
        WorkerAgent {
            rank,
            machine,
            lease: None,
            beat: 0,
            config,
        }
    }

    /// The rank this agent serves.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// This worker's health key.
    pub fn health_key(&self) -> String {
        format!("{HEALTH_PREFIX}{}", self.rank)
    }

    /// Registers the health key under a fresh TTL lease.
    pub fn register(&mut self, kv: &mut KvStore, now: SimTime) -> Result<(), KvError> {
        let lease = kv.grant_lease(now, self.config.health_ttl);
        self.lease = Some(lease);
        self.beat = 0;
        let status = HealthStatus {
            rank: self.rank,
            machine: self.machine,
            beat: self.beat,
        };
        kv.put(now, &self.health_key(), &status.encode(), Some(lease))?;
        Ok(())
    }

    /// One heartbeat: refresh the lease and bump the status. If the lease
    /// already lapsed (the process was wedged past the TTL), re-register.
    pub fn heartbeat(&mut self, kv: &mut KvStore, now: SimTime) -> Result<(), KvError> {
        match self.lease {
            Some(lease) if kv.lease_alive(now, lease) => {
                kv.keep_alive(now, lease)?;
                self.beat += 1;
                let status = HealthStatus {
                    rank: self.rank,
                    machine: self.machine,
                    beat: self.beat,
                };
                kv.put(now, &self.health_key(), &status.encode(), Some(lease))?;
                kv.telemetry().counter_add("kv.heartbeats", 1);
                Ok(())
            }
            _ => self.register(kv, now),
        }
    }

    /// Tears down this worker's presence (clean shutdown).
    pub fn deregister(&mut self, kv: &mut KvStore, now: SimTime) -> Result<(), KvError> {
        if let Some(lease) = self.lease.take() {
            kv.revoke(now, lease)?;
        }
        Ok(())
    }

    /// Whether the root agent is currently alive, from this worker's view
    /// (workers "periodically check the root machine's health status").
    pub fn root_alive(&self, kv: &mut KvStore, now: SimTime) -> bool {
        Election::new(ROOT_ELECTION_KEY, self.config.health_ttl)
            .leader(kv, now)
            .is_some()
    }
}

/// What the root agent's scan reports.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScanReport {
    /// Ranks whose health key is present.
    pub alive: Vec<usize>,
    /// Ranks expected but missing (their lease expired → failed).
    pub missing: Vec<usize>,
}

/// The root agent.
#[derive(Clone, Debug)]
pub struct RootAgent {
    identity: String,
    election: Election,
    lease: Option<LeaseId>,
}

impl RootAgent {
    /// Creates a root-agent candidate with the given identity string.
    pub fn new(identity: &str, config: &GeminiConfig) -> Self {
        RootAgent {
            identity: identity.to_string(),
            election: Election::new(ROOT_ELECTION_KEY, config.health_ttl),
            lease: None,
        }
    }

    /// The candidate identity.
    pub fn identity(&self) -> &str {
        &self.identity
    }

    /// Campaigns for (or renews) root leadership. Returns whether this
    /// agent currently leads.
    pub fn campaign(&mut self, kv: &mut KvStore, now: SimTime) -> Result<bool, KvError> {
        match self
            .election
            .campaign(kv, now, &self.identity, self.lease)?
        {
            Campaign::Leader(lease) => {
                self.lease = Some(lease);
                Ok(true)
            }
            Campaign::Follower { .. } => {
                self.lease = None;
                Ok(false)
            }
        }
    }

    /// Whether this agent is the current leader.
    pub fn is_leader(&self, kv: &mut KvStore, now: SimTime) -> bool {
        self.election.leader(kv, now).as_deref() == Some(self.identity.as_str())
    }

    /// Scans worker health for ranks `0..n`, reporting who is missing.
    /// "The root agent periodically checks the health statuses in the
    /// distributed key-value store" (§3.2).
    pub fn scan(&self, kv: &mut KvStore, now: SimTime, n: usize) -> ScanReport {
        let mut alive = Vec::new();
        let present: std::collections::BTreeSet<usize> = kv
            .range(now, HEALTH_PREFIX)
            .into_iter()
            .filter_map(|(_, v)| HealthStatus::decode(&v.value))
            .map(|h| {
                alive.push(h.rank);
                h.rank
            })
            .collect();
        let missing: Vec<usize> = (0..n).filter(|r| !present.contains(r)).collect();
        alive.sort_unstable();
        alive.dedup();
        kv.telemetry().counter_add("kv.health_scans", 1);
        let alive_count = alive.len();
        kv.telemetry()
            .gauge_set("kv.alive_workers", || alive_count as f64);
        ScanReport { alive, missing }
    }

    /// Steps down voluntarily.
    pub fn resign(&mut self, kv: &mut KvStore, now: SimTime) -> Result<(), KvError> {
        if let Some(lease) = self.lease.take() {
            self.election.resign(kv, now, lease)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn cfg() -> GeminiConfig {
        GeminiConfig::default() // heartbeat 5 s, TTL 15 s
    }

    #[test]
    fn workers_register_and_root_sees_them() {
        let mut kv = KvStore::new();
        let mut workers: Vec<WorkerAgent> = (0..4)
            .map(|r| WorkerAgent::new(r, r as u64, cfg()))
            .collect();
        for w in &mut workers {
            w.register(&mut kv, t(0)).unwrap();
        }
        let root = RootAgent::new("machine-0", &cfg());
        let report = root.scan(&mut kv, t(1), 4);
        assert_eq!(report.alive, vec![0, 1, 2, 3]);
        assert!(report.missing.is_empty());
    }

    #[test]
    fn dead_worker_detected_within_ttl() {
        // The paper measures 15 s detection latency (Fig. 14); our TTL is
        // exactly that bound.
        let mut kv = KvStore::new();
        let mut workers: Vec<WorkerAgent> = (0..4)
            .map(|r| WorkerAgent::new(r, r as u64, cfg()))
            .collect();
        for w in &mut workers {
            w.register(&mut kv, t(0)).unwrap();
        }
        let root = RootAgent::new("machine-0", &cfg());
        // Everyone heartbeats except rank 2, which dies at t = 20. The root
        // scans every second; record when it first sees rank 2 missing.
        let mut first_missing = None;
        for s in 1..60 {
            if s % 5 == 0 {
                for w in workers.iter_mut() {
                    if w.rank() == 2 && s >= 20 {
                        continue;
                    }
                    w.heartbeat(&mut kv, t(s)).unwrap();
                }
            }
            let report = root.scan(&mut kv, t(s), 4);
            if !report.missing.is_empty() && first_missing.is_none() {
                assert_eq!(report.missing, vec![2]);
                assert_eq!(report.alive, vec![0, 1, 3]);
                first_missing = Some(s);
            }
        }
        // Rank 2's last beat was t=15, so its key lapses at t=30.
        assert_eq!(first_missing, Some(30));
    }

    #[test]
    fn detection_latency_bounded_by_ttl() {
        let mut kv = KvStore::new();
        let mut w = WorkerAgent::new(0, 0, cfg());
        w.register(&mut kv, t(0)).unwrap();
        let die_at = 7u64; // last refresh at t=5
        for s in (5..die_at).step_by(5) {
            w.heartbeat(&mut kv, t(s)).unwrap();
        }
        let root = RootAgent::new("r", &cfg());
        // Key lapses 15 s after the last refresh (t=5): at t=20.
        let mut detected_at = None;
        for s in die_at..60 {
            if !root.scan(&mut kv, t(s), 1).missing.is_empty() {
                detected_at = Some(s);
                break;
            }
        }
        let latency = detected_at.unwrap() - 5;
        assert_eq!(latency, 15, "detection latency = {latency}s");
    }

    #[test]
    fn root_failover_promotes_a_worker() {
        let mut kv = KvStore::new();
        let mut root0 = RootAgent::new("machine-0", &cfg());
        let mut root3 = RootAgent::new("machine-3", &cfg());
        assert!(root0.campaign(&mut kv, t(0)).unwrap());
        assert!(!root3.campaign(&mut kv, t(1)).unwrap());
        // Root 0 renews until t=20, then dies.
        for s in (5..=20).step_by(5) {
            assert!(root0.campaign(&mut kv, t(s)).unwrap());
        }
        // Workers still see it before the TTL runs out...
        let w = WorkerAgent::new(3, 3, cfg());
        assert!(w.root_alive(&mut kv, t(30)));
        // ...and notice it gone at t=35 (TTL 15 after last renewal).
        assert!(!w.root_alive(&mut kv, t(35)));
        assert!(root3.campaign(&mut kv, t(36)).unwrap());
        assert!(root3.is_leader(&mut kv, t(36)));
    }

    #[test]
    fn wedged_worker_reregisters() {
        let mut kv = KvStore::new();
        let mut w = WorkerAgent::new(1, 7, cfg());
        w.register(&mut kv, t(0)).unwrap();
        // The process stalls 40 s (lease long gone), then resumes.
        w.heartbeat(&mut kv, t(40)).unwrap();
        let root = RootAgent::new("r", &cfg());
        assert!(root.scan(&mut kv, t(41), 2).alive.contains(&1));
    }

    #[test]
    fn deregister_removes_key_immediately() {
        let mut kv = KvStore::new();
        let mut w = WorkerAgent::new(0, 0, cfg());
        w.register(&mut kv, t(0)).unwrap();
        w.deregister(&mut kv, t(1)).unwrap();
        let root = RootAgent::new("r", &cfg());
        assert_eq!(root.scan(&mut kv, t(1), 1).missing, vec![0]);
    }

    #[test]
    fn health_status_roundtrip() {
        let h = HealthStatus {
            rank: 3,
            machine: 42,
            beat: 17,
        };
        assert_eq!(HealthStatus::decode(&h.encode()), Some(h));
        assert_eq!(HealthStatus::decode("garbage"), None);
    }
}
