//! End-to-end checkpoint scheduling for one iteration (GEMINI's scheme).
//!
//! Glues together the pieces of §5: take the profiled idle spans, run the
//! checkpoint partition algorithm (Algorithm 2), place the resulting chunks
//! at absolute offsets inside the iteration, validate GPU-memory feasibility
//! and pipeline health, and report the iteration-time overhead (zero when
//! the idle time suffices — the headline result of Fig. 7) plus the
//! checkpoint network time plotted in Fig. 8.

use crate::config::GeminiConfig;
use crate::error::GeminiError;
use crate::partition::{checkpoint_partition, Chunk, PartitionInput, PartitionPlan};
use crate::pipeline::run_pipeline;
use gemini_net::{ByteSize, TransferCost};
use gemini_sim::{SimDuration, Span};
use gemini_training::IdleProfile;
use serde::{Deserialize, Serialize};

/// Quantities summarizing one iteration with checkpointing enabled.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ScheduleOutcome {
    /// Iteration time without any checkpoint traffic.
    pub baseline_iteration: SimDuration,
    /// Iteration time with the checkpoint traffic scheduled.
    pub iteration_time: SimDuration,
    /// The difference (zero when all traffic fits in idle time).
    pub overhead: SimDuration,
    /// NIC time consumed by checkpoint traffic (Fig. 8's "GEMINI cpkt
    /// time").
    pub ckpt_network_time: SimDuration,
    /// Idle time remaining after the checkpoint traffic is inserted
    /// (Fig. 8's "Net. idle time w. GEMINI").
    pub remaining_idle: SimDuration,
    /// NIC bubbles the receive pipeline would trap (zero with `p ≥ 2`
    /// sub-buffers when copy bandwidth keeps up, §5.2).
    pub pipeline_bubbles: SimDuration,
}

/// A complete checkpoint schedule for one iteration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CkptSchedule {
    /// The Algorithm 2 partition.
    pub plan: PartitionPlan,
    /// Every chunk with its absolute span within the iteration.
    pub placed: Vec<(Chunk, Span)>,
    /// Summary quantities.
    pub outcome: ScheduleOutcome,
}

/// Schedules GEMINI's checkpoint traffic for one iteration.
///
/// * `profile` — the averaged idle profile from the online profiler;
/// * `ckpt_bytes_machine` — one machine's model-state shard `C`;
/// * `gpus` — GPUs per machine (the reserved buffer is per GPU, so the
///   machine-level transfer unit is `gpus × R / p`);
/// * `net` / `copy` — machine-level checkpoint network and GPU→CPU copy
///   cost models;
/// * `gpu_headroom` — free GPU memory per GPU; the reserved buffer must
///   fit inside it.
pub fn schedule_checkpoint(
    profile: &IdleProfile,
    ckpt_bytes_machine: ByteSize,
    gpus: u32,
    config: &GeminiConfig,
    net: &TransferCost,
    copy: &TransferCost,
    gpu_headroom: ByteSize,
) -> Result<CkptSchedule, GeminiError> {
    if config.reserved_buffer > gpu_headroom {
        return Err(GeminiError::BufferTooLarge {
            requested: config.reserved_buffer,
            available: gpu_headroom,
        });
    }
    let input = PartitionInput {
        idle_spans: profile.span_lengths(),
        ckpt_size: ckpt_bytes_machine,
        copies: config.replicas.saturating_sub(1),
        reserved_buffer: config.reserved_buffer * gpus.max(1) as u64,
        buffer_parts: config.sub_buffers,
        cost: *net,
        gamma: config.gamma,
    };
    let plan = checkpoint_partition(&input)?;

    // Absolute placement: chunks run back-to-back from each span's start;
    // only the final span may overrun its real end.
    let mut placed = Vec::with_capacity(plan.chunks.len());
    let mut cursor_span = usize::MAX;
    let mut cursor = profile
        .spans
        .first()
        .map(|s| s.start)
        .unwrap_or(gemini_sim::SimTime::ZERO);
    for chunk in &plan.chunks {
        if chunk.span_index != cursor_span {
            cursor_span = chunk.span_index;
            cursor = profile.spans[cursor_span].start;
        }
        let span = Span::with_len(cursor, net.time(chunk.size));
        cursor = span.end;
        placed.push((*chunk, span));
    }

    // Pipeline health: simulate the receive pipeline over the chunk list.
    let sizes: Vec<ByteSize> = plan.chunks.iter().map(|c| c.size).collect();
    let pipe = run_pipeline(&sizes, config.sub_buffers, net, copy);

    let overflow = plan.overflow(&input.idle_spans, net);
    let baseline = profile.iteration_time;
    let ckpt_network_time = plan
        .chunks
        .iter()
        .fold(SimDuration::ZERO, |acc, c| acc + net.time(c.size));
    let outcome = ScheduleOutcome {
        baseline_iteration: baseline,
        iteration_time: baseline + overflow,
        overhead: overflow,
        ckpt_network_time,
        remaining_idle: profile.total_idle().saturating_sub(ckpt_network_time),
        pipeline_bubbles: pipe.net_bubbles,
    };
    Ok(CkptSchedule {
        plan,
        placed,
        outcome,
    })
}

impl CkptSchedule {
    /// Whether checkpointing every iteration is free (no overhead), the
    /// property GEMINI achieves for every evaluated model (§7.2).
    pub fn is_interference_free(&self) -> bool {
        self.outcome.overhead.is_zero()
    }

    /// Reports the schedule through a telemetry sink: one `ckpt` span per
    /// placed chunk (relative to `base`), a `CkptChunkSent` event at each
    /// chunk's completion, and the headline gauges/histograms
    /// (`ckpt.stall_us`, `ckpt.network_time_us`, `ckpt.remaining_idle_us`).
    pub fn record_telemetry(
        &self,
        sink: &gemini_telemetry::TelemetrySink,
        base: gemini_sim::SimTime,
    ) {
        if !sink.is_enabled() {
            return;
        }
        for (i, (chunk, span)) in self.placed.iter().enumerate() {
            let start = base + span.start.saturating_since(gemini_sim::SimTime::ZERO);
            let end = base + span.end.saturating_since(gemini_sim::SimTime::ZERO);
            sink.span("ckpt", || format!("chunk {i}"), start, end);
            sink.event(end, || gemini_telemetry::TelemetryEvent::CkptChunkSent {
                chunk: i,
                bytes: chunk.size.as_bytes(),
            });
            sink.counter_add("ckpt.chunk_bytes", chunk.size.as_bytes());
        }
        sink.counter_add("ckpt.chunks", self.placed.len() as u64);
        sink.observe_us("ckpt.stall_us", || self.outcome.overhead.as_nanos() / 1_000);
        sink.gauge_set("ckpt.network_time_us", || {
            (self.outcome.ckpt_network_time.as_nanos() / 1_000) as f64
        });
        sink.gauge_set("ckpt.remaining_idle_us", || {
            (self.outcome.remaining_idle.as_nanos() / 1_000) as f64
        });
        sink.gauge_set("ckpt.pipeline_bubbles_us", || {
            (self.outcome.pipeline_bubbles.as_nanos() / 1_000) as f64
        });
        // The NIC-side view of the same schedule: what checkpoint traffic
        // costs the network, bubbles included (§5.2).
        sink.gauge_set("net.ckpt_occupancy_us", || {
            (self.outcome.ckpt_network_time.as_nanos() / 1_000) as f64
        });
        if !self.outcome.ckpt_network_time.is_zero() {
            sink.gauge_set("net.nic_busy_frac", || {
                1.0 - self.outcome.pipeline_bubbles.as_nanos() as f64
                    / self.outcome.ckpt_network_time.as_nanos() as f64
            });
        }
    }

    /// Validates that no placed chunk (except in the final span) leaks out
    /// of its idle span.
    pub fn check_placement(&self, profile: &IdleProfile) -> Result<(), String> {
        let last = profile.spans.len().saturating_sub(1);
        for (chunk, span) in &self.placed {
            let idle = &profile.spans[chunk.span_index];
            if span.start < idle.start {
                return Err(format!("chunk starts before its span: {span:?}"));
            }
            if chunk.span_index != last && span.end > idle.end {
                return Err(format!(
                    "chunk leaks out of span {}: {span:?} vs {idle:?}",
                    chunk.span_index
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemini_cluster::InstanceType;
    use gemini_training::{ModelConfig, OnlineProfiler, TimelineBuilder};

    fn profile(model: &ModelConfig, inst: &InstanceType, n: usize) -> IdleProfile {
        let b = TimelineBuilder::new(model, inst, n);
        let mut p = OnlineProfiler::new(3);
        for _ in 0..3 {
            p.observe(&b.build());
        }
        p.profile().unwrap()
    }

    fn p4d_sched() -> CkptSchedule {
        let inst = InstanceType::p4d();
        let model = ModelConfig::gpt2_100b();
        let prof = profile(model, inst, 16);
        schedule_checkpoint(
            &prof,
            model.checkpoint_bytes_per_machine(16),
            inst.gpus,
            &GeminiConfig::default(),
            &inst.ckpt_net_cost(),
            &inst.copy_cost(),
            inst.gpu_headroom,
        )
        .unwrap()
    }

    #[test]
    fn gpt2_100b_checkpoints_every_iteration_for_free() {
        // The headline result: per-iteration checkpointing with zero
        // training-throughput overhead (Fig. 7).
        let s = p4d_sched();
        assert!(
            s.is_interference_free(),
            "overhead = {}",
            s.outcome.overhead
        );
    }

    #[test]
    fn gpt2_100b_ckpt_network_time_under_3s() {
        // §7.2: "the checkpoint time with GEMINI is less than 3 seconds".
        let s = p4d_sched();
        let t = s.outcome.ckpt_network_time.as_secs_f64();
        assert!(t < 3.0, "ckpt time = {t:.2}s");
        assert!(t > 1.0, "suspiciously fast: {t:.2}s");
    }

    #[test]
    fn idle_time_remains_after_checkpointing() {
        // Fig. 8: "there is still available network idle time even after
        // GEMINI inserts all the checkpoint traffic".
        let s = p4d_sched();
        assert!(s.outcome.remaining_idle > SimDuration::from_secs(5));
    }

    #[test]
    fn pipeline_has_no_bubbles_on_p4d() {
        // Copy bandwidth ≈ network bandwidth on p4d (footnote 2) and p = 4.
        let s = p4d_sched();
        assert!(s.outcome.pipeline_bubbles.is_zero());
    }

    #[test]
    fn placement_respects_spans() {
        let inst = InstanceType::p4d();
        let model = ModelConfig::gpt2_100b();
        let prof = profile(model, inst, 16);
        let s = p4d_sched();
        s.check_placement(&prof).unwrap();
    }

    #[test]
    fn oversized_buffer_rejected() {
        let inst = InstanceType::p4d();
        let model = ModelConfig::gpt2_100b();
        let prof = profile(model, inst, 16);
        let cfg = GeminiConfig {
            reserved_buffer: ByteSize::from_gb(4),
            ..GeminiConfig::default()
        };
        let err = schedule_checkpoint(
            &prof,
            model.checkpoint_bytes_per_machine(16),
            inst.gpus,
            &cfg,
            &inst.ckpt_net_cost(),
            &inst.copy_cost(),
            inst.gpu_headroom,
        )
        .unwrap_err();
        assert!(matches!(err, GeminiError::BufferTooLarge { .. }));
    }

    #[test]
    fn p3dn_40b_also_fits() {
        // Fig. 13: the idle time on p3dn still accommodates the traffic.
        let inst = InstanceType::p3dn();
        let model = ModelConfig::gpt2_40b();
        let prof = profile(model, inst, 16);
        let s = schedule_checkpoint(
            &prof,
            model.checkpoint_bytes_per_machine(16),
            inst.gpus,
            &GeminiConfig::default(),
            &inst.ckpt_net_cost(),
            &inst.copy_cost(),
            inst.gpu_headroom,
        )
        .unwrap();
        assert!(
            s.outcome.overhead < SimDuration::from_secs_f64(1.0),
            "overhead = {}",
            s.outcome.overhead
        );
    }

    #[test]
    fn three_replicas_cost_twice_the_network_time_of_two() {
        let inst = InstanceType::p4d();
        let model = ModelConfig::gpt2_100b();
        let prof = profile(model, inst, 16);
        let mk = |m: usize| {
            schedule_checkpoint(
                &prof,
                model.checkpoint_bytes_per_machine(16),
                inst.gpus,
                &GeminiConfig {
                    replicas: m,
                    ..GeminiConfig::default()
                },
                &inst.ckpt_net_cost(),
                &inst.copy_cost(),
                inst.gpu_headroom,
            )
            .unwrap()
        };
        let two = mk(2).outcome.ckpt_network_time.as_secs_f64();
        let three = mk(3).outcome.ckpt_network_time.as_secs_f64();
        assert!((three / two - 2.0).abs() < 0.01, "{three} vs {two}");
    }
}
