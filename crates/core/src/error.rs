//! The crate-wide error type.

use gemini_net::ByteSize;

/// Errors produced by GEMINI's core algorithms.
#[derive(Clone, Debug, PartialEq)]
pub enum GeminiError {
    /// Placement parameters are invalid (e.g. `m > N` or `m == 0`).
    InvalidPlacement {
        /// Number of machines requested.
        machines: usize,
        /// Number of replicas requested.
        replicas: usize,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// The group placement strategy requires `N` divisible by `m`.
    NotDivisible {
        /// Number of machines.
        machines: usize,
        /// Number of replicas.
        replicas: usize,
    },
    /// The reserved GPU buffer does not fit in the profiled headroom.
    BufferTooLarge {
        /// Requested reserved buffer.
        requested: ByteSize,
        /// Available GPU memory headroom.
        available: ByteSize,
    },
    /// A GPU would run out of memory executing the given scheme (the
    /// naive-interleave OOM of §7.4).
    GpuOutOfMemory {
        /// Buffer the scheme requires per GPU.
        required: ByteSize,
        /// Headroom actually available per GPU.
        available: ByteSize,
    },
    /// Partitioning was asked to schedule zero-size checkpoints or no spans.
    InvalidPartitionInput(&'static str),
    /// A rank referenced by a recovery request does not exist.
    UnknownRank(usize),
    /// A checkpoint payload failed to decode.
    Codec(&'static str),
    /// No checkpoint is available in any tier (cannot recover).
    NoCheckpointAvailable,
    /// A coordination operation exhausted its retry budget (chaos:
    /// KV-store outage, replacement exhaustion). Carries the operation
    /// name and how many attempts were made before giving up.
    Timeout {
        /// What was being retried (e.g. `"kv.put"`, `"replacement"`).
        operation: &'static str,
        /// Attempts made before the policy was exhausted.
        attempts: u32,
    },
    /// A drill/what-if query configuration is structurally invalid
    /// (duplicate victim ranks, zero failure iteration, …). Service-facing
    /// paths surface this per query instead of panicking the process.
    InvalidDrill(&'static str),
    /// A KV-store coordination step failed mid-simulation (lease or
    /// election state violated an agent's expectation). Carries the
    /// operation name; service-facing paths surface it per query.
    Coordination(&'static str),
}

impl core::fmt::Display for GeminiError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            GeminiError::InvalidPlacement {
                machines,
                replicas,
                reason,
            } => write!(
                f,
                "invalid placement (N={machines}, m={replicas}): {reason}"
            ),
            GeminiError::NotDivisible { machines, replicas } => write!(
                f,
                "group placement needs N divisible by m (N={machines}, m={replicas})"
            ),
            GeminiError::BufferTooLarge {
                requested,
                available,
            } => write!(
                f,
                "reserved buffer {requested} exceeds GPU headroom {available}"
            ),
            GeminiError::GpuOutOfMemory {
                required,
                available,
            } => write!(
                f,
                "GPU out of memory: scheme needs {required}, only {available} free"
            ),
            GeminiError::InvalidPartitionInput(r) => {
                write!(f, "invalid partition input: {r}")
            }
            GeminiError::UnknownRank(r) => write!(f, "unknown rank {r}"),
            GeminiError::Codec(r) => write!(f, "checkpoint codec error: {r}"),
            GeminiError::NoCheckpointAvailable => {
                write!(f, "no checkpoint available in any storage tier")
            }
            GeminiError::Timeout {
                operation,
                attempts,
            } => write!(f, "{operation} timed out after {attempts} attempts"),
            GeminiError::InvalidDrill(r) => write!(f, "invalid drill config: {r}"),
            GeminiError::Coordination(op) => {
                write!(f, "coordination failure during {op}")
            }
        }
    }
}

impl std::error::Error for GeminiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GeminiError::NotDivisible {
            machines: 5,
            replicas: 2,
        };
        assert!(e.to_string().contains("N=5"));
        let e = GeminiError::GpuOutOfMemory {
            required: ByteSize::from_gb(2),
            available: ByteSize::from_mib(800),
        };
        assert!(e.to_string().contains("out of memory"));
    }
}
