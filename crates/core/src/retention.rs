//! Retention policy for the user-managed persistent checkpoint history.
//!
//! GEMINI decouples checkpoint purposes (§2.3.1/§3.1): CPU memory holds
//! only the latest recovery checkpoints, while remote persistent storage
//! accumulates a *history* for transfer learning and model debugging. That
//! history is the reason existing solutions checkpoint rarely — "to reduce
//! the required storage capacity" (§2.2) — so a deployment needs an
//! explicit policy for which persisted iterations to keep.
//!
//! [`RetentionPolicy`] implements the standard two-knob scheme checkpoint
//! managers converge on: keep the most recent `keep_last` checkpoints (for
//! rollback depth) plus every `keep_every`-th one forever (milestones for
//! analysis).

use gemini_net::ByteSize;
use serde::{Deserialize, Serialize};

/// Which persisted checkpoints survive garbage collection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetentionPolicy {
    /// The newest `keep_last` checkpoints are always kept.
    pub keep_last: usize,
    /// Checkpoints whose iteration is a multiple of `keep_every` are kept
    /// forever (0 disables milestone retention).
    pub keep_every: u64,
}

impl Default for RetentionPolicy {
    fn default() -> Self {
        // Rollback depth of 3 plus a milestone every 10 000 iterations —
        // roughly BLOOM's cadence of durable history.
        RetentionPolicy {
            keep_last: 3,
            keep_every: 10_000,
        }
    }
}

impl RetentionPolicy {
    /// Whether a checkpoint at `iteration` is a permanent milestone.
    pub fn is_milestone(&self, iteration: u64) -> bool {
        self.keep_every > 0 && iteration % self.keep_every == 0
    }

    /// Given the persisted iterations in ascending order, returns
    /// `(keep, delete)` — both ascending.
    pub fn partition(&self, persisted: &[u64]) -> (Vec<u64>, Vec<u64>) {
        let recent_floor = persisted
            .len()
            .saturating_sub(self.keep_last.max(1).min(persisted.len()));
        let mut keep = Vec::new();
        let mut delete = Vec::new();
        for (idx, &iter) in persisted.iter().enumerate() {
            if idx >= recent_floor || self.is_milestone(iter) {
                keep.push(iter);
            } else {
                delete.push(iter);
            }
        }
        // keep_last = 0 still keeps the newest checkpoint: deleting the
        // only recovery anchor would be unrecoverable.
        (keep, delete)
    }

    /// Persistent-storage bytes the kept set occupies for checkpoints of
    /// `bytes_each`.
    pub fn retained_bytes(&self, persisted: &[u64], bytes_each: ByteSize) -> ByteSize {
        let (keep, _) = self.partition(persisted);
        bytes_each * keep.len() as u64
    }
}

/// A persisted-checkpoint ledger applying a [`RetentionPolicy`] as new
/// checkpoints land.
#[derive(Clone, Debug, Default)]
pub struct PersistentLedger {
    policy: RetentionPolicy,
    kept: Vec<u64>,
    deleted_total: u64,
}

impl PersistentLedger {
    /// A ledger under `policy`.
    pub fn new(policy: RetentionPolicy) -> PersistentLedger {
        PersistentLedger {
            policy,
            kept: Vec::new(),
            deleted_total: 0,
        }
    }

    /// Records a new persisted checkpoint and garbage-collects; returns the
    /// iterations deleted by this round.
    pub fn persist(&mut self, iteration: u64) -> Vec<u64> {
        self.kept.push(iteration);
        self.kept.sort_unstable();
        self.kept.dedup();
        let (keep, delete) = self.policy.partition(&self.kept);
        self.kept = keep;
        self.deleted_total += delete.len() as u64;
        delete
    }

    /// The currently retained iterations, ascending.
    pub fn kept(&self) -> &[u64] {
        &self.kept
    }

    /// Total checkpoints garbage-collected so far.
    pub fn deleted_total(&self) -> u64 {
        self.deleted_total
    }

    /// The newest retained checkpoint (the recovery fallback anchor).
    pub fn latest(&self) -> Option<u64> {
        self.kept.last().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_recent_and_milestones() {
        let p = RetentionPolicy {
            keep_last: 2,
            keep_every: 100,
        };
        let persisted = [50, 100, 150, 200, 250, 275];
        let (keep, delete) = p.partition(&persisted);
        assert_eq!(keep, vec![100, 200, 250, 275]);
        assert_eq!(delete, vec![50, 150]);
    }

    #[test]
    fn zero_keep_last_still_keeps_the_newest() {
        let p = RetentionPolicy {
            keep_last: 0,
            keep_every: 0,
        };
        let (keep, delete) = p.partition(&[10, 20, 30]);
        assert_eq!(keep, vec![30]);
        assert_eq!(delete, vec![10, 20]);
    }

    #[test]
    fn milestone_disabled_with_zero_interval() {
        let p = RetentionPolicy {
            keep_last: 1,
            keep_every: 0,
        };
        assert!(!p.is_milestone(0));
        let (keep, _) = p.partition(&[100, 200]);
        assert_eq!(keep, vec![200]);
    }

    #[test]
    fn ledger_applies_policy_incrementally() {
        let mut ledger = PersistentLedger::new(RetentionPolicy {
            keep_last: 2,
            keep_every: 1_000,
        });
        let mut all_deleted = Vec::new();
        for iter in (100..=2_500).step_by(200) {
            all_deleted.extend(ledger.persist(iter));
        }
        // Milestones 1000 and 2000 survive beyond the recent window.
        assert!(ledger.kept().contains(&1_000) || !all_deleted.contains(&1_000));
        let kept = ledger.kept();
        assert!(kept.len() <= 4, "kept = {kept:?}");
        assert_eq!(ledger.latest(), Some(2_500));
        assert_eq!(
            ledger.deleted_total() as usize + kept.len(),
            (100..=2_500).step_by(200).count()
        );
    }

    #[test]
    fn retained_bytes_scale_with_kept_count() {
        let p = RetentionPolicy {
            keep_last: 3,
            keep_every: 0,
        };
        let bytes = p.retained_bytes(&[1, 2, 3, 4, 5], ByteSize::from_gb(1_200));
        assert_eq!(bytes, ByteSize::from_gb(3_600));
    }

    #[test]
    fn empty_history_is_fine() {
        let p = RetentionPolicy::default();
        let (keep, delete) = p.partition(&[]);
        assert!(keep.is_empty() && delete.is_empty());
        let ledger = PersistentLedger::new(p);
        assert_eq!(ledger.latest(), None);
    }
}
