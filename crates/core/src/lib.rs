//! GEMINI: fast failure recovery for distributed training with in-memory
//! checkpoints.
//!
//! This crate implements the paper's contribution in full:
//!
//! * **Checkpoint placement to CPU memory** ([`placement`]): the mixed
//!   group/ring placement strategy (Algorithm 1), its optimality theory
//!   (Theorem 1) and the recovery-probability analysis (Corollary 1), with
//!   exact enumeration and Monte Carlo cross-checks.
//! * **Checkpoint traffic scheduling** ([`partition`], [`pipeline`],
//!   [`schedule`]): the checkpoint partition algorithm (Algorithm 2) that
//!   packs chunks into profiled network idle timespans, and the sub-buffer
//!   pipeline that overlaps inter-machine transfers with GPU→CPU copies.
//! * **Hierarchical checkpoint storage** ([`ckpt`], [`codec`]): local CPU
//!   memory, remote CPU memory and remote persistent storage, with the
//!   double-buffer (completed + in-progress) semantics of §7.1 and a real
//!   byte-level checkpoint codec.
//! * **Failure recovery** ([`recovery`], [`agents`], [`timing`],
//!   [`wasted`]): failure classification (§6.1), the recovery planner that
//!   chooses the fastest available tier per machine (§6.2), worker/root
//!   agents coordinating through the distributed KV store (§3.2), and the
//!   wasted-time model of Equation (1).
//!
//! The crate is simulation-agnostic: it consumes idle-span profiles,
//! cost models and health information, and produces placements, schedules
//! and recovery plans. Driving an actual simulated training campaign lives
//! in `gemini-harness`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod agents;
pub mod ckpt;
pub mod codec;
pub mod config;
pub mod error;
pub mod frequency;
pub mod partition;
pub mod pipeline;
pub mod placement;
pub mod policy;
pub mod recovery;
pub mod retention;
pub mod schedule;
pub mod snapshot;
pub mod timing;
pub mod vault;
pub mod wasted;

pub use ckpt::{CheckpointMeta, HierarchicalStore, StorageTier};
pub use config::GeminiConfig;
pub use error::GeminiError;
pub use partition::{Chunk, PartitionInput, PartitionPlan};
pub use placement::expert::{ExpertPlacement, ExpertReplicationGroup};
pub use placement::{Placement, PlacementGroup, PlacementStrategy};
pub use policy::{
    FixedPolicy, ModeSignals, PolicyConfig, PolicyDecisionRecord, PolicyEngine, PolicyKnobs,
    PolicySignals, PolicySpec, PolicyStats, RecoveryMode, SchemeChoice, SchemeSignals,
    TierPreference,
};
pub use recovery::{
    RecoveryCase, RecoveryPlan, RecoveryPlanner, RetrievalSource, ShardMove, ShrinkPlan,
};
pub use retention::{PersistentLedger, RetentionPolicy};
pub use schedule::{CkptSchedule, ScheduleOutcome};
pub use snapshot::{Fork, MemoCache, PlacementSpecKey, RecoveryMemo, Snapshot};
pub use vault::ReplicaVault;
pub use wasted::{WastedLedger, WastedTimeModel};
