//! The sub-buffer checkpoint-transmission pipeline (paper §5.2, Fig. 5).
//!
//! A checkpoint chunk reaches remote CPU memory in two stages: an
//! inter-machine GPU→GPU network transfer into a reserved GPU sub-buffer,
//! then a local GPU→CPU copy that frees the buffer. With a single buffer
//! (`p = 1`) the network must sit idle during every copy (Fig. 5c); with
//! `p ≥ 2` sub-buffers the receiver copies chunk `i` while receiving chunk
//! `i + 1` (Fig. 5d), eliminating the bubbles whenever copy bandwidth keeps
//! up with the network — which the paper measured to be the case on p4d
//! (footnote 2).
//!
//! [`run_pipeline`] computes the exact schedule for a chunk sequence and
//! reports the network-occupancy time (what the chunks *really* cost the
//! NIC, bubbles included), which is what decides whether a checkpoint still
//! fits into the profiled idle timespans.

use gemini_net::{ByteSize, TransferCost};
use gemini_sim::{SimDuration, SimTime, Span, Timeline};
use serde::{Deserialize, Serialize};

/// The computed pipeline schedule for one chunk sequence.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PipelineResult {
    /// Per-chunk network spans (relative to the sequence start).
    pub net_spans: Vec<Span>,
    /// Per-chunk GPU→CPU copy spans.
    pub copy_spans: Vec<Span>,
    /// Time from first network byte to last copied byte.
    pub makespan: SimDuration,
    /// Time the NIC is held by this sequence, bubbles included: from the
    /// first network start to the last network end.
    pub net_occupancy: SimDuration,
    /// NIC idle time trapped between chunk transfers (the "communication
    /// bubbles" of Fig. 5c).
    pub net_bubbles: SimDuration,
}

/// Runs the two-stage pipeline for `chunks`, with `sub_buffers` reception
/// buffers, network cost `net` and GPU→CPU copy cost `copy`.
///
/// # Examples
///
/// ```
/// use gemini_core::pipeline::run_pipeline;
/// use gemini_net::{Bandwidth, ByteSize, TransferCost};
/// use gemini_sim::SimDuration;
///
/// let chunks = vec![ByteSize::from_mib(32); 8];
/// let net = TransferCost::new(
///     SimDuration::from_micros(100),
///     Bandwidth::from_gbytes_per_sec(10.0),
/// );
/// let copy = TransferCost::new(
///     SimDuration::from_micros(10),
///     Bandwidth::from_gbytes_per_sec(10.0),
/// );
/// // One buffer: the NIC stalls during every copy (Fig. 5c)...
/// let single = run_pipeline(&chunks, 1, &net, &copy);
/// assert!(!single.net_bubbles.is_zero());
/// // ...two sub-buffers already hide them (Fig. 5d).
/// let piped = run_pipeline(&chunks, 2, &net, &copy);
/// assert!(piped.net_bubbles.is_zero());
/// ```
pub fn run_pipeline(
    chunks: &[ByteSize],
    sub_buffers: usize,
    net: &TransferCost,
    copy: &TransferCost,
) -> PipelineResult {
    let p = sub_buffers.max(1);
    let mut net_free = SimTime::ZERO;
    let mut copy_free = SimTime::ZERO;
    let mut net_spans = Vec::with_capacity(chunks.len());
    let mut copy_spans: Vec<Span> = Vec::with_capacity(chunks.len());
    for (i, &size) in chunks.iter().enumerate() {
        // The transfer needs a free sub-buffer: buffer `i mod p` is free
        // once the copy of chunk `i - p` finished.
        let buffer_free = if i >= p {
            copy_spans[i - p].end
        } else {
            SimTime::ZERO
        };
        let start = net_free.max(buffer_free);
        let net_span = Span::with_len(start, net.time(size));
        net_free = net_span.end;
        // The copy starts when the chunk has fully arrived and the copy
        // engine is free.
        let copy_start = copy_free.max(net_span.end);
        let copy_span = Span::with_len(copy_start, copy.time(size));
        copy_free = copy_span.end;
        net_spans.push(net_span);
        copy_spans.push(copy_span);
    }
    let makespan = copy_spans
        .last()
        .map(|s| s.end - SimTime::ZERO)
        .unwrap_or(SimDuration::ZERO);
    let net_occupancy = net_spans
        .last()
        .map(|s| s.end - SimTime::ZERO)
        .unwrap_or(SimDuration::ZERO);
    let busy = Timeline::from_spans(net_spans.iter().copied()).total();
    PipelineResult {
        net_spans,
        copy_spans,
        makespan,
        net_occupancy,
        net_bubbles: net_occupancy.saturating_sub(busy),
    }
}

impl PipelineResult {
    /// Reports the pipeline schedule through a telemetry sink: `net` spans
    /// for the transfers, `ckpt` spans for the GPU→CPU copies (both offset
    /// by `base`), plus the NIC-occupancy/bubble gauges that decide whether
    /// a checkpoint interleaves for free.
    pub fn record_telemetry(&self, sink: &gemini_telemetry::TelemetrySink, base: SimTime) {
        if !sink.is_enabled() {
            return;
        }
        for (i, s) in self.net_spans.iter().enumerate() {
            sink.span(
                "net",
                || format!("pipeline recv {i}"),
                base + (s.start - SimTime::ZERO),
                base + (s.end - SimTime::ZERO),
            );
        }
        for (i, s) in self.copy_spans.iter().enumerate() {
            sink.span(
                "ckpt",
                || format!("gpu-cpu copy {i}"),
                base + (s.start - SimTime::ZERO),
                base + (s.end - SimTime::ZERO),
            );
        }
        sink.gauge_set("net.pipeline_occupancy_us", || {
            (self.net_occupancy.as_nanos() / 1_000) as f64
        });
        sink.gauge_set("net.pipeline_bubbles_us", || {
            (self.net_bubbles.as_nanos() / 1_000) as f64
        });
        if !self.net_occupancy.is_zero() {
            sink.gauge_set("net.nic_busy_frac", || {
                1.0 - self.net_bubbles / self.net_occupancy
            });
        }
    }
}

/// The *effective* NIC time per byte for a scheme that serializes network
/// transfer and copy on a single buffer (Fig. 5c): each chunk costs
/// `f_net + f_copy` of NIC occupancy.
pub fn single_buffer_chunk_cost(
    size: ByteSize,
    net: &TransferCost,
    copy: &TransferCost,
) -> SimDuration {
    net.time(size) + copy.time(size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemini_net::Bandwidth;

    fn net() -> TransferCost {
        TransferCost::new(
            SimDuration::from_micros(100),
            Bandwidth::from_gbytes_per_sec(10.0),
        )
    }

    fn copy() -> TransferCost {
        TransferCost::new(
            SimDuration::from_micros(10),
            Bandwidth::from_gbytes_per_sec(10.0),
        )
    }

    fn chunks(n: usize) -> Vec<ByteSize> {
        vec![ByteSize::from_mib(32); n]
    }

    #[test]
    fn empty_sequence_is_free() {
        let r = run_pipeline(&[], 4, &net(), &copy());
        assert_eq!(r.makespan, SimDuration::ZERO);
        assert_eq!(r.net_bubbles, SimDuration::ZERO);
    }

    #[test]
    fn single_buffer_has_bubbles() {
        // p = 1: the network waits for every copy (Fig. 5c).
        let r = run_pipeline(&chunks(10), 1, &net(), &copy());
        assert!(r.net_bubbles > SimDuration::ZERO);
        // Every copy except the last creates one bubble of ≈ f_copy.
        let per_copy = copy().time(ByteSize::from_mib(32)).as_secs_f64();
        let expected = 9.0 * per_copy;
        assert!(
            (r.net_bubbles.as_secs_f64() - expected).abs() < 1e-6,
            "bubbles = {}",
            r.net_bubbles
        );
    }

    #[test]
    fn two_buffers_eliminate_bubbles_when_copy_keeps_up() {
        // Copy bandwidth == network bandwidth (p4d regime, footnote 2):
        // p = 2 already removes all bubbles (Fig. 5d shows two sub-buffers).
        let r = run_pipeline(&chunks(10), 2, &net(), &copy());
        assert_eq!(r.net_bubbles, SimDuration::ZERO);
        // The NIC runs the 10 chunks back-to-back.
        let back_to_back = net().time_n(ByteSize::from_mib(32), 10);
        assert_eq!(r.net_occupancy, back_to_back);
    }

    #[test]
    fn slow_copy_still_bubbles_with_two_buffers_but_less() {
        let slow_copy = TransferCost::new(
            SimDuration::from_micros(10),
            Bandwidth::from_gbytes_per_sec(2.0), // 5× slower than net
        );
        let one = run_pipeline(&chunks(10), 1, &net(), &slow_copy);
        let two = run_pipeline(&chunks(10), 2, &net(), &slow_copy);
        let four = run_pipeline(&chunks(10), 4, &net(), &slow_copy);
        assert!(two.net_bubbles < one.net_bubbles);
        // With copy 5× slower, even many buffers cannot fully hide copies.
        assert!(four.net_bubbles > SimDuration::ZERO);
    }

    #[test]
    fn makespan_orders_sanely() {
        let one = run_pipeline(&chunks(20), 1, &net(), &copy());
        let four = run_pipeline(&chunks(20), 4, &net(), &copy());
        assert!(four.makespan < one.makespan);
        assert!(four.net_occupancy < one.net_occupancy);
    }

    #[test]
    fn copy_follows_its_network_transfer() {
        let r = run_pipeline(&chunks(5), 4, &net(), &copy());
        for (n, c) in r.net_spans.iter().zip(&r.copy_spans) {
            assert!(c.start >= n.end);
        }
    }

    #[test]
    fn copies_are_serial_on_the_engine() {
        let r = run_pipeline(&chunks(8), 4, &net(), &copy());
        for pair in r.copy_spans.windows(2) {
            assert!(pair[1].start >= pair[0].end);
        }
    }

    #[test]
    fn buffer_reuse_respected() {
        let p = 3;
        let r = run_pipeline(&chunks(9), p, &net(), &copy());
        for i in p..9 {
            assert!(
                r.net_spans[i].start >= r.copy_spans[i - p].end,
                "chunk {i} reused a busy buffer"
            );
        }
    }

    #[test]
    fn single_buffer_cost_is_sum() {
        let s = ByteSize::from_mib(32);
        assert_eq!(
            single_buffer_chunk_cost(s, &net(), &copy()),
            net().time(s) + copy().time(s)
        );
    }

    #[test]
    fn zero_buffers_clamps_to_one() {
        let a = run_pipeline(&chunks(4), 0, &net(), &copy());
        let b = run_pipeline(&chunks(4), 1, &net(), &copy());
        assert_eq!(a.makespan, b.makespan);
    }
}
