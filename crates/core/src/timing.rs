//! Checkpoint and retrieval time calculators (Figs. 10–12).
//!
//! These are the *bulk* (non-interleaved) costs: how long a checkpoint or a
//! retrieval takes when it runs undisturbed. The interleaved per-iteration
//! scheduling lives in [`crate::schedule`]; the baselines compare against
//! these bulk numbers.

use crate::ckpt::StorageTier;
use gemini_net::{ByteSize, TransferCost};
use gemini_sim::SimDuration;

/// GEMINI's bulk checkpoint time: every machine simultaneously sends its
/// `m − 1` remote copies point-to-point (pairs are disjoint, so machines
/// do not contend) while the local copy rides the GPU→CPU engine in
/// parallel. The wall time is the max of the two paths.
pub fn gemini_ckpt_time(
    bytes_per_machine: ByteSize,
    replicas: usize,
    net: &TransferCost,
    copy: &TransferCost,
) -> SimDuration {
    let remote = match replicas.saturating_sub(1) as u64 {
        0 => SimDuration::ZERO,
        copies => {
            SimDuration::from_secs_f64(net.time(bytes_per_machine).as_secs_f64() * copies as f64)
        }
    };
    let local = copy.time(bytes_per_machine);
    remote.max(local)
}

/// Baseline checkpoint time to remote persistent storage: the full model
/// state funnels through the storage's fixed aggregate bandwidth, so the
/// time is independent of the machine count (§7.2, Fig. 11's flat
/// baseline).
pub fn persistent_ckpt_time(total_bytes: ByteSize, storage: &TransferCost) -> SimDuration {
    storage.time(total_bytes)
}

/// Retrieval time from a storage tier during failure recovery:
///
/// * `LocalCpu` — load the shard back to GPU memory over the copy engine
///   ("the retrieval time is negligible", Fig. 6b);
/// * `RemoteCpu` — fetch the shard from a peer over the network, then load
///   it ("less than three seconds", §7.2);
/// * `Persistent` — every machine re-reads the full model state through
///   the shared storage pipe (§6.2 Case 2).
pub fn retrieval_time(
    tier: StorageTier,
    bytes_per_machine: ByteSize,
    machines: usize,
    net: &TransferCost,
    copy: &TransferCost,
    storage: &TransferCost,
) -> SimDuration {
    match tier {
        StorageTier::LocalCpu => copy.time(bytes_per_machine),
        StorageTier::RemoteCpu => net.time(bytes_per_machine) + copy.time(bytes_per_machine),
        StorageTier::Persistent => storage.time(bytes_per_machine * machines.max(1) as u64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemini_cluster::{catalog::fsx_storage_cost, InstanceType};

    #[test]
    fn gemini_ckpt_under_3s_on_p4d() {
        // 75 GB per machine at 320 Gbps effective ≈ 1.9 s (§7.2: < 3 s).
        let inst = InstanceType::p4d();
        let t = gemini_ckpt_time(
            ByteSize::from_gb(75),
            2,
            &inst.ckpt_net_cost(),
            &inst.copy_cost(),
        );
        let s = t.as_secs_f64();
        assert!((1.0..3.0).contains(&s), "t = {s:.2}s");
    }

    #[test]
    fn baseline_ckpt_independent_of_machines() {
        // 1.2 TB at 20 Gbps ≈ 8 min regardless of N (Fig. 11 baselines).
        let storage = fsx_storage_cost();
        let t = persistent_ckpt_time(ByteSize::from_gb(1_200), &storage);
        let mins = t.as_secs_f64() / 60.0;
        assert!((mins - 8.0).abs() < 0.1, "t = {mins:.1} min");
    }

    #[test]
    fn ckpt_time_reduction_matches_fig11_shape() {
        // Fig. 11: ≈65× reduction at 100 Gbps and >250× at 400 Gbps with
        // 16 instances.
        let total = ByteSize::from_gb(1_200);
        let per_machine = total / 16;
        let storage = fsx_storage_cost();
        let baseline = persistent_ckpt_time(total, &storage).as_secs_f64();
        for (inst, lo, hi) in [
            (InstanceType::p3dn(), 50.0, 90.0),  // 100 Gbps
            (InstanceType::p4d(), 200.0, 330.0), // 400 Gbps
        ] {
            let g = gemini_ckpt_time(per_machine, 2, &inst.ckpt_net_cost(), &inst.copy_cost())
                .as_secs_f64();
            let reduction = baseline / g;
            assert!(
                (lo..hi).contains(&reduction),
                "{}: reduction = {reduction:.0}x",
                inst.name
            );
        }
    }

    #[test]
    fn single_replica_is_copy_bound() {
        let inst = InstanceType::p4d();
        let t = gemini_ckpt_time(
            ByteSize::from_gb(75),
            1,
            &inst.ckpt_net_cost(),
            &inst.copy_cost(),
        );
        assert_eq!(t, inst.copy_cost().time(ByteSize::from_gb(75)));
    }

    #[test]
    fn retrieval_ladder_is_monotone() {
        // Local < remote CPU ≪ persistent.
        let inst = InstanceType::p4d();
        let storage = fsx_storage_cost();
        let args = (
            ByteSize::from_gb(75),
            16usize,
            inst.ckpt_net_cost(),
            inst.copy_cost(),
            storage,
        );
        let local = retrieval_time(
            StorageTier::LocalCpu,
            args.0,
            args.1,
            &args.2,
            &args.3,
            &args.4,
        );
        let remote = retrieval_time(
            StorageTier::RemoteCpu,
            args.0,
            args.1,
            &args.2,
            &args.3,
            &args.4,
        );
        let persist = retrieval_time(
            StorageTier::Persistent,
            args.0,
            args.1,
            &args.2,
            &args.3,
            &args.4,
        );
        assert!(local < remote);
        assert!(remote < persist);
        // Remote-CPU retrieval is the paper's "less than three seconds"
        // plus the reload copy.
        assert!(remote.as_secs_f64() < 5.0, "remote = {remote}");
        // Persistent is ≈ 8 minutes.
        assert!((persist.as_secs_f64() / 60.0 - 8.0).abs() < 0.5);
    }
}
