//! Online fault-tolerance policy engine (the runtime-control layer).
//!
//! GEMINI as published fixes its checkpoint frequency, placement group
//! size and retrieval tier at launch; §5.3 already concedes the need to
//! adapt the frequency when the idle spans cannot absorb a checkpoint.
//! This module closes the loop: a [`PolicyEngine`] consumes runtime
//! signals the stack already produces — confirmed-failure rate and
//! correlation structure (chaos/agents), idle-span budget
//! (timeline/schedule), replica health (vault/recovery) — and re-plans
//!
//! * the **checkpoint cadence** (commit every `k` iterations, via the
//!   Young–Daly rule when checkpoints carry visible overhead),
//! * the **persistent-checkpoint interval** (risk-scaled by the rate of
//!   *correlated* failures, the only kind CPU replication cannot absorb),
//! * the **retrieval-tier preference** (local/remote CPU first vs
//!   persistent first, by total-cost comparison including rollback), and
//! * the **placement group size** `m` (raised under sustained correlated
//!   loss; applied by the runtime at safe boundaries only),
//!
//! at iteration boundaries, with **hysteresis** so a single chaos blip
//! never flaps a decision: a changed target must be re-proposed for
//! [`PolicyConfig::hysteresis_streak`] consecutive evaluations *and*
//! survive a cooldown since the last applied change before it takes
//! effect.
//!
//! Everything is pure arithmetic over the sampled [`PolicySignals`], so
//! decisions are byte-reproducible across reruns and `--jobs` counts.

use gemini_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Which storage tier the recovery planner should try first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TierPreference {
    /// The paper's hierarchy: local CPU, then remote CPU, then persistent.
    CpuFirst,
    /// Go straight to persistent storage (chosen when degraded networks
    /// make remote-CPU retrieval costlier than a fresh persistent anchor).
    PersistentFirst,
}

impl TierPreference {
    /// Stable label for telemetry and reports.
    pub fn label(self) -> &'static str {
        match self {
            TierPreference::CpuFirst => "cpu_first",
            TierPreference::PersistentFirst => "persistent_first",
        }
    }
}

/// What the runtime does when a hardware failure leaves the job short of
/// machines. GEMINI as published only *waits*: training blocks until a
/// replacement machine joins and replays the checkpoint. The two elastic
/// alternatives trade that stall against throughput or memory:
///
/// * [`RecoveryMode::Shrink`] — repartition the lost machines' shards
///   across the survivors and resume degraded immediately (see
///   `recovery::plan_shrink`), betting that running at `(N−f)/N` speed
///   beats idling at zero while the provider finds capacity.
/// * [`RecoveryMode::StepUp`] — pre-position one extra checkpoint
///   replica (`m + 1`) so a failed machine's state is still fully
///   replicated and recovery never waits; paid for continuously in CPU
///   memory and per-commit traffic, not per failure.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RecoveryMode {
    /// Block on a replacement machine (the paper's behaviour).
    #[default]
    Wait,
    /// Repartition shards across survivors and continue degraded.
    Shrink,
    /// Keep an extra replica hot so recovery never blocks on capacity.
    StepUp,
}

impl RecoveryMode {
    /// Stable label for telemetry, reports and the service wire format.
    pub fn label(self) -> &'static str {
        match self {
            RecoveryMode::Wait => "wait",
            RecoveryMode::Shrink => "shrink",
            RecoveryMode::StepUp => "step_up",
        }
    }

    /// Parses the wire-format label back (the service query layer's
    /// inverse of [`RecoveryMode::label`]).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "wait" => Some(RecoveryMode::Wait),
            "shrink" => Some(RecoveryMode::Shrink),
            "step_up" => Some(RecoveryMode::StepUp),
            _ => None,
        }
    }

    /// Every mode, in comparator-column order.
    pub const ALL: [RecoveryMode; 3] =
        [RecoveryMode::Wait, RecoveryMode::Shrink, RecoveryMode::StepUp];
}

/// Which fault-tolerance *scheme* protects the job. The paper's own
/// scheme is [`SchemeChoice::CpuInterleaved`]; the other three model the
/// published competitors (see `gemini_baselines::competing`) so the
/// engine can switch between them at iteration boundaries,
/// Chameleon-style.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchemeChoice {
    /// GEMINI: CPU-memory checkpoints with traffic interleaving (§4).
    CpuInterleaved,
    /// Checkmate-style gradient replication piggybacked on the all-reduce:
    /// every iteration is recoverable, priced as extra fabric time per
    /// iteration instead of per-checkpoint overhead.
    GradientReplicate,
    /// TierCheck-style GPU-memory checkpoint tier above CPU memory:
    /// software failures restore from device memory, hardware failures
    /// fall back to the CPU tiers. Feasible only when the shard fits in
    /// GPU headroom.
    GpuTier,
    /// REFT-style hybrid-parallel sharding: each machine's checkpoint is
    /// scattered across the group, so a replacement re-assembles it
    /// fan-in from many peers instead of one.
    ShardedHybrid,
}

impl SchemeChoice {
    /// Stable label for telemetry and reports.
    pub fn label(self) -> &'static str {
        match self {
            SchemeChoice::CpuInterleaved => "cpu_interleaved",
            SchemeChoice::GradientReplicate => "gradient_replicate",
            SchemeChoice::GpuTier => "gpu_tier",
            SchemeChoice::ShardedHybrid => "sharded_hybrid",
        }
    }
}

/// Scheme-pricing signals sampled once from the cluster/model spec (they
/// are capacity facts, not runtime state). The default is "no competitor
/// is feasible", which makes the engine keep the paper's scheme — so
/// callers that never price competitors are unaffected.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SchemeSignals {
    /// Gradient replication fits the fabric/capacity budget.
    pub gradient_feasible: bool,
    /// Extra per-iteration fabric time gradient replication costs.
    pub gradient_overhead: SimDuration,
    /// The checkpoint shard fits in GPU memory headroom.
    pub gpu_feasible: bool,
    /// Retrieval time from the GPU tier (device-local, degrade-immune).
    pub gpu_retrieval: SimDuration,
    /// Sharded re-assembly is supported by the placement.
    pub sharded_feasible: bool,
    /// Extra per-commit scatter time sharding costs.
    pub sharded_overhead: SimDuration,
    /// Multiplier (< 1) sharded fan-in applies to remote-CPU retrieval.
    pub sharded_factor: f64,
    /// The healthy (undegraded) remote retrieval time — the
    /// ingress-bound floor fan-in cannot beat: with a healthy fabric the
    /// replacement machine's own NIC is the bottleneck, so parallel
    /// senders buy nothing; fan-in only claws back per-link degradation
    /// above this floor. `ZERO` (the default) disables the floor.
    pub remote_baseline: SimDuration,
}

impl Default for SchemeSignals {
    fn default() -> Self {
        SchemeSignals {
            gradient_feasible: false,
            gradient_overhead: SimDuration::ZERO,
            gpu_feasible: false,
            gpu_retrieval: SimDuration::ZERO,
            sharded_feasible: false,
            sharded_overhead: SimDuration::ZERO,
            sharded_factor: 1.0,
            remote_baseline: SimDuration::ZERO,
        }
    }
}

/// Recovery-mode pricing signals. Like [`SchemeSignals`] these are mostly
/// capacity facts (can the survivors hold the repartitioned shards? is
/// there memory headroom for an extra replica?) plus the one genuinely
/// runtime quantity: the expected replacement-provisioning wait, which is
/// what spot-market preemption storms inflate. The default prices every
/// alternative out, so callers that never think about elasticity keep the
/// paper's wait-for-replacement behaviour.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ModeSignals {
    /// Expected wait for a replacement machine to join (provisioning
    /// time; hours on an exhausted spot pool, minutes on-demand).
    pub replacement_wait: SimDuration,
    /// The survivors can absorb the lost shards within the placement's
    /// memory tolerance (a shrink plan exists).
    pub shrink_feasible: bool,
    /// Time to execute the shrink plan (re-replicate orphaned shards and
    /// rebalance ranks across survivors).
    pub repartition_time: SimDuration,
    /// Fraction of throughput lost while running shrunk (≈ `f / N` under
    /// linear scaling).
    pub degraded_frac: f64,
    /// CPU memory headroom exists for an `m + 1`-th replica.
    pub step_up_feasible: bool,
    /// Extra per-commit checkpoint traffic the `m + 1`-th replica costs.
    pub step_up_overhead: SimDuration,
}

impl Default for ModeSignals {
    fn default() -> Self {
        ModeSignals {
            replacement_wait: SimDuration::ZERO,
            shrink_feasible: false,
            repartition_time: SimDuration::ZERO,
            degraded_frac: 0.0,
            step_up_feasible: false,
            step_up_overhead: SimDuration::ZERO,
        }
    }
}

/// The knobs a policy controls. This is both the engine's *active* state
/// and the shape of a fixed (non-adaptive) comparator policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolicyKnobs {
    /// Commit an in-memory checkpoint every `k` iterations (`k ≥ 1`).
    pub ckpt_every_iters: u64,
    /// Interval between persistent-storage checkpoints; `None` disables
    /// persistence entirely (pure in-memory protection).
    pub persist_interval: Option<SimDuration>,
    /// Placement-group replica count `m` the policy wants in force.
    pub replicas: usize,
    /// Retrieval-tier preference for the next recovery.
    pub tier: TierPreference,
    /// The fault-tolerance scheme in force.
    pub scheme: SchemeChoice,
    /// What to do when a hardware failure leaves the job short of machines.
    pub mode: RecoveryMode,
}

impl PolicyKnobs {
    /// The paper's defaults: checkpoint every iteration, persist every
    /// three hours (§7.1), `m = 2`, CPU tiers first, interleaved
    /// CPU-memory checkpointing.
    pub fn paper_default() -> Self {
        PolicyKnobs {
            ckpt_every_iters: 1,
            persist_interval: Some(SimDuration::from_hours(3)),
            replicas: 2,
            tier: TierPreference::CpuFirst,
            scheme: SchemeChoice::CpuInterleaved,
            mode: RecoveryMode::Wait,
        }
    }

    /// The paper's defaults with the recovery mode overridden — the shape
    /// of the fixed `mode_*` comparator policies.
    pub fn with_mode(mode: RecoveryMode) -> Self {
        PolicyKnobs {
            mode,
            ..PolicyKnobs::paper_default()
        }
    }
}

/// A fixed comparator policy: the knobs never move, whatever the runtime
/// observes. The baseline catalog lives in `gemini_baselines::schemes`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FixedPolicy {
    /// Stable name for reports and telemetry labels.
    pub name: &'static str,
    /// The frozen knobs.
    pub knobs: PolicyKnobs,
}

/// What drives the fault-tolerance knobs of a run.
#[derive(Clone, Debug, PartialEq)]
pub enum PolicySpec {
    /// Knobs frozen at launch (the published GEMINI behaviour and every
    /// baseline scheme).
    Fixed(FixedPolicy),
    /// Online adaptation through a [`PolicyEngine`].
    Adaptive(PolicyConfig),
}

impl PolicySpec {
    /// The adaptive spec with default tuning.
    pub fn adaptive() -> Self {
        PolicySpec::Adaptive(PolicyConfig::default())
    }

    /// Stable name for reports (`adaptive` or the fixed policy's name).
    pub fn name(&self) -> &'static str {
        match self {
            PolicySpec::Fixed(f) => f.name,
            PolicySpec::Adaptive(_) => "adaptive",
        }
    }
}

/// Tuning of the adaptive engine. Defaults are deliberately conservative:
/// the engine must *earn* a knob change with a sustained signal.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PolicyConfig {
    /// Half-life of the failure-rate EWMA estimators. Older failures decay
    /// by `2^(−Δt/halflife)`.
    pub halflife: SimDuration,
    /// A changed target must be proposed for this many *consecutive*
    /// evaluations before it is applied (hysteresis). A blip shorter than
    /// the streak can never change the active policy.
    pub hysteresis_streak: u32,
    /// Minimum time between two applied changes.
    pub cooldown: SimDuration,
    /// Absolute floor for the persistent interval (on top of the physical
    /// floor, the upload time itself).
    pub min_persist_interval: SimDuration,
    /// Ceiling for the persistent interval (the paper's 3 h default).
    pub max_persist_interval: SimDuration,
    /// Correlated failures per hour above which the engine asks for one
    /// more replica (`m + 1`).
    pub corr_rate_for_extra_replica: f64,
    /// Upper bound on `m` the engine may request.
    pub max_replicas: usize,
    /// Persistent retrieval (incl. rollback loss) must be cheaper than
    /// CPU retrieval by this factor before the tier preference flips.
    pub tier_margin: f64,
    /// Cadence used while no failure has ever been observed and
    /// checkpoints carry visible overhead.
    pub fallback_every_iters: u64,
    /// Hard cap on the cadence (`k ≤ cap`), so Young–Daly under a tiny
    /// failure rate cannot starve commit freshness entirely.
    pub max_every_iters: u64,
    /// Quantum the persist-interval target is rounded to. Without
    /// rounding, the Young–Daly interval would drift a few milliseconds
    /// per evaluation as the EWMA decays, no two consecutive proposals
    /// would ever compare equal, and the hysteresis streak could never
    /// complete.
    pub persist_quantum: SimDuration,
    /// Master switch for the scheme dimension. Off, the engine never
    /// proposes a scheme other than the active one.
    pub scheme_switching: bool,
    /// A competitor's expected wasted-time rate must beat the active
    /// scheme's by this factor before a switch is proposed.
    pub scheme_margin: f64,
    /// Failure-rate prior (per hour) used as a floor when pricing
    /// schemes, so a quiet trace with a degraded network can still
    /// pre-position on the cheaper recovery path before the first loss.
    pub scheme_rate_prior_per_hour: f64,
    /// Absolute wasted-rate gain (seconds wasted per second of wall
    /// time) a switch must clear on top of the relative margin.
    pub scheme_min_gain: f64,
    /// Master switch for the recovery-mode dimension. Off, the engine
    /// never proposes a mode other than the active one.
    pub mode_switching: bool,
    /// A competing recovery mode's expected wasted-time rate must beat
    /// the active mode's by this factor before a switch is proposed.
    pub mode_margin: f64,
    /// Absolute wasted-rate gain a mode switch must clear on top of the
    /// relative margin.
    pub mode_min_gain: f64,
    /// Horizon a shrink's throughput degradation is charged over: the
    /// expected time the job runs shrunk before a replacement restores
    /// full width (the shrink executor re-expands when capacity returns).
    pub shrink_amortization: SimDuration,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        PolicyConfig {
            halflife: SimDuration::from_hours(1),
            hysteresis_streak: 3,
            cooldown: SimDuration::from_mins(10),
            min_persist_interval: SimDuration::from_mins(10),
            max_persist_interval: SimDuration::from_hours(3),
            corr_rate_for_extra_replica: 0.5,
            max_replicas: 4,
            tier_margin: 1.25,
            fallback_every_iters: 1,
            max_every_iters: 64,
            persist_quantum: SimDuration::from_mins(1),
            scheme_switching: true,
            scheme_margin: 1.25,
            scheme_rate_prior_per_hour: 1.0,
            scheme_min_gain: 1e-3,
            mode_switching: true,
            mode_margin: 1.25,
            mode_min_gain: 1e-3,
            shrink_amortization: SimDuration::from_hours(1),
        }
    }
}

/// Runtime signals sampled at one iteration boundary. Every field is
/// already produced somewhere in the stack; the engine only reads.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PolicySignals {
    /// Simulated time of the boundary.
    pub now: SimTime,
    /// Last *committed* (in-memory durable) iteration.
    pub committed: u64,
    /// Profiled iteration time (timeline).
    pub iteration_time: SimDuration,
    /// Per-checkpoint overhead visible to training after the idle spans
    /// absorbed what they could (`ScheduleOutcome`): zero when the
    /// checkpoint hides entirely in idle time.
    pub ckpt_overhead: SimDuration,
    /// Estimated remote-CPU retrieval time *at the current network
    /// degrade factor* (recovery planner + NIC health).
    pub retrieval_remote: SimDuration,
    /// Estimated persistent-storage retrieval time.
    pub retrieval_persistent: SimDuration,
    /// Time a full-model persistent upload takes (physical floor of the
    /// persist interval).
    pub persist_upload: SimDuration,
    /// Iteration of the newest durable persistent checkpoint, if any.
    pub persist_anchor: Option<u64>,
    /// Healthy machines right now (vault / health scan).
    pub healthy_machines: usize,
    /// Total machines in the job.
    pub machines: usize,
    /// Scheme-pricing capacity facts (defaults = no competitor feasible).
    pub scheme: SchemeSignals,
    /// Recovery-mode pricing facts (defaults = only waiting is feasible).
    pub mode: ModeSignals,
}

impl PolicySignals {
    /// Freezes the signals into the telemetry-layer mirror attached to
    /// flight-recorder `PolicyDecision` events, so postmortems can show
    /// exactly what the engine saw when the knobs moved.
    pub fn snapshot(&self) -> gemini_telemetry::PolicySignalsSnapshot {
        gemini_telemetry::PolicySignalsSnapshot {
            committed: self.committed,
            iteration_time: self.iteration_time,
            ckpt_overhead: self.ckpt_overhead,
            retrieval_remote: self.retrieval_remote,
            retrieval_persistent: self.retrieval_persistent,
            persist_upload: self.persist_upload,
            persist_anchor: self.persist_anchor,
            healthy_machines: self.healthy_machines as u64,
            machines: self.machines as u64,
        }
    }
}

/// One applied decision, for telemetry and reports.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PolicyDecisionRecord {
    /// When the change took effect.
    pub at: SimTime,
    /// The knobs now in force.
    pub knobs: PolicyKnobs,
    /// Human-readable why (stable across reruns).
    pub reason: String,
    /// All-failure rate estimate at decision time (per hour).
    pub failure_rate_per_hour: f64,
    /// Correlated-failure rate estimate at decision time (per hour).
    pub correlated_rate_per_hour: f64,
}

/// Exponentially-weighted point-process rate estimator: each event adds
/// `ln 2 / halflife` and the whole estimate decays by `2^(−Δt/halflife)`,
/// so a steady Poisson stream of intensity `λ` converges to exactly `λ`.
#[derive(Clone, Debug, PartialEq)]
struct RateEstimator {
    halflife_secs: f64,
    rate_per_sec: f64,
    last: SimTime,
}

impl RateEstimator {
    fn new(halflife: SimDuration) -> Self {
        RateEstimator {
            halflife_secs: halflife.as_secs_f64().max(1.0),
            rate_per_sec: 0.0,
            last: SimTime::ZERO,
        }
    }

    fn decay_to(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last).as_secs_f64();
        if dt > 0.0 {
            self.rate_per_sec *= 0.5_f64.powf(dt / self.halflife_secs);
            self.last = now;
        }
    }

    fn observe(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last).as_secs_f64();
        self.decay_to(now);
        // Credit the event as if it were smeared over the gap since the
        // previous observation rather than as a point mass at the sample
        // instant: a raw `+= ln2/h` biases a periodic stream upward by
        // ≈ ln2·Δ/(2h) (≈ 5.8% at Δ = 600 s, halflife 1 h) because the
        // estimate is always read right after an increment. Discounting
        // by half the gap's decay cancels the bias to O((Δ/h)²).
        self.rate_per_sec += std::f64::consts::LN_2 / self.halflife_secs
            * 0.5_f64.powf(dt / (2.0 * self.halflife_secs));
    }

    fn per_sec(&mut self, now: SimTime) -> f64 {
        self.decay_to(now);
        self.rate_per_sec
    }
}

/// Aggregate statistics of an engine's lifetime (for reports).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolicyStats {
    /// Evaluations run (iteration boundaries sampled).
    pub evaluations: u64,
    /// Evaluations whose target differed from the active knobs.
    pub proposals: u64,
    /// Proposals that survived hysteresis and were applied.
    pub applied: u64,
    /// Proposals cancelled because the target reverted before the streak
    /// completed (blips absorbed by hysteresis).
    pub blips_absorbed: u64,
}

/// The online policy engine. Feed it failures as they are *confirmed*
/// (post-detection-streak, so KV blackouts don't count) and call
/// [`PolicyEngine::evaluate`] at iteration boundaries.
#[derive(Clone, Debug)]
pub struct PolicyEngine {
    cfg: PolicyConfig,
    active: PolicyKnobs,
    initial_replicas: usize,
    all: RateEstimator,
    correlated: RateEstimator,
    software: RateEstimator,
    pending: Option<(PolicyKnobs, u32)>,
    last_applied: Option<SimTime>,
    stats: PolicyStats,
    decisions: Vec<PolicyDecisionRecord>,
}

impl PolicyEngine {
    /// Creates an engine starting from `initial` knobs.
    pub fn new(cfg: PolicyConfig, initial: PolicyKnobs) -> Self {
        PolicyEngine {
            all: RateEstimator::new(cfg.halflife),
            correlated: RateEstimator::new(cfg.halflife),
            software: RateEstimator::new(cfg.halflife),
            cfg,
            active: initial,
            initial_replicas: initial.replicas,
            pending: None,
            last_applied: None,
            stats: PolicyStats::default(),
            decisions: Vec::new(),
        }
    }

    /// The knobs currently in force.
    pub fn active(&self) -> PolicyKnobs {
        self.active
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> PolicyStats {
        self.stats
    }

    /// Every applied decision, in order.
    pub fn decisions(&self) -> &[PolicyDecisionRecord] {
        &self.decisions
    }

    /// Records a *confirmed* failure. `correlated` marks failures that
    /// took down a whole placement group (or otherwise defeat CPU
    /// replication) — the only kind the persistent tier protects against.
    /// `software` marks failures that leave the machine (and its device
    /// memory) intact — the only kind a GPU-tier checkpoint survives.
    pub fn observe_failure(&mut self, now: SimTime, correlated: bool, software: bool) {
        self.all.observe(now);
        if correlated {
            self.correlated.observe(now);
        }
        if software {
            self.software.observe(now);
        }
    }

    /// All-failure rate estimate, per hour.
    pub fn failure_rate_per_hour(&mut self, now: SimTime) -> f64 {
        self.all.per_sec(now) * 3_600.0
    }

    /// Correlated-failure rate estimate, per hour.
    pub fn correlated_rate_per_hour(&mut self, now: SimTime) -> f64 {
        self.correlated.per_sec(now) * 3_600.0
    }

    /// The target knobs the current signals ask for, before hysteresis.
    /// Exposed for tests; [`PolicyEngine::evaluate`] is the real entry.
    pub fn target(&mut self, s: &PolicySignals) -> PolicyKnobs {
        let lam_all = self.all.per_sec(s.now);
        let lam_corr = self.correlated.per_sec(s.now);
        let lam_sw = self.software.per_sec(s.now);
        let cadence = self.target_cadence(s, lam_all);
        // Scheme first: the tier rule judges the persistent override
        // against the remote path the *chosen* scheme actually pays.
        let scheme = self.target_scheme(s, cadence, lam_all, lam_corr, lam_sw);
        // Mode next: the replica target folds StepUp's pre-positioned
        // extra replica in on top of the correlated-rate bump.
        let mode = self.target_mode(s, cadence, lam_all);
        PolicyKnobs {
            ckpt_every_iters: cadence,
            persist_interval: Some(self.target_persist(s, lam_corr)),
            replicas: self.target_replicas(lam_corr * 3_600.0, mode),
            tier: self.target_tier(s, scheme),
            scheme,
            mode,
        }
    }

    /// Cadence: free checkpoints (no visible overhead) always commit every
    /// iteration. With overhead, the Young–Daly rule `T_opt =
    /// √(2·overhead/λ)` balances checkpoint cost against expected rework.
    fn target_cadence(&self, s: &PolicySignals, lam_all: f64) -> u64 {
        let overhead = s.ckpt_overhead.as_secs_f64();
        if overhead <= f64::EPSILON {
            return 1;
        }
        if lam_all <= 1e-12 {
            return self.cfg.fallback_every_iters.max(1);
        }
        let t_iter = s.iteration_time.as_secs_f64().max(1e-9);
        let opt_interval = (2.0 * overhead / lam_all).sqrt();
        let k = (opt_interval / t_iter).round() as u64;
        k.clamp(1, self.cfg.max_every_iters.max(1))
    }

    /// Persist interval: Young–Daly against the *correlated* failure rate
    /// (CPU replication absorbs everything else), floored by the physical
    /// upload time and the configured minimum, capped at the paper's 3 h.
    fn target_persist(&self, s: &PolicySignals, lam_corr: f64) -> SimDuration {
        let floor = s.persist_upload.max(self.cfg.min_persist_interval);
        let cap = self.cfg.max_persist_interval.max(floor);
        if lam_corr <= 1e-12 {
            return cap;
        }
        let cost = s.persist_upload.as_secs_f64().max(1.0);
        let opt = (2.0 * cost / lam_corr).sqrt();
        // Quantize so the slow EWMA decay between evaluations cannot keep
        // producing not-quite-equal targets that reset the hysteresis
        // streak forever.
        let q = self.cfg.persist_quantum.as_secs_f64().max(1.0);
        let opt = (opt / q).round().max(1.0) * q;
        SimDuration::from_secs_f64(opt).clamp_range(floor, cap)
    }

    /// Replicas: one extra above the launch `m` while the correlated rate
    /// stays above the configured threshold; decays back when it subsides.
    /// [`RecoveryMode::StepUp`] pre-positions one more on top — that extra
    /// replica *is* the mode's mechanism, so the two bumps stack (capped).
    fn target_replicas(&self, corr_per_hour: f64, mode: RecoveryMode) -> usize {
        let mut m = self.initial_replicas;
        if mode == RecoveryMode::StepUp {
            m += 1;
        }
        if corr_per_hour >= self.cfg.corr_rate_for_extra_replica {
            m += 1;
        }
        m.min(self.cfg.max_replicas)
    }

    /// Recovery mode: price each feasible mode's expected wasted-time rate
    /// from the same signals the scheme comparison uses, and keep the
    /// active mode unless a competitor clears the margin and gain floor.
    ///
    /// * **Wait** pays `replacement_wait + retrieval` per failure — the
    ///   paper's behaviour, and the only feasible mode by default.
    /// * **Shrink** pays `repartition + retrieval` per failure plus the
    ///   throughput lost while running shrunk, charged over the
    ///   [`PolicyConfig::shrink_amortization`] horizon. The failure rate
    ///   cancels in the Wait-vs-Shrink comparison, so what actually flips
    ///   the mode is `replacement_wait` blowing past the degradation cost
    ///   — exactly what a spot-capacity crunch does.
    /// * **StepUp** pays the extra replica's commit traffic continuously
    ///   (per wall-second, like a scheme overhead) but recovers at pure
    ///   retrieval speed with no wait; the rate prior keeps it priceable
    ///   on a quiet trace.
    fn target_mode(&self, s: &PolicySignals, cadence: u64, lam_all: f64) -> RecoveryMode {
        if !self.cfg.mode_switching {
            return self.active.mode;
        }
        let m = s.mode;
        let t_iter = s.iteration_time.as_secs_f64().max(1e-9);
        let lam_eff = lam_all.max(self.cfg.scheme_rate_prior_per_hour / 3_600.0);
        let retr = s.retrieval_remote.as_secs_f64();
        let kf = cadence.max(1) as f64;

        let mut candidates = vec![(
            RecoveryMode::Wait,
            lam_eff * (m.replacement_wait.as_secs_f64() + retr),
        )];
        if m.shrink_feasible {
            let degraded =
                m.degraded_frac.clamp(0.0, 1.0) * self.cfg.shrink_amortization.as_secs_f64();
            candidates.push((
                RecoveryMode::Shrink,
                lam_eff * (m.repartition_time.as_secs_f64() + retr + degraded),
            ));
        }
        if m.step_up_feasible {
            candidates.push((
                RecoveryMode::StepUp,
                m.step_up_overhead.as_secs_f64() / (kf * t_iter) + lam_eff * retr,
            ));
        }

        let (best, best_cost) = candidates
            .iter()
            .copied()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("wait is always a candidate");
        match candidates
            .iter()
            .find(|(c, _)| *c == self.active.mode)
            .map(|&(_, cost)| cost)
        {
            // Active mode no longer feasible → take the best candidate.
            None => best,
            Some(active_cost) => {
                if best_cost * self.cfg.mode_margin < active_cost
                    && active_cost - best_cost > self.cfg.mode_min_gain
                {
                    best
                } else {
                    self.active.mode
                }
            }
        }
    }

    /// Tier: persistent-first only when a durable anchor exists and its
    /// total cost (retrieval + rollback rework) beats degraded remote-CPU
    /// retrieval by the configured margin. The remote side is priced
    /// under the scheme being proposed: a fan-in scheme shrinks the
    /// degraded remote path, and overriding to a persistent rollback
    /// that the sharded retrieval would have beaten wastes the rework.
    fn target_tier(&self, s: &PolicySignals, scheme: SchemeChoice) -> TierPreference {
        let Some(anchor) = s.persist_anchor else {
            return TierPreference::CpuFirst;
        };
        let rollback = s.committed.saturating_sub(anchor) as f64
            * s.iteration_time.as_secs_f64();
        let persistent_total = s.retrieval_persistent.as_secs_f64() + rollback;
        let mut cpu_total = s.retrieval_remote.as_secs_f64();
        if scheme == SchemeChoice::ShardedHybrid && s.scheme.sharded_feasible {
            let f = s.scheme.sharded_factor.clamp(0.0, 1.0);
            cpu_total = (cpu_total * f)
                .max(s.scheme.remote_baseline.as_secs_f64())
                .min(cpu_total);
        }
        if persistent_total * self.cfg.tier_margin < cpu_total {
            TierPreference::PersistentFirst
        } else {
            TierPreference::CpuFirst
        }
    }

    /// Scheme: price each *feasible* scheme's expected wasted-time rate
    /// (seconds wasted per second of wall time) from the same signals and
    /// keep the active one unless a competitor clears both the relative
    /// margin and the absolute gain floor. An infeasible active scheme
    /// falls straight to the cheapest candidate. The paper's scheme is
    /// always a candidate, so the engine can never strand itself.
    ///
    /// Cost model, mirroring the chaos executor's accounting:
    /// * overhead rate — visible checkpoint overhead per wall-second
    ///   (per-commit for checkpoint schemes, per-iteration for gradient
    ///   replication),
    /// * expected rework — `t_iter·(k−1)/2` at cadence `k` (zero when
    ///   every iteration is recoverable), and
    /// * expected retrieval — the scheme's recovery path, with the
    ///   failure-mix shares (software / correlated) blending the paths a
    ///   scheme only improves for some failure kinds.
    fn target_scheme(
        &self,
        s: &PolicySignals,
        cadence: u64,
        lam_all: f64,
        lam_corr: f64,
        lam_sw: f64,
    ) -> SchemeChoice {
        if !self.cfg.scheme_switching {
            return self.active.scheme;
        }
        let sc = s.scheme;
        let t_iter = s.iteration_time.as_secs_f64().max(1e-9);
        // The rate prior keeps the pricing meaningful on a quiet trace:
        // with zero observed failures every failure-dependent term would
        // vanish and no retrieval-path advantage could ever register.
        let lam_eff = lam_all.max(self.cfg.scheme_rate_prior_per_hour / 3_600.0);
        let corr_share = if lam_all > 1e-12 {
            (lam_corr / lam_all).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let sw_share = if lam_all > 1e-12 {
            (lam_sw / lam_all).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let kf = cadence.max(1) as f64;
        let rework = t_iter * (kf - 1.0) / 2.0;
        let ovh_rate = s.ckpt_overhead.as_secs_f64() / (kf * t_iter);
        let retr = s.retrieval_remote.as_secs_f64();

        let mut candidates = vec![(
            SchemeChoice::CpuInterleaved,
            ovh_rate + lam_eff * (rework + retr),
        )];
        if sc.gradient_feasible {
            // Recoverable every iteration (no rework), but the fabric
            // tax is paid every iteration, commit cadence or not.
            candidates.push((
                SchemeChoice::GradientReplicate,
                sc.gradient_overhead.as_secs_f64() / t_iter + lam_eff * retr,
            ));
        }
        if sc.gpu_feasible {
            // Software failures restore from device memory; hardware
            // failures still walk the CPU tiers.
            let blend = sw_share * sc.gpu_retrieval.as_secs_f64() + (1.0 - sw_share) * retr;
            candidates.push((
                SchemeChoice::GpuTier,
                ovh_rate + lam_eff * (rework + blend),
            ));
        }
        if sc.sharded_feasible {
            // Fan-in shrinks single-machine remote retrieval, floored at
            // the healthy ingress-bound time (parallel senders cannot
            // push a NIC past line rate); a whole lost group still pays
            // the full path. Scatter overhead is paid per commit on top
            // of the interleaved checkpoint.
            let f = sc.sharded_factor.clamp(0.0, 1.0);
            let fanned = (retr * f).max(sc.remote_baseline.as_secs_f64()).min(retr);
            let blend = (1.0 - corr_share) * fanned + corr_share * retr;
            candidates.push((
                SchemeChoice::ShardedHybrid,
                ovh_rate
                    + sc.sharded_overhead.as_secs_f64() / (kf * t_iter)
                    + lam_eff * (rework + blend),
            ));
        }

        let (best, best_cost) = candidates
            .iter()
            .copied()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("cpu_interleaved is always a candidate");
        match candidates
            .iter()
            .find(|(c, _)| *c == self.active.scheme)
            .map(|&(_, cost)| cost)
        {
            // Active scheme no longer feasible → take the best candidate.
            None => best,
            Some(active_cost) => {
                if best_cost * self.cfg.scheme_margin < active_cost
                    && active_cost - best_cost > self.cfg.scheme_min_gain
                {
                    best
                } else {
                    self.active.scheme
                }
            }
        }
    }

    /// Evaluates the signals at an iteration boundary. Returns the applied
    /// decision when (and only when) the active knobs changed.
    ///
    /// Hysteresis: a target differing from the active knobs must be
    /// re-proposed unchanged for `hysteresis_streak` consecutive
    /// evaluations, and the cooldown since the last applied change must
    /// have elapsed. A target that reverts mid-streak cancels the pending
    /// proposal (the blip is absorbed).
    pub fn evaluate(&mut self, s: &PolicySignals) -> Option<PolicyDecisionRecord> {
        self.stats.evaluations += 1;
        let target = self.target(s);
        if target == self.active {
            if self.pending.take().is_some() {
                self.stats.blips_absorbed += 1;
            }
            return None;
        }
        self.stats.proposals += 1;
        let streak = match self.pending.take() {
            Some((prev, n)) if prev == target => n + 1,
            Some(_) | None => 1,
        };
        let cooled = match self.last_applied {
            Some(t) => s.now.saturating_since(t) >= self.cfg.cooldown,
            None => true,
        };
        if streak < self.cfg.hysteresis_streak || !cooled {
            self.pending = Some((target, streak));
            return None;
        }
        let reason = self.describe_change(&target);
        self.active = target;
        self.last_applied = Some(s.now);
        self.stats.applied += 1;
        let record = PolicyDecisionRecord {
            at: s.now,
            knobs: target,
            reason,
            failure_rate_per_hour: self.all.per_sec(s.now) * 3_600.0,
            correlated_rate_per_hour: self.correlated.per_sec(s.now) * 3_600.0,
        };
        self.decisions.push(record.clone());
        Some(record)
    }

    fn describe_change(&self, target: &PolicyKnobs) -> String {
        let mut parts = Vec::new();
        if target.ckpt_every_iters != self.active.ckpt_every_iters {
            parts.push(format!(
                "cadence {}→{}",
                self.active.ckpt_every_iters, target.ckpt_every_iters
            ));
        }
        if target.persist_interval != self.active.persist_interval {
            parts.push(format!(
                "persist {}→{}",
                fmt_interval(self.active.persist_interval),
                fmt_interval(target.persist_interval)
            ));
        }
        if target.replicas != self.active.replicas {
            parts.push(format!("m {}→{}", self.active.replicas, target.replicas));
        }
        if target.tier != self.active.tier {
            parts.push(format!(
                "tier {}→{}",
                self.active.tier.label(),
                target.tier.label()
            ));
        }
        if target.scheme != self.active.scheme {
            parts.push(format!(
                "scheme {}→{}",
                self.active.scheme.label(),
                target.scheme.label()
            ));
        }
        if target.mode != self.active.mode {
            parts.push(format!(
                "mode {}→{}",
                self.active.mode.label(),
                target.mode.label()
            ));
        }
        parts.join(", ")
    }
}

fn fmt_interval(i: Option<SimDuration>) -> String {
    match i {
        Some(d) => format!("{}s", d.as_secs_f64().round() as u64),
        None => "never".to_string(),
    }
}

/// Clamp helper on [`SimDuration`] (kept private to this module).
trait ClampRange {
    fn clamp_range(self, lo: SimDuration, hi: SimDuration) -> SimDuration;
}

impl ClampRange for SimDuration {
    fn clamp_range(self, lo: SimDuration, hi: SimDuration) -> SimDuration {
        self.max(lo).min(hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signals(now_s: u64) -> PolicySignals {
        PolicySignals {
            now: SimTime::from_secs(now_s),
            committed: now_s / 62,
            iteration_time: SimDuration::from_secs(62),
            ckpt_overhead: SimDuration::ZERO,
            retrieval_remote: SimDuration::from_secs(60),
            retrieval_persistent: SimDuration::from_secs(480),
            persist_upload: SimDuration::from_secs(480),
            persist_anchor: None,
            healthy_machines: 16,
            machines: 16,
            scheme: SchemeSignals::default(),
            mode: ModeSignals::default(),
        }
    }

    #[test]
    fn ewma_converges_to_poisson_intensity() {
        // One failure every 600 s for 80 half-lives → rate ≈ 1/600 s⁻¹.
        let mut e = RateEstimator::new(SimDuration::from_hours(1));
        let mut t = 0;
        while t < 72_000 * 4 {
            t += 600;
            e.observe(SimTime::from_secs(t));
        }
        let per_sec = e.per_sec(SimTime::from_secs(t));
        let expect = 1.0 / 600.0;
        // Reading right after an increment used to carry an upward bias
        // of ≈ ln2·Δ/(2h) (≈ 5.8% here); the half-gap discount in
        // `observe` cancels it to O((Δ/h)²) ≈ 0.1%.
        assert!(
            (per_sec - expect).abs() / expect < 0.01,
            "rate {per_sec} vs {expect}"
        );
    }

    #[test]
    fn zero_overhead_keeps_cadence_1() {
        let mut eng = PolicyEngine::new(PolicyConfig::default(), PolicyKnobs::paper_default());
        for i in 0..50 {
            eng.observe_failure(SimTime::from_secs(i * 120), false, false);
        }
        let t = eng.target(&signals(6_000));
        assert_eq!(t.ckpt_every_iters, 1);
    }

    #[test]
    fn young_daly_cadence_with_overhead() {
        let mut eng = PolicyEngine::new(PolicyConfig::default(), PolicyKnobs::paper_default());
        // λ = 1/3600 s⁻¹ steady.
        let mut t = 0;
        while t < 72_000 {
            t += 3_600;
            eng.observe_failure(SimTime::from_secs(t), false, false);
        }
        let mut s = signals(t);
        s.ckpt_overhead = SimDuration::from_secs(10);
        let k = eng.target(&s).ckpt_every_iters;
        // T_opt = sqrt(2·10·3600) ≈ 268 s → k ≈ 268/62 ≈ 4.
        assert!((3..=6).contains(&k), "k = {k}");
    }

    #[test]
    fn persist_interval_shrinks_under_correlated_failures() {
        let cfg = PolicyConfig::default();
        let mut eng = PolicyEngine::new(cfg.clone(), PolicyKnobs::paper_default());
        let quiet = eng.target(&signals(1_000)).persist_interval.unwrap();
        assert_eq!(quiet, cfg.max_persist_interval);
        // Correlated losses every 30 min.
        let mut t = 0;
        while t < 36_000 {
            t += 1_800;
            eng.observe_failure(SimTime::from_secs(t), true, false);
        }
        let hot = eng.target(&signals(t)).persist_interval.unwrap();
        assert!(hot < quiet, "hot {hot:?} quiet {quiet:?}");
        assert!(hot >= SimDuration::from_secs(480), "floor holds: {hot:?}");
    }

    #[test]
    fn tier_flips_only_with_fresh_anchor_and_margin() {
        let mut eng = PolicyEngine::new(PolicyConfig::default(), PolicyKnobs::paper_default());
        let mut s = signals(10_000);
        // No anchor → CPU first even under degrade.
        s.retrieval_remote = SimDuration::from_hours(10);
        assert_eq!(eng.target(&s).tier, TierPreference::CpuFirst);
        // Fresh anchor + collapsed network → persistent first.
        s.persist_anchor = Some(s.committed);
        assert_eq!(eng.target(&s).tier, TierPreference::PersistentFirst);
        // Healthy network → stays CPU first despite the anchor.
        s.retrieval_remote = SimDuration::from_secs(60);
        assert_eq!(eng.target(&s).tier, TierPreference::CpuFirst);
        // Stale anchor whose rollback dwarfs the degrade → CPU first.
        s.retrieval_remote = SimDuration::from_hours(10);
        s.persist_anchor = Some(0);
        s.committed = 10_000;
        assert_eq!(eng.target(&s).tier, TierPreference::CpuFirst);
    }

    #[test]
    fn replicas_step_up_under_sustained_correlated_rate() {
        let mut eng = PolicyEngine::new(PolicyConfig::default(), PolicyKnobs::paper_default());
        let mut t = 0;
        while t < 36_000 {
            t += 1_800; // 2 per hour > 0.5 threshold
            eng.observe_failure(SimTime::from_secs(t), true, false);
        }
        assert_eq!(eng.target(&signals(t)).replicas, 3);
        // Rate decays → back to the launch m.
        assert_eq!(eng.target(&signals(t + 40_000)).replicas, 2);
    }

    #[test]
    fn hysteresis_absorbs_sub_streak_blip() {
        let cfg = PolicyConfig::default();
        let streak = cfg.hysteresis_streak;
        let mut eng = PolicyEngine::new(cfg, PolicyKnobs::paper_default());
        let before = eng.active();
        // Correlated burst pushes a different target…
        for i in 0..20 {
            eng.observe_failure(SimTime::from_secs(1_000 + i), true, false);
        }
        // …but it is proposed for fewer than `streak` evaluations.
        for k in 0..streak - 1 {
            let s = signals(2_000 + k as u64 * 62);
            assert_ne!(eng.target(&s), before, "burst must move the target");
            assert!(eng.evaluate(&s).is_none());
        }
        // The burst decays before the streak completes: target reverts.
        let late = signals(200_000);
        assert_eq!(eng.target(&late), before);
        assert!(eng.evaluate(&late).is_none());
        assert_eq!(eng.active(), before, "blip must not change the policy");
        assert_eq!(eng.stats().blips_absorbed, 1);
        assert_eq!(eng.stats().applied, 0);
    }

    #[test]
    fn sustained_signal_is_applied_after_streak() {
        let cfg = PolicyConfig::default();
        let streak = cfg.hysteresis_streak;
        let mut eng = PolicyEngine::new(cfg, PolicyKnobs::paper_default());
        let mut t = 0;
        while t < 36_000 {
            t += 1_800;
            eng.observe_failure(SimTime::from_secs(t), true, false);
        }
        let mut applied = None;
        for k in 0..streak {
            applied = eng.evaluate(&signals(t + k as u64 * 62));
        }
        let rec = applied.expect("sustained target applies on the streak-th eval");
        assert_eq!(rec.knobs, eng.active());
        assert!(rec.correlated_rate_per_hour > 0.5);
        assert!(!rec.reason.is_empty());
        assert_eq!(eng.stats().applied, 1);
    }

    #[test]
    fn cooldown_blocks_rapid_reapplication() {
        let mut cfg = PolicyConfig::default();
        cfg.hysteresis_streak = 1;
        cfg.cooldown = SimDuration::from_mins(10);
        let mut eng = PolicyEngine::new(cfg, PolicyKnobs::paper_default());
        let mut t = 0;
        while t < 36_000 {
            t += 1_800;
            eng.observe_failure(SimTime::from_secs(t), true, false);
        }
        assert!(eng.evaluate(&signals(t)).is_some());
        // Rate decays quickly past the threshold boundary → target flips
        // back, but the cooldown holds it pending.
        let soon = signals(t + 60);
        if eng.target(&soon) != eng.active() {
            assert!(eng.evaluate(&soon).is_none(), "cooldown must block");
        }
        assert_eq!(eng.stats().applied, 1);
    }

    #[test]
    fn engine_is_deterministic() {
        let run = || {
            let mut eng =
                PolicyEngine::new(PolicyConfig::default(), PolicyKnobs::paper_default());
            let mut out = Vec::new();
            for i in 0..200u64 {
                if i % 7 == 0 {
                    eng.observe_failure(SimTime::from_secs(i * 300), i % 14 == 0, i % 21 == 0);
                }
                let mut s = signals(i * 300 + 1);
                s.ckpt_overhead = SimDuration::from_secs((i % 5) * 3);
                if let Some(rec) = eng.evaluate(&s) {
                    out.push(format!("{rec:?}"));
                }
            }
            (out, format!("{:?}", eng.stats()))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn spec_names_are_stable() {
        assert_eq!(PolicySpec::adaptive().name(), "adaptive");
        let fixed = PolicySpec::Fixed(FixedPolicy {
            name: "per_iteration",
            knobs: PolicyKnobs::paper_default(),
        });
        assert_eq!(fixed.name(), "per_iteration");
    }

    /// With the default (all-infeasible) scheme signals the engine can
    /// never leave the paper's scheme, whatever the failure mix.
    #[test]
    fn infeasible_schemes_are_never_proposed() {
        let mut eng = PolicyEngine::new(PolicyConfig::default(), PolicyKnobs::paper_default());
        let mut t = 0;
        while t < 36_000 {
            t += 600;
            eng.observe_failure(SimTime::from_secs(t), t % 1_800 == 0, t % 1_200 == 0);
        }
        let mut s = signals(t);
        s.retrieval_remote = SimDuration::from_hours(2);
        assert_eq!(eng.target(&s).scheme, SchemeChoice::CpuInterleaved);
    }

    /// An active scheme whose feasibility disappears (e.g. the model
    /// grew past GPU headroom) falls back to the paper's scheme.
    #[test]
    fn infeasible_active_scheme_falls_back() {
        let mut knobs = PolicyKnobs::paper_default();
        knobs.scheme = SchemeChoice::GpuTier;
        let mut eng = PolicyEngine::new(PolicyConfig::default(), knobs);
        assert_eq!(eng.target(&signals(1_000)).scheme, SchemeChoice::CpuInterleaved);
    }

    /// When the per-iteration checkpoint is free (GEMINI's interleaved
    /// setting), Checkmate-style gradient replication has nothing to buy:
    /// there is no rework to save and its fabric tax is pure loss.
    #[test]
    fn gradient_replication_loses_at_free_cadence_1() {
        let mut eng = PolicyEngine::new(PolicyConfig::default(), PolicyKnobs::paper_default());
        let mut s = signals(5_000);
        s.scheme.gradient_feasible = true;
        s.scheme.gradient_overhead = SimDuration::from_millis(500);
        let t = eng.target(&s);
        assert_eq!(t.ckpt_every_iters, 1);
        assert_eq!(t.scheme, SchemeChoice::CpuInterleaved);
    }

    /// When checkpoints carry visible overhead and Young–Daly stretches
    /// the cadence, per-iteration gradient replication wins back the
    /// expected rework and the engine switches.
    #[test]
    fn gradient_wins_when_young_daly_stretches_cadence() {
        let mut eng = PolicyEngine::new(PolicyConfig::default(), PolicyKnobs::paper_default());
        let mut t = 0;
        while t < 72_000 {
            t += 3_600;
            eng.observe_failure(SimTime::from_secs(t), false, false);
        }
        let mut s = signals(t);
        s.ckpt_overhead = SimDuration::from_secs(10);
        s.scheme.gradient_feasible = true;
        s.scheme.gradient_overhead = SimDuration::from_millis(500);
        let target = eng.target(&s);
        assert!(target.ckpt_every_iters > 1, "Young–Daly must stretch k");
        assert_eq!(target.scheme, SchemeChoice::GradientReplicate);
    }

    /// Under a degraded network the sharded fan-in path's cheaper
    /// retrieval beats the paper scheme even before any failure lands
    /// (the rate prior keeps the pricing live on a quiet trace).
    #[test]
    fn sharded_wins_under_degraded_retrieval() {
        let mut eng = PolicyEngine::new(PolicyConfig::default(), PolicyKnobs::paper_default());
        let mut s = signals(5_000);
        s.scheme.sharded_feasible = true;
        s.scheme.sharded_factor = 0.25;
        s.scheme.sharded_overhead = SimDuration::from_secs(2);
        // Healthy network: scatter overhead is not worth it.
        assert_eq!(eng.target(&s).scheme, SchemeChoice::CpuInterleaved);
        // NIC collapse inflates remote retrieval 60 s → 1 h.
        s.retrieval_remote = SimDuration::from_hours(1);
        assert_eq!(eng.target(&s).scheme, SchemeChoice::ShardedHybrid);
    }

    /// A software-dominated failure mix makes the GPU tier's device-local
    /// restore the cheapest path when the shard fits in headroom.
    #[test]
    fn gpu_tier_wins_under_software_heavy_mix() {
        let mut eng = PolicyEngine::new(PolicyConfig::default(), PolicyKnobs::paper_default());
        let mut t = 0;
        while t < 36_000 {
            t += 600;
            eng.observe_failure(SimTime::from_secs(t), false, true);
        }
        let mut s = signals(t);
        s.scheme.gpu_feasible = true;
        s.scheme.gpu_retrieval = SimDuration::from_secs(2);
        assert_eq!(eng.target(&s).scheme, SchemeChoice::GpuTier);
    }

    /// With the default (all-infeasible) mode signals the engine keeps
    /// the paper's wait-for-replacement behaviour whatever the wait costs.
    #[test]
    fn default_mode_signals_keep_wait() {
        let mut eng = PolicyEngine::new(PolicyConfig::default(), PolicyKnobs::paper_default());
        let mut s = signals(5_000);
        s.mode.replacement_wait = SimDuration::from_hours(2);
        assert_eq!(eng.target(&s).mode, RecoveryMode::Wait);
    }

    /// A healthy on-demand pool (short replacement wait) keeps Wait even
    /// when a shrink plan is available: idling a few minutes beats running
    /// shrunk for the amortization horizon.
    #[test]
    fn short_replacement_wait_keeps_wait_despite_feasible_shrink() {
        let mut eng = PolicyEngine::new(PolicyConfig::default(), PolicyKnobs::paper_default());
        let mut s = signals(5_000);
        s.mode.replacement_wait = SimDuration::from_secs(300);
        s.mode.shrink_feasible = true;
        s.mode.repartition_time = SimDuration::from_secs(75);
        s.mode.degraded_frac = 1.0 / 16.0;
        assert_eq!(eng.target(&s).mode, RecoveryMode::Wait);
    }

    /// A spot-capacity crunch (replacement wait dwarfing the degradation
    /// cost) flips the mode to Shrink. The failure rate cancels in the
    /// Wait-vs-Shrink comparison, so this holds even on a quiet trace.
    #[test]
    fn spot_crunch_flips_to_shrink() {
        let mut eng = PolicyEngine::new(PolicyConfig::default(), PolicyKnobs::paper_default());
        let mut s = signals(5_000);
        s.mode.replacement_wait = SimDuration::from_mins(30);
        s.mode.shrink_feasible = true;
        s.mode.repartition_time = SimDuration::from_secs(75);
        s.mode.degraded_frac = 1.0 / 16.0;
        assert_eq!(eng.target(&s).mode, RecoveryMode::Shrink);
    }

    /// With memory headroom and cheap extra-replica traffic, a failure-
    /// heavy trace makes pre-positioned step-up the cheapest mode — and
    /// the replica target carries the extra copy.
    #[test]
    fn step_up_wins_when_overhead_is_cheap_and_failures_frequent() {
        let mut eng = PolicyEngine::new(PolicyConfig::default(), PolicyKnobs::paper_default());
        let mut t = 0;
        while t < 36_000 {
            t += 600; // 6/hour: waits dominate, overhead amortizes away
            eng.observe_failure(SimTime::from_secs(t), false, false);
        }
        let mut s = signals(t);
        s.mode.replacement_wait = SimDuration::from_mins(30);
        s.mode.step_up_feasible = true;
        s.mode.step_up_overhead = SimDuration::from_millis(200);
        let target = eng.target(&s);
        assert_eq!(target.mode, RecoveryMode::StepUp);
        assert_eq!(target.replicas, 3, "step-up carries the extra replica");
    }

    /// `mode_switching: false` pins the mode whatever the signals.
    #[test]
    fn mode_switch_master_switch() {
        let mut cfg = PolicyConfig::default();
        cfg.mode_switching = false;
        let mut eng = PolicyEngine::new(cfg, PolicyKnobs::paper_default());
        let mut s = signals(5_000);
        s.mode.replacement_wait = SimDuration::from_hours(2);
        s.mode.shrink_feasible = true;
        s.mode.repartition_time = SimDuration::from_secs(60);
        assert_eq!(eng.target(&s).mode, RecoveryMode::Wait);
    }

    /// Mode labels round-trip through the wire format.
    #[test]
    fn mode_labels_round_trip() {
        for mode in RecoveryMode::ALL {
            assert_eq!(RecoveryMode::parse(mode.label()), Some(mode));
        }
        assert_eq!(RecoveryMode::parse("bogus"), None);
    }

    /// `scheme_switching: false` pins the scheme whatever the signals.
    #[test]
    fn scheme_switch_master_switch() {
        let mut cfg = PolicyConfig::default();
        cfg.scheme_switching = false;
        let mut eng = PolicyEngine::new(cfg, PolicyKnobs::paper_default());
        let mut s = signals(5_000);
        s.scheme.sharded_feasible = true;
        s.scheme.sharded_factor = 0.1;
        s.retrieval_remote = SimDuration::from_hours(2);
        assert_eq!(eng.target(&s).scheme, SchemeChoice::CpuInterleaved);
    }
}
