//! Adaptive checkpoint-frequency selection (paper §5.3, "Finish
//! checkpointing within an iteration").
//!
//! When the network idle timespans cannot absorb a whole checkpoint, the
//! overflow traffic delays the optimizer update and stretches the
//! iteration. Rather than pay that overhead every iteration, GEMINI
//! "can reduce the checkpoint frequency to amortize the incurred
//! overhead": checkpoint every `k` iterations so the *amortized* slowdown
//! stays below a configured budget, trading a slightly longer rollback
//! window for steady throughput.

use crate::schedule::ScheduleOutcome;
use crate::wasted::WastedTimeModel;
use gemini_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// The chosen checkpoint cadence.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FrequencyPlan {
    /// Checkpoint every `every_iters` iterations (1 = the optimum of
    /// Equation 2).
    pub every_iters: u64,
    /// Training-throughput overhead per checkpointed iteration.
    pub overhead_per_ckpt: SimDuration,
    /// Amortized overhead as a fraction of steady-state time.
    pub amortized_overhead: f64,
    /// The resulting wasted-time regime (Equation 1 inputs).
    pub wasted: WastedTimeModel,
}

/// Picks the smallest `k` such that checkpointing every `k` iterations
/// keeps the amortized throughput overhead at or below `budget`
/// (a fraction, e.g. 0.01 for 1%). `budget <= 0` disables amortization and
/// returns the per-iteration plan regardless of overhead.
pub fn plan_frequency(outcome: &ScheduleOutcome, budget: f64) -> FrequencyPlan {
    let iter = outcome.baseline_iteration.as_secs_f64();
    let overhead = outcome.overhead.as_secs_f64();
    let every_iters = if overhead <= 0.0 || budget <= 0.0 || iter <= 0.0 {
        1
    } else {
        // overhead / (k·iter + overhead) <= budget
        //   ⇔ k >= overhead·(1 − budget) / (budget·iter)
        (overhead * (1.0 - budget) / (budget * iter))
            .ceil()
            .max(1.0) as u64
    };
    let cycle = every_iters as f64 * iter + overhead;
    let amortized = if cycle > 0.0 { overhead / cycle } else { 0.0 };
    let interval = SimDuration::from_secs_f64(cycle);
    // The checkpoint is durable by the end of the iteration that carries
    // the overflow, i.e. one full (stretched) iteration after its states.
    let ckpt_time = outcome.iteration_time;
    let wasted = WastedTimeModel::new(
        ckpt_time,
        interval,
        outcome.baseline_iteration,
        SimDuration::ZERO,
    );
    FrequencyPlan {
        every_iters,
        overhead_per_ckpt: outcome.overhead,
        amortized_overhead: amortized,
        wasted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(iter_s: f64, overhead_s: f64) -> ScheduleOutcome {
        ScheduleOutcome {
            baseline_iteration: SimDuration::from_secs_f64(iter_s),
            iteration_time: SimDuration::from_secs_f64(iter_s + overhead_s),
            overhead: SimDuration::from_secs_f64(overhead_s),
            ckpt_network_time: SimDuration::from_secs_f64(2.0),
            remaining_idle: SimDuration::ZERO,
            pipeline_bubbles: SimDuration::ZERO,
        }
    }

    #[test]
    fn zero_overhead_keeps_per_iteration_cadence() {
        let p = plan_frequency(&outcome(62.0, 0.0), 0.01);
        assert_eq!(p.every_iters, 1);
        assert_eq!(p.amortized_overhead, 0.0);
    }

    #[test]
    fn overhead_amortizes_to_budget() {
        // 5 s overflow on a 50 s iteration: per-iteration checkpointing
        // would cost ~9%; a 1% budget needs k = ceil(5·0.99/0.5) = 10.
        let p = plan_frequency(&outcome(50.0, 5.0), 0.01);
        assert_eq!(p.every_iters, 10);
        assert!(p.amortized_overhead <= 0.01 + 1e-12);
        // And k is minimal: k−1 would blow the budget.
        let worse = 5.0 / (9.0 * 50.0 + 5.0);
        assert!(worse > 0.01);
    }

    #[test]
    fn tighter_budget_means_rarer_checkpoints() {
        let loose = plan_frequency(&outcome(50.0, 5.0), 0.05);
        let tight = plan_frequency(&outcome(50.0, 5.0), 0.005);
        assert!(tight.every_iters > loose.every_iters);
    }

    #[test]
    fn disabled_budget_checkpoints_every_iteration() {
        let p = plan_frequency(&outcome(50.0, 5.0), 0.0);
        assert_eq!(p.every_iters, 1);
        assert!(p.amortized_overhead > 0.05);
    }

    #[test]
    fn wasted_regime_reflects_interval() {
        let p = plan_frequency(&outcome(50.0, 5.0), 0.01);
        // Average wasted ≈ t_ckpt + interval/2.
        let expect = 55.0 + (10.0 * 50.0 + 5.0) / 2.0;
        assert!(
            (p.wasted.average_wasted().as_secs_f64() - expect).abs() < 1.0,
            "{}",
            p.wasted.average_wasted()
        );
    }

    #[test]
    fn large_overhead_still_terminates() {
        let p = plan_frequency(&outcome(1.0, 10_000.0), 0.01);
        assert!(p.every_iters >= 990_000);
        assert!(p.amortized_overhead <= 0.01 + 1e-9);
    }
}
