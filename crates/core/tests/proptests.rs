//! Property-based tests for GEMINI's core algorithms: placement
//! invariants and probability theory, Algorithm 2 conservation, pipeline
//! causality and codec integrity.

use gemini_core::codec;
use gemini_core::partition::{checkpoint_partition, PartitionInput};
use gemini_core::pipeline::run_pipeline;
use gemini_core::policy::{
    ModeSignals, PolicyConfig, PolicyEngine, PolicyKnobs, PolicySignals, SchemeSignals,
    TierPreference,
};
use gemini_core::placement::analytic::analytic_recovery_probability;
use gemini_core::placement::probability::{
    binomial, corollary1_probability, exact_recovery_probability,
    host_sets_recovery_probability, theorem1_gap_bound, theorem1_upper_bound,
};
use gemini_core::placement::topology::{rack_aware_mixed, Topology};
use gemini_core::retention::{PersistentLedger, RetentionPolicy};
use gemini_core::wasted::WastedTimeModel;
use gemini_core::{HierarchicalStore, Placement, RecoveryCase, RecoveryPlanner, StorageTier};
use gemini_net::{Bandwidth, ByteSize, TransferCost};
use gemini_sim::{DetRng, SimDuration, SimTime};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn nm_strategy() -> impl Strategy<Value = (usize, usize)> {
    (1usize..=48).prop_flat_map(|n| (Just(n), 1usize..=n.min(6)))
}

/// The slowest, most obviously correct estimator: walk every `k`-subset of
/// `0..n` (lexicographic combination stepping) and ask
/// `Placement::recoverable(&BTreeSet)`. Divides the same exact integers as
/// the Gosper and analytic kernels, so agreement is bit-exact.
fn btreeset_reference_probability(p: &Placement, k: usize) -> f64 {
    let n = p.machines();
    if k == 0 {
        return 1.0;
    }
    if k > n {
        return 0.0;
    }
    let mut idx: Vec<usize> = (0..k).collect();
    let mut good = 0u64;
    let mut total = 0u64;
    loop {
        let failed: BTreeSet<usize> = idx.iter().copied().collect();
        total += 1;
        if p.recoverable(&failed) {
            good += 1;
        }
        // Advance to the next combination, rightmost-movable first.
        let mut i = k;
        loop {
            if i == 0 {
                return good as f64 / total as f64;
            }
            i -= 1;
            if idx[i] < n - (k - i) {
                idx[i] += 1;
                for j in i + 1..k {
                    idx[j] = idx[j - 1] + 1;
                }
                break;
            }
        }
    }
}

/// Baseline signals whose target is exactly [`PolicyKnobs::paper_default`]
/// while no failure has ever been observed: zero visible overhead, no
/// durable anchor, healthy cluster.
fn baseline_signals(now_s: u64) -> PolicySignals {
    PolicySignals {
        now: SimTime::from_secs(now_s),
        committed: now_s / 62,
        iteration_time: SimDuration::from_secs(62),
        ckpt_overhead: SimDuration::ZERO,
        retrieval_remote: SimDuration::from_secs(60),
        retrieval_persistent: SimDuration::from_secs(480),
        persist_upload: SimDuration::from_secs(480),
        persist_anchor: None,
        healthy_machines: 16,
        machines: 16,
        scheme: SchemeSignals::default(),
        mode: ModeSignals::default(),
    }
}

/// The same boundary with a collapsed training fabric and a fresh durable
/// anchor: the pure-signal perturbation that flips the tier target to
/// `PersistentFirst` (and reverts the instant the signals do).
fn perturbed_signals(now_s: u64) -> PolicySignals {
    let mut s = baseline_signals(now_s);
    s.persist_anchor = Some(s.committed);
    s.retrieval_remote = SimDuration::from_hours(10);
    s
}

proptest! {
    // ---- Placement (Algorithm 1, §4) ----

    #[test]
    fn placement_invariants_hold((n, m) in nm_strategy()) {
        let p = Placement::mixed(n, m).unwrap();
        prop_assert!(p.check_invariants().is_ok(), "{:?}", p.check_invariants());
        prop_assert_eq!(p.sends_per_machine(), m - 1);
        // Every machine hosts its own replica and exactly m hosts when the
        // cluster is large enough.
        for i in 0..n {
            let hosts = p.replica_hosts(i).unwrap();
            prop_assert!(hosts.contains(&i));
            prop_assert_eq!(hosts.len(), m.min(n));
        }
    }

    #[test]
    fn fewer_failures_than_replicas_always_recoverable((n, m) in nm_strategy(), seed in any::<u64>()) {
        prop_assume!(m >= 2);
        let p = Placement::mixed(n, m).unwrap();
        let mut rng = DetRng::new(seed);
        let failed: BTreeSet<usize> =
            rng.sample_distinct(n, m - 1).into_iter().collect();
        prop_assert!(p.recoverable(&failed));
    }

    #[test]
    fn losing_a_whole_host_set_is_fatal((n, m) in nm_strategy(), pick in any::<prop::sample::Index>()) {
        prop_assume!(m >= 2);
        let p = Placement::mixed(n, m).unwrap();
        let sets = p.unique_host_sets();
        let set = &sets[pick.index(sets.len())];
        let failed: BTreeSet<usize> = set.iter().copied().collect();
        prop_assert!(!p.recoverable(&failed));
    }

    /// The differential contract of the analytic DP kernel: for every
    /// placement with N ≤ 30 and k ≤ 7 — across mixed, group and ring
    /// strategies — the DP kernel, the Gosper enumeration and (where the
    /// subset count stays walkable) the BTreeSet reference agree on the
    /// recovery probability *bit-exactly* as f64: all three divide the
    /// same exact integer pair `good / C(N, k)`.
    #[test]
    fn analytic_gosper_and_btreeset_reference_agree_bit_exactly(
        n in 1usize..=30,
        m_seed in any::<prop::sample::Index>(),
        k in 0usize..=7,
    ) {
        let m = 1 + m_seed.index(n.min(4));
        let mut placements = vec![
            Placement::mixed(n, m).unwrap(),
            Placement::ring(n, m).unwrap(),
        ];
        if n % m == 0 {
            placements.push(Placement::group(n, m).unwrap());
        }
        for p in &placements {
            let analytic = analytic_recovery_probability(p, k);
            if k > n {
                // The enumerator declines k > N; the analytic kernel and
                // the reference both call it a certain loss.
                prop_assert_eq!(analytic, 0.0);
                prop_assert_eq!(btreeset_reference_probability(p, k), 0.0);
                continue;
            }
            let gosper = exact_recovery_probability(p, k)
                .expect("C(30,7) is far below the enumeration cap");
            prop_assert_eq!(
                analytic.to_bits(), gosper.to_bits(),
                "n={} m={} k={} {:?}: analytic {} vs gosper {}",
                n, m, k, p.strategy(), analytic, gosper
            );
            if binomial(n as u64, k as u64) <= 30_000.0 {
                let reference = btreeset_reference_probability(p, k);
                prop_assert_eq!(
                    analytic.to_bits(), reference.to_bits(),
                    "n={} m={} k={} {:?}: analytic {} vs reference {}",
                    n, m, k, p.strategy(), analytic, reference
                );
            }
        }
    }

    #[test]
    fn group_and_mixed_dominate_ring((n, _) in nm_strategy()) {
        prop_assume!(n >= 4);
        let m = 2;
        let mixed = Placement::mixed(n, m).unwrap();
        let ring = Placement::ring(n, m).unwrap();
        let pm = exact_recovery_probability(&mixed, m).unwrap();
        let pr = exact_recovery_probability(&ring, m).unwrap();
        prop_assert!(pm >= pr - 1e-12, "mixed {pm} < ring {pr} at N={n}");
    }

    #[test]
    fn corollary1_is_exact_for_k_eq_m_divisible(g in 2usize..12, m in 2usize..5) {
        let n = g * m;
        let p = Placement::group(n, m).unwrap();
        if let Some(exact) = exact_recovery_probability(&p, m) {
            let analytic = corollary1_probability(n, m, m);
            prop_assert!((exact - analytic).abs() < 1e-9, "N={n} m={m}");
        }
    }

    /// Theorem 1's optimality claim, tested adversarially: NO strategy —
    /// here, uniformly random assignments of each machine's m replica
    /// hosts (own machine included, per the theorem's Observation 2) —
    /// achieves a higher k = m recovery probability than the upper bound,
    /// which Algorithm 1's group placement attains when m | N.
    #[test]
    fn no_random_strategy_beats_theorem1_upper_bound(
        n in 4usize..20,
        m in 2usize..4,
        seed in any::<u64>(),
    ) {
        prop_assume!(m < n);
        let mut rng = DetRng::new(seed);
        // Random strategy: machine i stores on itself + m-1 random others.
        let host_sets: Vec<Vec<usize>> = (0..n)
            .map(|i| {
                let mut hosts = vec![i];
                while hosts.len() < m {
                    let h = rng.uniform_u64(0, n as u64) as usize;
                    if !hosts.contains(&h) {
                        hosts.push(h);
                    }
                }
                hosts.sort_unstable();
                hosts
            })
            .collect();
        let mut unique = host_sets.clone();
        unique.sort();
        unique.dedup();
        if let Some(p) = host_sets_recovery_probability(&unique, n, m) {
            let bound = theorem1_upper_bound(n, m);
            prop_assert!(
                p <= bound + 1e-12,
                "random strategy beat the bound: {p} > {bound} (n={n}, m={m})"
            );
        }
    }

    #[test]
    fn theorem1_gap_bound_holds((n, m) in nm_strategy()) {
        prop_assume!(m >= 2 && n >= 2 * m && n % m != 0);
        let p = Placement::mixed(n, m).unwrap();
        if let Some(exact) = exact_recovery_probability(&p, m) {
            let bound = theorem1_upper_bound(n, m);
            prop_assert!(exact <= bound + 1e-12);
            prop_assert!(bound - exact <= theorem1_gap_bound(n, m) + 1e-12,
                "N={n} m={m}: gap {}", bound - exact);
        }
    }

    #[test]
    fn rack_aware_relabel_preserves_structure((n, m) in nm_strategy(), racks in 1usize..8) {
        let topology = Topology::contiguous(n, racks).unwrap();
        let aware = rack_aware_mixed(&topology, m).unwrap();
        let base = Placement::mixed(n, m).unwrap();
        prop_assert!(aware.check_invariants().is_ok());
        prop_assert_eq!(aware.groups().len(), base.groups().len());
        prop_assert_eq!(aware.unique_host_sets().len(), base.unique_host_sets().len());
        // Round-robin covers every machine exactly once.
        let mut order = topology.round_robin_order();
        order.sort_unstable();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn rack_aware_groups_span_racks((_, m) in nm_strategy(), racks in 2usize..6) {
        let n = racks * 4; // even racks
        prop_assume!(m <= racks);
        let topology = Topology::contiguous(n, racks).unwrap();
        let aware = rack_aware_mixed(&topology, m).unwrap();
        for group in aware.groups() {
            let distinct: BTreeSet<usize> = group
                .members
                .iter()
                .map(|&mach| topology.rack_of(mach).unwrap())
                .collect();
            prop_assert_eq!(distinct.len(), group.members.len().min(racks));
        }
    }

    #[test]
    fn retention_never_loses_the_newest(
        iters in proptest::collection::btree_set(0u64..10_000, 1..60),
        keep_last in 0usize..5,
        keep_every in 0u64..500,
    ) {
        let policy = RetentionPolicy { keep_last, keep_every };
        let mut ledger = PersistentLedger::new(policy);
        let sorted: Vec<u64> = iters.iter().copied().collect();
        for &i in &sorted {
            ledger.persist(i);
        }
        // The newest persisted checkpoint always survives.
        prop_assert_eq!(ledger.latest(), sorted.last().copied());
        // Milestones survive.
        if keep_every > 0 {
            for &i in &sorted {
                if i % keep_every == 0 {
                    prop_assert!(ledger.kept().contains(&i), "milestone {i} lost");
                }
            }
        }
        // Kept + deleted conserves the history.
        prop_assert_eq!(
            ledger.kept().len() as u64 + ledger.deleted_total(),
            sorted.len() as u64
        );
    }

    // ---- Partitioning (Algorithm 2, §5.3) ----

    #[test]
    fn partition_conserves_and_fits(
        spans_ms in proptest::collection::vec(0u64..2_000, 1..12),
        ckpt_mb in 1u64..4_000,
        copies in 1usize..4,
        parts in 1usize..8,
        gamma in 0.1f64..1.0,
    ) {
        let input = PartitionInput {
            idle_spans: spans_ms
                .iter()
                .map(|&ms| SimDuration::from_millis(ms))
                .collect(),
            ckpt_size: ByteSize::from_mb(ckpt_mb),
            copies,
            reserved_buffer: ByteSize::from_mib(128),
            buffer_parts: parts,
            cost: TransferCost::new(
                SimDuration::from_micros(500),
                Bandwidth::from_gbytes_per_sec(10.0),
            ),
            gamma,
        };
        let plan = checkpoint_partition(&input).unwrap();
        prop_assert!(plan.check_against(&input).is_ok(), "{:?}", plan.check_against(&input));
        prop_assert_eq!(plan.total_bytes() + plan.unscheduled,
                        input.ckpt_size * copies as u64);
        prop_assert!(plan.unscheduled.is_zero(), "last span is unbounded");
    }

    #[test]
    fn partition_overflow_zero_when_idle_ample(ckpt_mb in 1u64..1_000) {
        // A final span of 10 minutes dwarfs any checkpoint here.
        let input = PartitionInput {
            idle_spans: vec![SimDuration::from_millis(50), SimDuration::from_secs(600)],
            ckpt_size: ByteSize::from_mb(ckpt_mb),
            copies: 1,
            reserved_buffer: ByteSize::from_mib(128),
            buffer_parts: 4,
            cost: TransferCost::new(
                SimDuration::from_micros(100),
                Bandwidth::from_gbytes_per_sec(10.0),
            ),
            gamma: 0.8,
        };
        let plan = checkpoint_partition(&input).unwrap();
        prop_assert!(plan.overflow(&input.idle_spans, &input.cost).is_zero());
    }

    // ---- Pipeline (§5.2) ----

    #[test]
    fn pipeline_causality(
        chunks_mb in proptest::collection::vec(1u64..128, 1..40),
        p in 1usize..6,
        copy_gbps in 1.0f64..100.0,
    ) {
        let chunks: Vec<ByteSize> = chunks_mb.iter().map(|&m| ByteSize::from_mb(m)).collect();
        let net = TransferCost::new(
            SimDuration::from_micros(100),
            Bandwidth::from_gbytes_per_sec(10.0),
        );
        let copy = TransferCost::new(
            SimDuration::from_micros(10),
            Bandwidth::from_gbytes_per_sec(copy_gbps),
        );
        let r = run_pipeline(&chunks, p, &net, &copy);
        // Copies start after their transfer; copies are serial; network is
        // serial; buffers are reused only after their copy drained.
        for (n, c) in r.net_spans.iter().zip(&r.copy_spans) {
            prop_assert!(c.start >= n.end);
        }
        for w in r.copy_spans.windows(2) {
            prop_assert!(w[1].start >= w[0].end);
        }
        for w in r.net_spans.windows(2) {
            prop_assert!(w[1].start >= w[0].end);
        }
        for i in p..chunks.len() {
            prop_assert!(r.net_spans[i].start >= r.copy_spans[i - p].end);
        }
        prop_assert!(r.makespan >= r.net_occupancy);
    }

    #[test]
    fn pipeline_more_buffers_never_hurt(
        chunks_mb in proptest::collection::vec(1u64..64, 1..30),
    ) {
        let chunks: Vec<ByteSize> = chunks_mb.iter().map(|&m| ByteSize::from_mb(m)).collect();
        let net = TransferCost::new(
            SimDuration::from_micros(100),
            Bandwidth::from_gbytes_per_sec(10.0),
        );
        let copy = TransferCost::new(
            SimDuration::from_micros(10),
            Bandwidth::from_gbytes_per_sec(5.0),
        );
        let mut prev = None;
        for p in 1..=4 {
            let r = run_pipeline(&chunks, p, &net, &copy);
            if let Some(prev) = prev {
                prop_assert!(r.makespan <= prev);
            }
            prev = Some(r.makespan);
        }
    }

    // ---- Codec ----

    #[test]
    fn codec_roundtrips(owner in any::<u32>(), iteration in any::<u64>(),
                        data in proptest::collection::vec(any::<u8>(), 0..4_096)) {
        let frame = codec::encode(owner, iteration, &data);
        let decoded = codec::decode(&frame).unwrap();
        prop_assert_eq!(decoded.owner, owner);
        prop_assert_eq!(decoded.iteration, iteration);
        prop_assert_eq!(&decoded.data[..], &data[..]);
    }

    #[test]
    fn codec_detects_any_bit_flip(data in proptest::collection::vec(any::<u8>(), 1..512),
                                  byte in any::<prop::sample::Index>(),
                                  bit in 0u8..8) {
        let frame = codec::encode(1, 2, &data).to_vec();
        let mut bad = frame.clone();
        let idx = byte.index(bad.len());
        bad[idx] ^= 1 << bit;
        prop_assert!(codec::decode(&bad).is_err());
    }

    // ---- Wasted time (Equation 1) ----

    #[test]
    fn wasted_average_is_between_best_and_worst(
        ckpt_s in 0u64..10_000, interval_s in 1u64..100_000,
        iter_s in 1u64..1_000, rtvl_s in 0u64..10_000,
    ) {
        let w = WastedTimeModel::new(
            SimDuration::from_secs(ckpt_s),
            SimDuration::from_secs(interval_s),
            SimDuration::from_secs(iter_s),
            SimDuration::from_secs(rtvl_s),
        );
        prop_assert!(w.best_case() <= w.average_wasted());
        prop_assert!(w.average_wasted() <= w.worst_case());
        // Equation 2's floor.
        prop_assert!(w.interval >= SimDuration::from_secs(ckpt_s.max(iter_s)));
    }

    // ---- Adaptive policy hysteresis ----

    #[test]
    fn sub_streak_blip_never_changes_the_active_policy(
        streak in 2u32..8,
        blip in 1u32..8,
        pre in 0u64..5,
        post in 1u64..5,
        step in 30u64..600,
    ) {
        // A perturbed target proposed for fewer than `streak` consecutive
        // evaluations must never be applied, whatever the evaluation
        // cadence around it.
        prop_assume!(blip < streak);
        let cfg = PolicyConfig {
            hysteresis_streak: streak,
            ..PolicyConfig::default()
        };
        let initial = PolicyKnobs::paper_default();
        let mut eng = PolicyEngine::new(cfg, initial);
        let mut t = 1_000u64;
        for _ in 0..pre {
            prop_assert!(eng.evaluate(&baseline_signals(t)).is_none());
            t += step;
        }
        for _ in 0..blip {
            let s = perturbed_signals(t);
            prop_assert_eq!(eng.target(&s).tier, TierPreference::PersistentFirst);
            prop_assert!(eng.evaluate(&s).is_none(), "sub-streak blip applied");
            t += step;
        }
        for _ in 0..post {
            prop_assert!(eng.evaluate(&baseline_signals(t)).is_none());
            t += step;
        }
        prop_assert_eq!(eng.active(), initial);
        let stats = eng.stats();
        prop_assert_eq!(stats.applied, 0);
        prop_assert_eq!(stats.blips_absorbed, 1);
        prop_assert_eq!(stats.proposals, blip as u64);
    }

    /// The EWMA failure-rate estimator tracks the analytic intensity of a
    /// synthetic Poisson trace. Halflife 10 h keeps λ·h ≥ 60, so the
    /// estimator's intrinsic relative std (≈ √(ln2 / 2λh) ≤ 7.6%) sits
    /// far inside the 35% tolerance; the midpoint-decay fix removes the
    /// systematic sampling bias that would otherwise stack on top.
    #[test]
    fn ewma_tracks_poisson_intensity_on_synthetic_traces(
        us in proptest::collection::vec(1e-4f64..1.0, 1_500..2_000usize),
        mean_gap_s in 200.0f64..600.0,
    ) {
        let cfg = PolicyConfig {
            halflife: SimDuration::from_hours(10),
            ..PolicyConfig::default()
        };
        let mut eng = PolicyEngine::new(cfg, PolicyKnobs::paper_default());
        // Exponential inter-arrival gaps by inverse CDF over the uniforms.
        let mut t = 0.0f64;
        for u in &us {
            t += -u.ln() * mean_gap_s;
            eng.observe_failure(SimTime::from_secs_f64(t), false, false);
        }
        // Compare against the trace's own empirical rate, so tail
        // truncation of the uniforms cancels out.
        let analytic = us.len() as f64 / t * 3_600.0;
        let estimated = eng.failure_rate_per_hour(SimTime::from_secs_f64(t));
        prop_assert!(
            (estimated - analytic).abs() / analytic < 0.35,
            "estimated {estimated}/h vs analytic {analytic}/h"
        );
    }

    #[test]
    fn sustained_proposal_applies_exactly_on_the_streak(
        streak in 1u32..8,
        step in 30u64..600,
    ) {
        let cfg = PolicyConfig {
            hysteresis_streak: streak,
            ..PolicyConfig::default()
        };
        let initial = PolicyKnobs::paper_default();
        let mut eng = PolicyEngine::new(cfg, initial);
        let mut t = 1_000u64;
        for k in 1..=streak {
            let applied = eng.evaluate(&perturbed_signals(t));
            if k < streak {
                prop_assert!(applied.is_none(), "applied before the streak at {k}");
            } else {
                let rec = applied.expect("streak-th evaluation applies");
                prop_assert_eq!(rec.knobs.tier, TierPreference::PersistentFirst);
                prop_assert_eq!(rec.knobs, eng.active());
            }
            t += step;
        }
        prop_assert_eq!(eng.stats().applied, 1);
    }

    // ---- Elastic shrink-and-continue (repartition planner) ----

    /// Below the placement tolerance (fewer losses than the replica
    /// factor) a shrink plan never touches the persistent tier: every
    /// failed rank's committed shard is adopted by a survivor straight
    /// from CPU memory at the committed iteration, adoption load spreads
    /// within one shard of even, and the whole plan is deterministic.
    #[test]
    fn shrink_below_tolerance_preserves_every_committed_shard(
        (n, m) in nm_strategy(),
        kills_pick in any::<prop::sample::Index>(),
        seed in any::<u64>(),
    ) {
        prop_assume!(m >= 2 && n > m);
        // Below tolerance AND enough survivors left to re-place over.
        let kills = 1 + kills_pick.index((m - 1).min(n - m));
        let failed: BTreeSet<usize> = DetRng::new(seed)
            .sample_distinct(n, kills)
            .into_iter()
            .collect();
        let build = || {
            let mut store = HierarchicalStore::new(
                Placement::mixed(n, m).unwrap(),
                ByteSize::from_gb(75),
            );
            store.persist(100);
            store.record_complete(310);
            for &r in &failed {
                store.machine_lost(r);
            }
            RecoveryPlanner.plan_shrink(&store, &failed).unwrap()
        };
        let plan = build();
        prop_assert_eq!(plan.case, RecoveryCase::HardwareFromCpu);
        prop_assert_eq!(plan.iteration, 310);
        prop_assert_eq!(plan.survivors.len(), n - kills);
        prop_assert!(plan.survivors.iter().all(|s| !failed.contains(s)));
        prop_assert!(
            (plan.throughput_factor - (n - kills) as f64 / n as f64).abs() < 1e-12
        );
        // Exactly one adoption per lost rank, all sourced from CPU memory.
        let owners: BTreeSet<usize> = plan.moves.iter().map(|mv| mv.owner).collect();
        prop_assert_eq!(&owners, &failed);
        prop_assert_eq!(plan.moves.len(), kills);
        let mut load = std::collections::BTreeMap::new();
        for mv in &plan.moves {
            prop_assert!(plan.survivors.contains(&mv.to), "adopter {} died", mv.to);
            match mv.tier {
                StorageTier::LocalCpu => prop_assert_eq!(mv.from, None),
                StorageTier::RemoteCpu => {
                    let from = mv.from.expect("remote adoption names a source");
                    prop_assert!(plan.survivors.contains(&from));
                }
                StorageTier::Persistent => prop_assert!(
                    false,
                    "below tolerance, owner {} fell back to persistent",
                    mv.owner
                ),
            }
            *load.entry(mv.to).or_insert(0usize) += 1;
        }
        let max = load.values().copied().max().unwrap_or(0);
        let min = plan
            .survivors
            .iter()
            .map(|s| load.get(s).copied().unwrap_or(0))
            .min()
            .unwrap_or(0);
        prop_assert!(max - min <= 1, "unbalanced adoptions: {load:?}");
        // Planning is a pure function of the (store, failures) pair.
        prop_assert_eq!(format!("{plan:?}"), format!("{:?}", build()));
    }
}
