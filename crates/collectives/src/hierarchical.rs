//! Two-level (hierarchical) collectives: NVSwitch inside the machine,
//! the inter-machine network between machines.
//!
//! The flat model in the crate root charges only the inter-node ring — the
//! right approximation when NVSwitch bandwidth (hundreds of GB/s) dwarfs
//! the NIC. This module prices the intra-node phases too, giving an upper
//! bound that converges to the flat model as intra-node bandwidth grows:
//!
//! 1. **Intra gather** — the `g` GPUs of each node assemble the node's
//!    shard over NVSwitch;
//! 2. **Inter ring** — node leaders run the flat ring collective;
//! 3. **Intra distribute** — each node fans the gathered remainder back
//!    out to its GPUs.

use crate::{collective_time, CollectiveKind};
use gemini_net::{ByteSize, TransferCost};
use gemini_sim::SimDuration;

/// Wall-clock time of a hierarchical all-gather: `total` bytes sharded over
/// `nodes × gpus_per_node` GPUs, with `inter` the inter-node point-to-point
/// cost and `intra` the NVSwitch cost.
pub fn hierarchical_allgather_time(
    total: ByteSize,
    nodes: usize,
    gpus_per_node: usize,
    inter: &TransferCost,
    intra: &TransferCost,
) -> SimDuration {
    let g = gpus_per_node.max(1);
    // Phase 1: intra-node all-gather of the node's shard (total/nodes),
    // currently split g ways.
    let node_shard = total / nodes.max(1) as u64;
    let phase1 = collective_time(CollectiveKind::AllGather, g, node_shard, intra);
    // Phase 2: inter-node ring over the node shards.
    let phase2 = collective_time(CollectiveKind::AllGather, nodes, total, inter);
    // Phase 3: distribute the remainder (everything gathered from other
    // nodes) to the local GPUs over NVSwitch — a broadcast of
    // total − node_shard.
    let remainder = total.saturating_sub(node_shard);
    let phase3 = if g > 1 && !remainder.is_zero() {
        collective_time(CollectiveKind::Broadcast, g, remainder, intra)
    } else {
        SimDuration::ZERO
    };
    phase1 + phase2 + phase3
}

/// Hierarchical reduce-scatter: the mirror image (intra reduce, inter
/// ring reduce-scatter, no distribute phase — each GPU keeps its shard).
pub fn hierarchical_reduce_scatter_time(
    total: ByteSize,
    nodes: usize,
    gpus_per_node: usize,
    inter: &TransferCost,
    intra: &TransferCost,
) -> SimDuration {
    let g = gpus_per_node.max(1);
    // Phase 1: intra-node reduce-scatter of the full payload view.
    let phase1 = collective_time(
        CollectiveKind::ReduceScatter,
        g,
        total / nodes.max(1) as u64,
        intra,
    );
    // Phase 2: inter-node ring reduce-scatter over node partials.
    let phase2 = collective_time(CollectiveKind::ReduceScatter, nodes, total, inter);
    phase1 + phase2
}

/// How much slower the hierarchical estimate is than the flat inter-node
/// approximation (≥ 1; → 1 as NVSwitch bandwidth → ∞).
pub fn hierarchy_overhead_factor(
    total: ByteSize,
    nodes: usize,
    gpus_per_node: usize,
    inter: &TransferCost,
    intra: &TransferCost,
) -> f64 {
    let flat = collective_time(CollectiveKind::AllGather, nodes, total, inter);
    let hier = hierarchical_allgather_time(total, nodes, gpus_per_node, inter, intra);
    if flat.is_zero() {
        1.0
    } else {
        hier.as_secs_f64() / flat.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemini_net::Bandwidth;

    fn inter() -> TransferCost {
        // 400 Gbps EFA-class link at training efficiency.
        TransferCost::new(
            SimDuration::from_micros(100),
            Bandwidth::from_gbytes_per_sec(12.0),
        )
    }

    fn nvswitch() -> TransferCost {
        // A100 NVSwitch: 600 GB/s.
        TransferCost::new(
            SimDuration::from_micros(5),
            Bandwidth::from_gbytes_per_sec(600.0),
        )
    }

    #[test]
    fn hierarchical_bounds_flat_from_above() {
        let total = ByteSize::from_gb(2);
        let flat = collective_time(CollectiveKind::AllGather, 16, total, &inter());
        let hier = hierarchical_allgather_time(total, 16, 8, &inter(), &nvswitch());
        assert!(hier >= flat);
        // ...but by little: NVSwitch is 50× the NIC.
        let factor = hierarchy_overhead_factor(total, 16, 8, &inter(), &nvswitch());
        assert!((1.0..1.1).contains(&factor), "factor = {factor:.3}");
    }

    #[test]
    fn converges_to_flat_with_infinite_nvswitch() {
        let fast = TransferCost::pure_bandwidth(Bandwidth::from_gbytes_per_sec(1e9));
        let total = ByteSize::from_gb(2);
        let factor = hierarchy_overhead_factor(total, 16, 8, &inter(), &fast);
        assert!((factor - 1.0).abs() < 1e-6, "factor = {factor}");
    }

    #[test]
    fn single_gpu_per_node_equals_flat() {
        let total = ByteSize::from_gb(4);
        let flat = collective_time(CollectiveKind::AllGather, 8, total, &inter());
        let hier = hierarchical_allgather_time(total, 8, 1, &inter(), &nvswitch());
        assert_eq!(hier, flat);
    }

    #[test]
    fn slow_nvswitch_dominates() {
        // If the intra fabric were slower than the NIC, hierarchy costs.
        let slow = TransferCost::pure_bandwidth(Bandwidth::from_gbytes_per_sec(1.0));
        let factor = hierarchy_overhead_factor(ByteSize::from_gb(2), 16, 8, &inter(), &slow);
        assert!(factor > 2.0, "factor = {factor:.2}");
    }

    #[test]
    fn reduce_scatter_cheaper_than_allgather() {
        // No distribute phase.
        let total = ByteSize::from_gb(2);
        let ag = hierarchical_allgather_time(total, 16, 8, &inter(), &nvswitch());
        let rs = hierarchical_reduce_scatter_time(total, 16, 8, &inter(), &nvswitch());
        assert!(rs < ag);
    }
}
