//! Collective-communication cost models and schedules.
//!
//! ZeRO-3 training (the paper's setting) is dominated by three collectives
//! per layer: a parameter all-gather in the forward pass, another in the
//! backward pass, and a gradient reduce-scatter (§5.1). GEMINI itself adds
//! point-to-point checkpoint transfers and intra-group broadcasts.
//!
//! We model collectives at *machine granularity*: each machine's eight GPUs
//! talk over NVSwitch (hundreds of GB/s, not contended by checkpoint
//! traffic), while the inter-machine hops share the NIC that checkpoint
//! traffic also uses — the resource whose busy/idle structure GEMINI
//! schedules around. Costs follow the standard ring formulation: a ring
//! collective over `n` nodes moving total payload `S` takes `n − 1` steps of
//! `α + (S/n)/B` each.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod hierarchical;

use gemini_net::{ByteSize, TransferCost};
use gemini_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// The collectives used by ZeRO-3 training and GEMINI checkpointing.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum CollectiveKind {
    /// Gather the full (sharded) payload onto every node.
    AllGather,
    /// Reduce the payload and leave each node with its shard.
    ReduceScatter,
    /// ReduceScatter followed by AllGather.
    AllReduce,
    /// One node sends the payload to every other node.
    Broadcast,
    /// Every node exchanges a personalized shard with every other node —
    /// the expert-parallel dispatch/combine pattern of MoE training.
    AllToAll,
}

/// One inter-node transfer in an unrolled collective schedule.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ScheduledTransfer {
    /// Sending node.
    pub src: usize,
    /// Receiving node.
    pub dst: usize,
    /// Payload of this step.
    pub size: ByteSize,
    /// Ring step index (steps with the same index run concurrently).
    pub step: usize,
}

/// Number of ring steps for a collective over `nodes` nodes.
pub fn ring_steps(kind: CollectiveKind, nodes: usize) -> usize {
    if nodes <= 1 {
        return 0;
    }
    match kind {
        CollectiveKind::AllGather | CollectiveKind::ReduceScatter => nodes - 1,
        CollectiveKind::AllReduce => 2 * (nodes - 1),
        CollectiveKind::Broadcast => nodes - 1,
        CollectiveKind::AllToAll => nodes - 1,
    }
}

/// Bytes each node's NIC sends (and receives) during a ring collective over
/// `nodes` nodes with total payload `total`.
pub fn bytes_per_node(kind: CollectiveKind, nodes: usize, total: ByteSize) -> ByteSize {
    if nodes <= 1 {
        return ByteSize::ZERO;
    }
    let n = nodes as u64;
    match kind {
        CollectiveKind::AllGather | CollectiveKind::ReduceScatter => {
            // (n-1)/n of the payload crosses each NIC.
            total * (n - 1) / n
        }
        CollectiveKind::AllReduce => total * (2 * (n - 1)) / n,
        CollectiveKind::Broadcast => total, // pipelined chain: payload crosses each link once
        CollectiveKind::AllToAll => {
            // `total` is the global payload; each node owns total/n of it and
            // keeps the 1/n share destined to itself.
            total * (n - 1) / (n * n)
        }
    }
}

/// Wall-clock time of a ring collective over `nodes` nodes with total
/// payload `total` under point-to-point cost `cost`. Single-node collectives
/// are free (NVSwitch-internal).
pub fn collective_time(
    kind: CollectiveKind,
    nodes: usize,
    total: ByteSize,
    cost: &TransferCost,
) -> SimDuration {
    let steps = ring_steps(kind, nodes);
    if steps == 0 {
        return SimDuration::ZERO;
    }
    let shard = total / nodes as u64;
    match kind {
        CollectiveKind::AllGather | CollectiveKind::ReduceScatter => {
            cost.time_n(shard, steps as u64)
        }
        CollectiveKind::AllReduce => cost.time_n(shard, steps as u64),
        CollectiveKind::Broadcast => {
            // Pipelined chain broadcast: latency ≈ one full payload plus the
            // pipeline fill (negligible for our chunk counts); we charge the
            // conservative `steps × α + total/B`.
            SimDuration::from_secs_f64(
                cost.alpha.as_secs_f64() * steps as f64 + cost.bandwidth.seconds_for(total),
            )
        }
        CollectiveKind::AllToAll => {
            // n − 1 pairwise rounds; each round every NIC moves a 1/(n(n−1))
            // slice of the global payload.
            cost.time_n(total / (nodes * steps) as u64, steps as u64)
        }
    }
}

/// Unrolls a ring all-gather over `nodes` nodes into per-step transfers.
/// Node `i` initially holds shard `i`; at step `s`, node `i` sends the shard
/// it received at step `s − 1` (initially its own) to node `(i + 1) mod n`.
pub fn ring_allgather_schedule(nodes: usize, total: ByteSize) -> Vec<ScheduledTransfer> {
    if nodes <= 1 {
        return Vec::new();
    }
    let shard = total / nodes as u64;
    let mut out = Vec::with_capacity(nodes * (nodes - 1));
    for step in 0..nodes - 1 {
        for src in 0..nodes {
            out.push(ScheduledTransfer {
                src,
                dst: (src + 1) % nodes,
                size: shard,
                step,
            });
        }
    }
    out
}

/// Unrolls a chain broadcast from `root` over `nodes` nodes: the payload is
/// forwarded hop by hop around the ring.
pub fn chain_broadcast_schedule(
    nodes: usize,
    root: usize,
    total: ByteSize,
) -> Vec<ScheduledTransfer> {
    if nodes <= 1 {
        return Vec::new();
    }
    (0..nodes - 1)
        .map(|step| {
            let src = (root + step) % nodes;
            ScheduledTransfer {
                src,
                dst: (src + 1) % nodes,
                size: total,
                step,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemini_net::{Bandwidth, Fabric, FabricConfig};
    use gemini_sim::SimTime;

    fn cost() -> TransferCost {
        TransferCost::new(
            SimDuration::from_micros(100),
            Bandwidth::from_gbytes_per_sec(10.0),
        )
    }

    #[test]
    fn single_node_collectives_are_free() {
        for kind in [
            CollectiveKind::AllGather,
            CollectiveKind::ReduceScatter,
            CollectiveKind::AllReduce,
            CollectiveKind::Broadcast,
        ] {
            assert_eq!(
                collective_time(kind, 1, ByteSize::from_gb(10), &cost()),
                SimDuration::ZERO
            );
            assert_eq!(
                bytes_per_node(kind, 1, ByteSize::from_gb(10)),
                ByteSize::ZERO
            );
        }
    }

    #[test]
    fn allgather_time_matches_ring_formula() {
        // 16 nodes, 16 GB total: 15 steps × (α + 1 GB / 10 GB/s).
        let t = collective_time(
            CollectiveKind::AllGather,
            16,
            ByteSize::from_gb(16),
            &cost(),
        );
        let expected = 15.0 * (100e-6 + 0.1);
        assert!((t.as_secs_f64() - expected).abs() < 1e-9);
    }

    #[test]
    fn allreduce_is_twice_reduce_scatter() {
        let total = ByteSize::from_gb(8);
        let rs = collective_time(CollectiveKind::ReduceScatter, 8, total, &cost());
        let ar = collective_time(CollectiveKind::AllReduce, 8, total, &cost());
        assert!((ar.as_secs_f64() - 2.0 * rs.as_secs_f64()).abs() < 1e-9);
    }

    #[test]
    fn bytes_per_node_fractions() {
        let total = ByteSize::from_gb(16);
        assert_eq!(
            bytes_per_node(CollectiveKind::AllGather, 16, total),
            ByteSize::from_gb(15)
        );
        assert_eq!(
            bytes_per_node(CollectiveKind::AllReduce, 16, total),
            ByteSize::from_gb(30)
        );
        assert_eq!(bytes_per_node(CollectiveKind::Broadcast, 4, total), total);
    }

    #[test]
    fn allgather_schedule_has_all_steps_and_conserves_bytes() {
        let nodes = 5;
        let total = ByteSize::from_gb(10);
        let sched = ring_allgather_schedule(nodes, total);
        assert_eq!(sched.len(), nodes * (nodes - 1));
        let sent: ByteSize = sched.iter().map(|t| t.size).sum();
        // Each node sends (n-1) shards of total/n.
        assert_eq!(sent, ByteSize::from_gb(10) / 5 * 20);
        // Every node sends exactly once per step.
        for step in 0..nodes - 1 {
            let mut senders: Vec<usize> = sched
                .iter()
                .filter(|t| t.step == step)
                .map(|t| t.src)
                .collect();
            senders.sort_unstable();
            assert_eq!(senders, (0..nodes).collect::<Vec<_>>());
        }
    }

    #[test]
    fn schedule_executed_on_fabric_matches_cost_model() {
        // Cross-validation: running the unrolled all-gather on the fabric
        // (step-synchronous) finishes at the analytic collective_time.
        let nodes = 6;
        let total = ByteSize::from_gb(12);
        let c = cost();
        let mut fabric = Fabric::new(FabricConfig {
            machines: nodes,
            network: c,
            copy: c,
        });
        let sched = ring_allgather_schedule(nodes, total);
        let mut now = SimTime::ZERO;
        for step in 0..nodes - 1 {
            let mut step_end = now;
            for t in sched.iter().filter(|t| t.step == step) {
                let rec = fabric.transfer(now, t.src, t.dst, t.size).unwrap();
                step_end = step_end.max(rec.span.end);
            }
            now = step_end;
        }
        let analytic = collective_time(CollectiveKind::AllGather, nodes, total, &c);
        let simulated = now - SimTime::ZERO;
        assert!(
            (simulated.as_secs_f64() - analytic.as_secs_f64()).abs() < 1e-9,
            "simulated {simulated} vs analytic {analytic}"
        );
    }

    #[test]
    fn chain_broadcast_reaches_everyone_once() {
        let sched = chain_broadcast_schedule(4, 2, ByteSize::from_gb(1));
        assert_eq!(sched.len(), 3);
        let dsts: Vec<usize> = sched.iter().map(|t| t.dst).collect();
        assert_eq!(dsts, vec![3, 0, 1]);
    }

    #[test]
    fn ring_steps_counts() {
        assert_eq!(ring_steps(CollectiveKind::AllGather, 16), 15);
        assert_eq!(ring_steps(CollectiveKind::AllReduce, 16), 30);
        assert_eq!(ring_steps(CollectiveKind::Broadcast, 1), 0);
    }
}
