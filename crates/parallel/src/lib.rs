//! A deterministic, dependency-free parallel execution layer.
//!
//! The experiment harness sweeps placement probabilities, failure rates,
//! seeds and solutions — embarrassingly parallel work that nonetheless must
//! stay **byte-identical** to serial runs: every figure, CSV and telemetry
//! export in this repository is compared across runs (and across `--jobs`
//! counts) by the determinism tests.
//!
//! The contract that makes this safe:
//!
//! 1. Work is expressed as an *indexed* task set `0..tasks`; the task body
//!    is a pure-ish `Fn(usize) -> T` whose output depends only on the task
//!    index (stochastic tasks fork a [`DetRng`-style] child stream from
//!    their index, never from shared mutable state).
//! 2. Workers pull indices from a shared atomic counter — scheduling is
//!    racy and load-balancing, but results are collected *by index*, so
//!    the returned `Vec<T>` has exactly the order a serial loop would
//!    produce regardless of which worker ran what, in what order.
//! 3. `jobs <= 1` (or a single task) short-circuits to a plain serial loop
//!    on the calling thread — not even a thread is spawned — so `--jobs 1`
//!    is *literally* the serial code path, not an emulation of it.
//!
//! No external crates: the pool is built on [`std::thread::scope`], which
//! both keeps the offline stub build working and lets task closures borrow
//! from the caller's stack.
//!
//! [`DetRng`-style]: https://docs.rs/rand_chacha

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Execution statistics of one [`par_map_stats`] call, for perf tracking
/// (`BENCH_harness.json`) and the `parallel.*` telemetry metrics.
///
/// `busy` sums the per-task wall times across all workers; `wall` is the
/// end-to-end duration of the call. `busy / wall` is therefore the
/// *observed* speedup (≈ `jobs` when the task set load-balances well).
#[derive(Clone, Copy, Debug)]
pub struct ParStats {
    /// Number of tasks executed.
    pub tasks: usize,
    /// Worker threads used (1 = serial fast path).
    pub jobs: usize,
    /// End-to-end wall-clock time of the call.
    pub wall: Duration,
    /// Sum of per-task execution times across all workers.
    pub busy: Duration,
}

impl ParStats {
    /// Observed speedup: total task time divided by wall-clock time.
    /// Returns 1.0 for degenerate (zero-duration) runs.
    pub fn speedup(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall <= 0.0 {
            1.0
        } else {
            (self.busy.as_secs_f64() / wall).max(1.0)
        }
    }
}

/// The process-wide default job count, used by harness entry points whose
/// signatures predate the parallel layer (`render_all`, the figure
/// regenerators). `0` means "unset"; [`default_jobs`] then falls back to
/// the `GEMINI_JOBS` environment variable, then to `1` (serial).
static DEFAULT_JOBS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide default job count (the `--jobs` flag of the bench
/// binaries lands here). `0` clears the override.
pub fn set_default_jobs(jobs: usize) {
    DEFAULT_JOBS.store(jobs, Ordering::Relaxed);
}

/// Reads the `GEMINI_JOBS` environment variable, if set and valid.
pub fn jobs_from_env() -> Option<usize> {
    std::env::var("GEMINI_JOBS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&j| j >= 1)
}

/// The effective default job count: the [`set_default_jobs`] override if
/// set, else `GEMINI_JOBS`, else 1 (serial). Serial-by-default keeps unit
/// tests and library consumers on the exact historical code path unless
/// they opt in.
pub fn default_jobs() -> usize {
    match DEFAULT_JOBS.load(Ordering::Relaxed) {
        0 => jobs_from_env().unwrap_or(1),
        j => j,
    }
}

/// Resolves an explicit job request against the defaults: `Some(j)` wins,
/// `None` falls back to [`default_jobs`]. Zero is normalized to 1.
pub fn resolve_jobs(explicit: Option<usize>) -> usize {
    explicit.unwrap_or_else(default_jobs).max(1)
}

/// Splits `total` items into contiguous `(start, end)` shards of at most
/// `shard_size` items. The shard structure depends only on `(total,
/// shard_size)` — never on the job count — which is what lets sharded
/// Monte-Carlo estimators produce identical sums at any parallelism.
pub fn shard_ranges(total: usize, shard_size: usize) -> Vec<(usize, usize)> {
    let shard_size = shard_size.max(1);
    let mut out = Vec::with_capacity(total.div_ceil(shard_size));
    let mut start = 0;
    while start < total {
        let end = (start + shard_size).min(total);
        out.push((start, end));
        start = end;
    }
    out
}

/// Maps `task(i)` over `0..tasks` with up to `jobs` worker threads and
/// returns the results **in task order** — byte-identical to
/// `(0..tasks).map(task).collect()` regardless of scheduling.
///
/// Panics in a task are propagated to the caller (the scope re-raises
/// them after all workers have stopped).
///
/// # Examples
///
/// ```
/// let squares = gemini_parallel::par_map(4, 8, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn par_map<T, F>(jobs: usize, tasks: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_stats(jobs, tasks, task).0
}

/// [`par_map`], additionally returning [`ParStats`] for perf accounting.
pub fn par_map_stats<T, F>(jobs: usize, tasks: usize, task: F) -> (Vec<T>, ParStats)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let started = Instant::now();
    let jobs = jobs.max(1).min(tasks.max(1));
    if jobs <= 1 || tasks <= 1 {
        // The serial fast path: the historical code, on the calling thread.
        let out: Vec<T> = (0..tasks).map(&task).collect();
        let wall = started.elapsed();
        return (
            out,
            ParStats {
                tasks,
                jobs: 1,
                wall,
                busy: wall,
            },
        );
    }

    // Shared cursor: workers race to claim the next index; results carry
    // their index so collection order is irrelevant.
    let next = AtomicUsize::new(0);
    let busy_nanos = AtomicUsize::new(0);
    // One result bucket per worker, merged by index afterwards. A Mutex
    // around plain Vecs keeps the pool free of unsafe code; it is locked
    // once per worker (at exit), not per task.
    let buckets: Mutex<Vec<Vec<(usize, T)>>> = Mutex::new(Vec::with_capacity(jobs));
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| {
                let mut local: Vec<(usize, T)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= tasks {
                        break;
                    }
                    let t0 = Instant::now();
                    let value = task(i);
                    busy_nanos.fetch_add(t0.elapsed().as_nanos() as usize, Ordering::Relaxed);
                    local.push((i, value));
                }
                buckets.lock().expect("result bucket poisoned").push(local);
            });
        }
    });

    // Deterministic merge: scatter into index slots.
    let mut slots: Vec<Option<T>> = (0..tasks).map(|_| None).collect();
    for bucket in buckets.into_inner().expect("result bucket poisoned") {
        for (i, value) in bucket {
            debug_assert!(slots[i].is_none(), "task {i} ran twice");
            slots[i] = Some(value);
        }
    }
    let out: Vec<T> = slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| slot.unwrap_or_else(|| panic!("task {i} produced no result")))
        .collect();
    let stats = ParStats {
        tasks,
        jobs,
        wall: started.elapsed(),
        busy: Duration::from_nanos(busy_nanos.load(Ordering::Relaxed) as u64),
    };
    (out, stats)
}

/// Maps a fallible task over `0..tasks`, short-circuiting on the first
/// error *by task index* (the lowest-indexed error wins, matching what a
/// serial loop would have returned even though later tasks may already
/// have run).
pub fn try_par_map<T, E, F>(jobs: usize, tasks: usize, task: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    let results = par_map(jobs, tasks, task);
    // Deterministic error selection: first failing index.
    let mut out = Vec::with_capacity(results.len());
    for r in results {
        out.push(r?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_are_in_task_order() {
        for jobs in [1, 2, 3, 8, 32] {
            let out = par_map(jobs, 100, |i| i * 3);
            assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_tasks_is_empty() {
        let out: Vec<usize> = par_map(4, 0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn jobs_are_clamped_to_tasks() {
        let (_, stats) = par_map_stats(64, 3, |i| i);
        assert!(stats.jobs <= 3);
        assert_eq!(stats.tasks, 3);
    }

    #[test]
    fn serial_fast_path_reports_one_job() {
        let (_, stats) = par_map_stats(1, 10, |i| i);
        assert_eq!(stats.jobs, 1);
        assert!(stats.speedup() >= 1.0);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = par_map(8, 1000, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
        assert_eq!(out.len(), 1000);
        assert!(out.iter().enumerate().all(|(i, &v)| i == v));
    }

    #[test]
    fn parallel_matches_serial_bytewise() {
        // A stochastic-looking task: a splitmix hash of the index. Any
        // divergence between job counts would show immediately.
        let h = |i: usize| {
            let mut z = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z ^ (z >> 27)
        };
        let serial = par_map(1, 257, h);
        for jobs in [2, 4, 7, 16] {
            assert_eq!(par_map(jobs, 257, h), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn try_par_map_returns_lowest_index_error() {
        let r: Result<Vec<usize>, usize> =
            try_par_map(4, 100, |i| if i % 30 == 17 { Err(i) } else { Ok(i) });
        assert_eq!(r, Err(17));
        let ok: Result<Vec<usize>, usize> = try_par_map(4, 10, Ok);
        assert_eq!(ok.unwrap().len(), 10);
    }

    #[test]
    fn shard_ranges_cover_exactly() {
        for (total, size) in [(0, 10), (1, 10), (10, 3), (4096, 1024), (1000, 1)] {
            let shards = shard_ranges(total, size);
            let mut expect = 0;
            for &(s, e) in &shards {
                assert_eq!(s, expect);
                assert!(e > s && e - s <= size.max(1));
                expect = e;
            }
            assert_eq!(expect, total);
        }
        // Shard structure is independent of any job count by construction.
        assert_eq!(shard_ranges(10_000, 1024).len(), 10);
    }

    #[test]
    fn default_jobs_resolution_order() {
        set_default_jobs(0);
        // Environment may or may not be set in the test runner; explicit
        // override always wins.
        set_default_jobs(6);
        assert_eq!(default_jobs(), 6);
        assert_eq!(resolve_jobs(None), 6);
        assert_eq!(resolve_jobs(Some(2)), 2);
        assert_eq!(resolve_jobs(Some(0)), 1);
        set_default_jobs(0);
    }

    #[test]
    fn stats_busy_accumulates() {
        let (_, stats) = par_map_stats(4, 64, |i| {
            // ~50µs of real work per task.
            let mut acc = i as u64;
            for k in 0..20_000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            std::hint::black_box(acc)
        });
        assert_eq!(stats.tasks, 64);
        // Timing is noisy under a loaded test runner; only the structural
        // properties are asserted.
        assert!(stats.busy.as_nanos() > 0, "busy={:?}", stats.busy);
        assert!(stats.speedup() >= 1.0);
    }
}
