//! A deterministic, dependency-free parallel execution layer.
//!
//! The experiment harness sweeps placement probabilities, failure rates,
//! seeds and solutions — embarrassingly parallel work that nonetheless must
//! stay **byte-identical** to serial runs: every figure, CSV and telemetry
//! export in this repository is compared across runs (and across `--jobs`
//! counts) by the determinism tests.
//!
//! The contract that makes this safe:
//!
//! 1. Work is expressed as an *indexed* task set `0..tasks`; the task body
//!    is a pure-ish `Fn(usize) -> T` whose output depends only on the task
//!    index (stochastic tasks fork a [`DetRng`-style] child stream from
//!    their index, never from shared mutable state).
//! 2. Workers pull contiguous index *chunks* from a shared atomic cursor —
//!    scheduling is racy and load-balancing, but results are collected *by
//!    index*, so the returned `Vec<T>` has exactly the order a serial loop
//!    would produce regardless of which worker ran what, in what order.
//! 3. The pool falls back to a plain serial loop on the calling thread —
//!    not even a thread is spawned — whenever parallelism cannot win:
//!    `jobs <= 1`, a single task, more workers than the host has cores
//!    (requests are clamped to [`host_parallelism`]), or a task set whose
//!    estimated total cost ([`TaskCost`]) is below the spawn overhead.
//!    `--jobs 1` is therefore *literally* the serial code path, and
//!    `--jobs N` on a saturated or single-core host degrades to it instead
//!    of losing to contention.
//!
//! The **granularity model**: workers claim chunks sized
//! `remaining / (2 × jobs)` (guided self-scheduling — large chunks early
//! to amortize the atomic cursor and the per-chunk timestamps, shrinking
//! toward [`TaskCost`]-derived minimum chunks so the tail still load
//! balances). Busy time is sampled per *chunk*, not per task, so cheap
//! tasks are not drowned in `Instant::now` calls.
//!
//! No external crates: the pool is built on [`std::thread::scope`], which
//! both keeps the offline stub build working and lets task closures borrow
//! from the caller's stack.
//!
//! [`DetRng`-style]: https://docs.rs/rand_chacha

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Execution statistics of one [`par_map_stats`] call, for perf tracking
/// (`BENCH_harness.json`) and the `parallel.*` telemetry metrics.
///
/// `busy` sums the per-chunk wall times across all workers; `wall` is the
/// end-to-end duration of the call. `busy / wall` is therefore the
/// *observed* speedup (≈ `jobs` when the task set load-balances well).
#[derive(Clone, Copy, Debug)]
pub struct ParStats {
    /// Number of tasks executed.
    pub tasks: usize,
    /// Worker threads actually used (1 = the serial fast path ran).
    pub jobs: usize,
    /// Worker threads the caller asked for, before clamping to the task
    /// count and [`host_parallelism`]. `jobs < requested` means the pool
    /// fell back (core clamp or [`TaskCost`] threshold).
    pub requested: usize,
    /// End-to-end wall-clock time of the call.
    pub wall: Duration,
    /// Sum of per-chunk execution times across all workers.
    pub busy: Duration,
}

impl ParStats {
    /// Observed speedup: total task time divided by wall-clock time.
    /// Returns 1.0 for degenerate (zero-duration) runs.
    pub fn speedup(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall <= 0.0 {
            1.0
        } else {
            (self.busy.as_secs_f64() / wall).max(1.0)
        }
    }

    /// Whether the pool ran the serial fast path despite a multi-worker
    /// request — i.e. the "parallel" run *is* the serial code path.
    pub fn serial_fallback(&self) -> bool {
        self.jobs == 1 && self.requested > 1
    }
}

/// A coarse per-task wall-clock estimate, used by the granularity model to
/// (a) skip thread spawning entirely when the whole task set costs less
/// than the spawn overhead and (b) batch trivially cheap tasks into larger
/// claim chunks.
///
/// Estimates only steer scheduling; results are byte-identical whatever
/// the hint says.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskCost {
    /// Estimated wall-clock cost of one task, in nanoseconds.
    pub nanos: u64,
}

impl TaskCost {
    /// No estimate: always worth parallelizing (the historical behaviour
    /// of [`par_map`]), with fine-grained chunking.
    pub const UNKNOWN: TaskCost = TaskCost { nanos: u64::MAX };

    /// An estimate in microseconds per task.
    pub const fn micros(us: u64) -> TaskCost {
        TaskCost {
            nanos: us.saturating_mul(1_000),
        }
    }

    /// An estimate in milliseconds per task.
    pub const fn millis(ms: u64) -> TaskCost {
        TaskCost {
            nanos: ms.saturating_mul(1_000_000),
        }
    }
}

/// Below this estimated *total* cost, spawning workers is guaranteed to
/// lose to the serial loop (thread spawn + join alone costs tens of
/// microseconds per worker), so the pool runs serial.
pub const SERIAL_FALLBACK_NANOS: u64 = 400_000;

/// Target wall-clock per claimed chunk: cheap tasks batch until a chunk is
/// worth roughly this much, amortizing the shared cursor and the per-chunk
/// `Instant` samples.
const CHUNK_TARGET_NANOS: u64 = 50_000;

/// Upper bound on a single claim, so one worker can never run away with
/// the whole tail of a task set.
const MAX_CHUNK: usize = 1024;

/// The process-wide default job count, used by harness entry points whose
/// signatures predate the parallel layer (`render_all`, the figure
/// regenerators). `0` means "unset"; [`default_jobs`] then falls back to
/// the `GEMINI_JOBS` environment variable, then to `1` (serial).
static DEFAULT_JOBS: AtomicUsize = AtomicUsize::new(0);

/// Test/bench override for [`host_parallelism`]; `0` = use the real value.
static HOST_PARALLELISM_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide default job count (the `--jobs` flag of the bench
/// binaries lands here). `0` clears the override.
pub fn set_default_jobs(jobs: usize) {
    DEFAULT_JOBS.store(jobs, Ordering::Relaxed);
}

/// The number of hardware threads the host can actually run at once
/// (`std::thread::available_parallelism`, floor 1). Worker requests are
/// clamped to this: oversubscribing a single-core container with two
/// workers is how the figures path historically *lost* to serial.
pub fn host_parallelism() -> usize {
    match HOST_PARALLELISM_OVERRIDE.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

/// Overrides [`host_parallelism`] (tests and benches exercising the
/// parallel path on arbitrary hosts). `0` restores real detection.
#[doc(hidden)]
pub fn set_host_parallelism_override(n: usize) {
    HOST_PARALLELISM_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Reads the `GEMINI_JOBS` environment variable, if set and valid.
pub fn jobs_from_env() -> Option<usize> {
    std::env::var("GEMINI_JOBS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&j| j >= 1)
}

/// The effective default job count: the [`set_default_jobs`] override if
/// set, else `GEMINI_JOBS`, else 1 (serial). Serial-by-default keeps unit
/// tests and library consumers on the exact historical code path unless
/// they opt in.
pub fn default_jobs() -> usize {
    match DEFAULT_JOBS.load(Ordering::Relaxed) {
        0 => jobs_from_env().unwrap_or(1),
        j => j,
    }
}

/// Resolves an explicit job request against the defaults: `Some(j)` wins,
/// `None` falls back to [`default_jobs`]. Zero is normalized to 1.
pub fn resolve_jobs(explicit: Option<usize>) -> usize {
    explicit.unwrap_or_else(default_jobs).max(1)
}

/// Splits `total` items into contiguous `(start, end)` shards of at most
/// `shard_size` items. The shard structure depends only on `(total,
/// shard_size)` — never on the job count — which is what lets sharded
/// Monte-Carlo estimators produce identical sums at any parallelism.
pub fn shard_ranges(total: usize, shard_size: usize) -> Vec<(usize, usize)> {
    let shard_size = shard_size.max(1);
    let mut out = Vec::with_capacity(total.div_ceil(shard_size));
    let mut start = 0;
    while start < total {
        let end = (start + shard_size).min(total);
        out.push((start, end));
        start = end;
    }
    out
}

/// Maps `task(i)` over `0..tasks` with up to `jobs` worker threads and
/// returns the results **in task order** — byte-identical to
/// `(0..tasks).map(task).collect()` regardless of scheduling.
///
/// Panics in a task are propagated to the caller (the scope re-raises
/// them after all workers have stopped).
///
/// # Examples
///
/// ```
/// let squares = gemini_parallel::par_map(4, 8, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn par_map<T, F>(jobs: usize, tasks: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_stats(jobs, tasks, task).0
}

/// [`par_map`], additionally returning [`ParStats`] for perf accounting.
pub fn par_map_stats<T, F>(jobs: usize, tasks: usize, task: F) -> (Vec<T>, ParStats)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_stats_cost(jobs, tasks, TaskCost::UNKNOWN, task)
}

/// [`par_map`] with a per-task cost estimate steering the granularity
/// model: task sets cheaper than the spawn overhead run serially, and
/// trivially cheap tasks are claimed in larger chunks.
pub fn par_map_cost<T, F>(jobs: usize, tasks: usize, cost: TaskCost, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_stats_cost(jobs, tasks, cost, task).0
}

/// [`par_map_cost`], additionally returning [`ParStats`].
pub fn par_map_stats_cost<T, F>(
    jobs: usize,
    tasks: usize,
    cost: TaskCost,
    task: F,
) -> (Vec<T>, ParStats)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let started = Instant::now();
    let requested = jobs.max(1);
    let jobs = requested.min(tasks.max(1)).min(host_parallelism());
    // Estimated total cost below the spawn overhead ⇒ threads cannot win.
    let too_cheap = cost.nanos != u64::MAX
        && cost.nanos.saturating_mul(tasks as u64) < SERIAL_FALLBACK_NANOS;
    if jobs <= 1 || tasks <= 1 || too_cheap {
        // The serial fast path: the historical code, on the calling thread.
        let out: Vec<T> = (0..tasks).map(&task).collect();
        let wall = started.elapsed();
        return (
            out,
            ParStats {
                tasks,
                jobs: 1,
                requested,
                wall,
                busy: wall,
            },
        );
    }

    // Minimum claim: batch tasks until a chunk is worth ~CHUNK_TARGET.
    let min_chunk = if cost.nanos == u64::MAX {
        1
    } else {
        (CHUNK_TARGET_NANOS / cost.nanos.max(1)).clamp(1, MAX_CHUNK as u64) as usize
    };

    // Shared cursor: workers race to claim the next chunk of indices;
    // results carry their index so collection order is irrelevant.
    let next = AtomicUsize::new(0);
    let busy_nanos = AtomicUsize::new(0);
    // One result bucket per worker, merged by index afterwards. A Mutex
    // around plain Vecs keeps the pool free of unsafe code; it is locked
    // once per worker (at exit), not per task.
    let buckets: Mutex<Vec<Vec<(usize, T)>>> = Mutex::new(Vec::with_capacity(jobs));
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| {
                let mut local: Vec<(usize, T)> = Vec::new();
                let mut local_busy = 0u128;
                loop {
                    // Guided self-scheduling: claim a fraction of what is
                    // left (large early, shrinking toward min_chunk so the
                    // tail still balances). The load is advisory — racing
                    // claims only change chunk sizes, never correctness.
                    let seen = next.load(Ordering::Relaxed);
                    if seen >= tasks {
                        break;
                    }
                    let chunk = ((tasks - seen) / (2 * jobs))
                        .clamp(min_chunk, MAX_CHUNK);
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= tasks {
                        break;
                    }
                    let end = (start + chunk).min(tasks);
                    let t0 = Instant::now();
                    for i in start..end {
                        local.push((i, task(i)));
                    }
                    local_busy += t0.elapsed().as_nanos();
                }
                busy_nanos.fetch_add(local_busy as usize, Ordering::Relaxed);
                buckets.lock().expect("result bucket poisoned").push(local);
            });
        }
    });

    // Deterministic merge: scatter into index slots.
    let mut slots: Vec<Option<T>> = (0..tasks).map(|_| None).collect();
    for bucket in buckets.into_inner().expect("result bucket poisoned") {
        for (i, value) in bucket {
            debug_assert!(slots[i].is_none(), "task {i} ran twice");
            slots[i] = Some(value);
        }
    }
    let out: Vec<T> = slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| slot.unwrap_or_else(|| panic!("task {i} produced no result")))
        .collect();
    let stats = ParStats {
        tasks,
        jobs,
        requested,
        wall: started.elapsed(),
        busy: Duration::from_nanos(busy_nanos.load(Ordering::Relaxed) as u64),
    };
    (out, stats)
}

/// Maps a fallible task over `0..tasks`, short-circuiting on the first
/// error *by task index* (the lowest-indexed error wins, matching what a
/// serial loop would have returned even though later tasks may already
/// have run).
pub fn try_par_map<T, E, F>(jobs: usize, tasks: usize, task: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    let results = par_map(jobs, tasks, task);
    // Deterministic error selection: first failing index.
    let mut out = Vec::with_capacity(results.len());
    for r in results {
        out.push(r?);
    }
    Ok(out)
}

/// The lifecycle of one in-flight computation inside a [`SingleFlight`].
enum FlightState<V> {
    /// The leader is still computing; followers wait on the condvar.
    Pending,
    /// The leader finished; followers clone this value.
    Done(V),
    /// The leader panicked before producing a value; followers fall back
    /// to computing independently (no dedup, but no deadlock either).
    Abandoned,
}

type FlightSlot<V> = Arc<(Mutex<FlightState<V>>, Condvar)>;

/// Collapses *concurrent* identical computations: while a computation for
/// key `K` is in flight, every other caller with the same key blocks and
/// receives a clone of the leader's result instead of recomputing.
///
/// This is deduplication, not caching — once the leader completes, the key
/// is forgotten and the next caller computes afresh. Long-lived memoization
/// belongs in a cache in front of this; `SingleFlight` only shields a
/// service from redundant work when many tenants ask the same expensive
/// question *at the same moment*.
///
/// Determinism: callers receive a clone of the value the leader computed,
/// so as long as the computation itself is a pure function of the key, the
/// responses are byte-identical whether a caller led, followed, or ran
/// alone. Only the [`dedup_hits`](SingleFlight::dedup_hits) /
/// [`executions`](SingleFlight::executions) telemetry counters are
/// timing-dependent.
///
/// A leader that panics marks its slot [`FlightState::Abandoned`] and
/// wakes all followers, which then compute independently — a malformed
/// computation can never strand other tenants on a condvar.
pub struct SingleFlight<K: Ord + Clone, V: Clone> {
    slots: Mutex<BTreeMap<K, FlightSlot<V>>>,
    executions: AtomicU64,
    dedup_hits: AtomicU64,
}

impl<K: Ord + Clone, V: Clone> Default for SingleFlight<K, V> {
    fn default() -> Self {
        SingleFlight::new()
    }
}

/// Restores a slot to a follower-safe state if the leader unwinds before
/// publishing a value.
struct AbandonGuard<'a, K: Ord + Clone, V: Clone> {
    flight: &'a SingleFlight<K, V>,
    key: &'a K,
    slot: &'a FlightSlot<V>,
    armed: bool,
}

impl<K: Ord + Clone, V: Clone> Drop for AbandonGuard<'_, K, V> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let (lock, cv) = &**self.slot;
        *lock.lock().expect("single-flight slot poisoned") = FlightState::Abandoned;
        cv.notify_all();
        self.flight
            .slots
            .lock()
            .expect("single-flight map poisoned")
            .remove(self.key);
    }
}

impl<K: Ord + Clone, V: Clone> SingleFlight<K, V> {
    /// An empty single-flight group.
    pub const fn new() -> SingleFlight<K, V> {
        SingleFlight {
            slots: Mutex::new(BTreeMap::new()),
            executions: AtomicU64::new(0),
            dedup_hits: AtomicU64::new(0),
        }
    }

    /// Runs `compute` for `key`, deduplicating against concurrent callers:
    /// exactly one caller (the leader) executes `compute`; the rest block
    /// and receive a clone of its result. Returns the value plus `true` if
    /// this caller was the leader.
    pub fn run<F: FnOnce() -> V>(&self, key: K, compute: F) -> (V, bool) {
        let existing = {
            let mut slots = self.slots.lock().expect("single-flight map poisoned");
            match slots.get(&key) {
                Some(slot) => Some(Arc::clone(slot)),
                None => {
                    let slot: FlightSlot<V> =
                        Arc::new((Mutex::new(FlightState::Pending), Condvar::new()));
                    slots.insert(key.clone(), Arc::clone(&slot));
                    drop(slots);
                    let mut guard = AbandonGuard {
                        flight: self,
                        key: &key,
                        slot: &slot,
                        armed: true,
                    };
                    let value = compute();
                    {
                        let (lock, cv) = &*slot;
                        *lock.lock().expect("single-flight slot poisoned") =
                            FlightState::Done(value.clone());
                        cv.notify_all();
                    }
                    self.slots
                        .lock()
                        .expect("single-flight map poisoned")
                        .remove(&key);
                    guard.armed = false;
                    self.executions.fetch_add(1, Ordering::Relaxed);
                    return (value, true);
                }
            }
        };
        // Follower: wait for the leader's verdict.
        let slot = existing.expect("follower always has a slot");
        let (lock, cv) = &*slot;
        let mut state = lock.lock().expect("single-flight slot poisoned");
        loop {
            match &*state {
                FlightState::Pending => {
                    state = cv.wait(state).expect("single-flight slot poisoned");
                }
                FlightState::Done(v) => {
                    self.dedup_hits.fetch_add(1, Ordering::Relaxed);
                    return (v.clone(), false);
                }
                FlightState::Abandoned => {
                    drop(state);
                    // The leader unwound: compute independently rather
                    // than deadlock or re-enter (no dedup for this call).
                    self.executions.fetch_add(1, Ordering::Relaxed);
                    return (compute(), false);
                }
            }
        }
    }

    /// How many times a computation actually executed (leaders, plus
    /// followers that recovered from an abandoned leader).
    pub fn executions(&self) -> u64 {
        self.executions.load(Ordering::Relaxed)
    }

    /// How many callers were served a leader's result instead of
    /// recomputing — the work the dedup saved.
    pub fn dedup_hits(&self) -> u64 {
        self.dedup_hits.load(Ordering::Relaxed)
    }

    /// Number of computations currently in flight.
    pub fn in_flight(&self) -> usize {
        self.slots
            .lock()
            .expect("single-flight map poisoned")
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Pool tests force a generous core budget so the parallel code path
    /// is exercised even on single-core CI containers; the clamp itself is
    /// tested separately. The override is monotonic (never lowered below a
    /// concurrently-running test's expectation) and only widens the paths
    /// other tests may take — byte-identity holds on all of them.
    fn with_cores<R>(n: usize, f: impl FnOnce() -> R) -> R {
        set_host_parallelism_override(n);
        let r = f();
        set_host_parallelism_override(0);
        r
    }

    #[test]
    fn results_are_in_task_order() {
        for jobs in [1, 2, 3, 8, 32] {
            let out = with_cores(8, || par_map(jobs, 100, |i| i * 3));
            assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_tasks_is_empty() {
        let out: Vec<usize> = par_map(4, 0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn jobs_are_clamped_to_tasks() {
        let (_, stats) = par_map_stats(64, 3, |i| i);
        assert!(stats.jobs <= 3);
        assert_eq!(stats.tasks, 3);
        assert_eq!(stats.requested, 64);
    }

    #[test]
    fn jobs_are_clamped_to_host_cores() {
        let (_, stats) = with_cores(2, || par_map_stats(16, 64, |i| i));
        assert!(stats.jobs <= 2, "jobs={}", stats.jobs);
        assert_eq!(stats.requested, 16);
        // On a (forced) single-core host a multi-worker request runs the
        // serial path and says so.
        let (_, stats) = with_cores(1, || par_map_stats(4, 64, |i| i));
        assert_eq!(stats.jobs, 1);
        assert!(stats.serial_fallback());
    }

    #[test]
    fn serial_fast_path_reports_one_job() {
        let (_, stats) = par_map_stats(1, 10, |i| i);
        assert_eq!(stats.jobs, 1);
        assert!(!stats.serial_fallback());
        assert!(stats.speedup() >= 1.0);
    }

    #[test]
    fn cheap_task_sets_fall_back_to_serial() {
        // 100 tasks × 1µs ≈ 100µs — far below the spawn overhead.
        let (out, stats) = with_cores(8, || {
            par_map_stats_cost(8, 100, TaskCost::micros(1), |i| i + 1)
        });
        assert_eq!(stats.jobs, 1);
        assert!(stats.serial_fallback());
        assert_eq!(out, (1..=100).collect::<Vec<_>>());
        // The same set with an expensive estimate does spawn workers.
        let (_, stats) = with_cores(8, || {
            par_map_stats_cost(8, 100, TaskCost::millis(5), |i| i + 1)
        });
        assert!(stats.jobs > 1, "jobs={}", stats.jobs);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = with_cores(8, || {
            par_map(8, 1000, |i| {
                counter.fetch_add(1, Ordering::Relaxed);
                i
            })
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
        assert_eq!(out.len(), 1000);
        assert!(out.iter().enumerate().all(|(i, &v)| i == v));
    }

    #[test]
    fn chunked_claiming_covers_ragged_sizes() {
        // Sizes that do not divide evenly into chunks, with cost hints
        // driving every min_chunk regime.
        for tasks in [2usize, 3, 5, 63, 64, 65, 1023, 2048] {
            for cost in [TaskCost::UNKNOWN, TaskCost::micros(1), TaskCost::millis(50)] {
                let out = with_cores(4, || par_map_cost(4, tasks, cost, |i| i * 7));
                assert_eq!(
                    out,
                    (0..tasks).map(|i| i * 7).collect::<Vec<_>>(),
                    "tasks={tasks} cost={cost:?}"
                );
            }
        }
    }

    #[test]
    fn parallel_matches_serial_bytewise() {
        // A stochastic-looking task: a splitmix hash of the index. Any
        // divergence between job counts would show immediately.
        let h = |i: usize| {
            let mut z = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z ^ (z >> 27)
        };
        let serial = par_map(1, 257, h);
        for jobs in [2, 4, 7, 16] {
            let par = with_cores(8, || par_map(jobs, 257, h));
            assert_eq!(par, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn try_par_map_returns_lowest_index_error() {
        let r: Result<Vec<usize>, usize> = with_cores(4, || {
            try_par_map(4, 100, |i| if i % 30 == 17 { Err(i) } else { Ok(i) })
        });
        assert_eq!(r, Err(17));
        let ok: Result<Vec<usize>, usize> = try_par_map(4, 10, Ok);
        assert_eq!(ok.unwrap().len(), 10);
    }

    #[test]
    fn shard_ranges_cover_exactly() {
        for (total, size) in [(0, 10), (1, 10), (10, 3), (4096, 1024), (1000, 1)] {
            let shards = shard_ranges(total, size);
            let mut expect = 0;
            for &(s, e) in &shards {
                assert_eq!(s, expect);
                assert!(e > s && e - s <= size.max(1));
                expect = e;
            }
            assert_eq!(expect, total);
        }
        // Shard structure is independent of any job count by construction.
        assert_eq!(shard_ranges(10_000, 1024).len(), 10);
    }

    #[test]
    fn default_jobs_resolution_order() {
        set_default_jobs(0);
        // Environment may or may not be set in the test runner; explicit
        // override always wins.
        set_default_jobs(6);
        assert_eq!(default_jobs(), 6);
        assert_eq!(resolve_jobs(None), 6);
        assert_eq!(resolve_jobs(Some(2)), 2);
        assert_eq!(resolve_jobs(Some(0)), 1);
        set_default_jobs(0);
    }

    #[test]
    fn single_flight_collapses_concurrent_identical_keys() {
        let flight: SingleFlight<u64, u64> = SingleFlight::new();
        let computed = AtomicUsize::new(0);
        let barrier = std::sync::Barrier::new(8);
        let results: Vec<(u64, bool)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(|| {
                        barrier.wait();
                        flight.run(42, || {
                            computed.fetch_add(1, Ordering::Relaxed);
                            // Hold the flight open long enough for every
                            // sibling to arrive as a follower.
                            std::thread::sleep(Duration::from_millis(100));
                            999
                        })
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(results.iter().all(|(v, _)| *v == 999));
        let leaders = results.iter().filter(|(_, led)| *led).count();
        assert_eq!(leaders as u64, flight.executions());
        assert_eq!(flight.dedup_hits(), 8 - flight.executions());
        // With a 100ms flight and a barrier start, at least one caller
        // must have followed rather than led.
        assert!(flight.dedup_hits() > 0, "no dedup observed");
        assert_eq!(computed.load(Ordering::Relaxed) as u64, flight.executions());
        assert_eq!(flight.in_flight(), 0);
    }

    #[test]
    fn single_flight_is_dedup_not_cache() {
        let flight: SingleFlight<&'static str, usize> = SingleFlight::new();
        let computed = AtomicUsize::new(0);
        let make = || {
            flight
                .run("k", || computed.fetch_add(1, Ordering::Relaxed) + 1)
                .0
        };
        assert_eq!(make(), 1);
        assert_eq!(make(), 2, "sequential calls must recompute");
        assert_eq!(flight.executions(), 2);
        assert_eq!(flight.dedup_hits(), 0);
    }

    #[test]
    fn single_flight_distinct_keys_run_independently() {
        let flight: SingleFlight<u64, u64> = SingleFlight::new();
        let out: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4u64)
                .map(|k| {
                    let flight = &flight;
                    scope.spawn(move || flight.run(k, move || k * 10).0)
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(out, vec![0, 10, 20, 30]);
        assert_eq!(flight.executions(), 4);
    }

    #[test]
    fn single_flight_abandoned_leader_does_not_strand_followers() {
        let flight: Arc<SingleFlight<u64, u64>> = Arc::new(SingleFlight::new());
        let entered = Arc::new(std::sync::Barrier::new(2));
        let leader = {
            let flight = Arc::clone(&flight);
            let entered = Arc::clone(&entered);
            std::thread::spawn(move || {
                let _ = flight.run(7, || {
                    entered.wait();
                    std::thread::sleep(Duration::from_millis(50));
                    panic!("leader dies mid-flight");
                });
            })
        };
        entered.wait(); // the leader is inside its computation now
        let (value, led) = flight.run(7, || 123);
        assert_eq!(value, 123, "follower must recover by computing itself");
        assert!(!led);
        assert!(leader.join().is_err(), "leader thread should have panicked");
        assert_eq!(flight.in_flight(), 0);
    }

    #[test]
    fn stats_busy_accumulates() {
        let (_, stats) = with_cores(4, || {
            par_map_stats(4, 64, |i| {
                // ~50µs of real work per task.
                let mut acc = i as u64;
                for k in 0..20_000u64 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                }
                std::hint::black_box(acc)
            })
        });
        assert_eq!(stats.tasks, 64);
        // Timing is noisy under a loaded test runner; only the structural
        // properties are asserted.
        assert!(stats.busy.as_nanos() > 0, "busy={:?}", stats.busy);
        assert!(stats.speedup() >= 1.0);
    }
}
