//! FIFO busy-resources.
//!
//! A [`BusyResource`] models a serially-used piece of hardware — a NIC
//! direction, a PCIe copy engine, a storage writer — that serves requests in
//! arrival order. Reserving work at time `t` starts at `max(t, busy_until)`
//! and occupies the resource for the requested duration. Every reservation
//! is recorded in a [`Timeline`], which is how the training model exposes
//! the *network idle timespans* GEMINI schedules checkpoints into.

use gemini_sim::{SimDuration, SimTime, Span, Timeline};
use serde::{Deserialize, Serialize};

/// A FIFO resource with an exact busy timeline.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct BusyResource {
    busy_until: SimTime,
    busy: Timeline,
    reserved_total: SimDuration,
}

impl BusyResource {
    /// A fresh, idle resource.
    pub fn new() -> Self {
        BusyResource::default()
    }

    /// The earliest time new work could start.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Whether the resource is idle at `t`.
    pub fn is_idle_at(&self, t: SimTime) -> bool {
        t >= self.busy_until
    }

    /// Reserves `duration` of work arriving at `now`; returns the span the
    /// work actually occupies. Zero-duration requests return an empty span
    /// at the start time without blocking anything.
    pub fn reserve(&mut self, now: SimTime, duration: SimDuration) -> Span {
        let start = now.max(self.busy_until);
        let span = Span::with_len(start, duration);
        if !duration.is_zero() {
            self.busy.add(span);
            self.busy_until = span.end;
            self.reserved_total += duration;
        }
        span
    }

    /// Reserves work that must not start before `not_before` even if the
    /// resource is free earlier (used to pin checkpoint chunks to scheduled
    /// idle spans).
    pub fn reserve_at(&mut self, now: SimTime, not_before: SimTime, duration: SimDuration) -> Span {
        self.reserve(now.max(not_before), duration)
    }

    /// The exact busy timeline accumulated so far.
    pub fn busy_timeline(&self) -> &Timeline {
        &self.busy
    }

    /// Sum of all reserved durations (equals the busy timeline total because
    /// FIFO reservations never overlap).
    pub fn reserved_total(&self) -> SimDuration {
        self.reserved_total
    }

    /// Idle gaps within `window`.
    pub fn idle_within(&self, window: Span) -> Vec<Span> {
        self.busy.gaps(window)
    }

    /// Busy time that falls within `window`.
    pub fn busy_within(&self, window: Span) -> SimDuration {
        self.busy
            .intersection(&Timeline::from_spans([window]))
            .total()
    }

    /// Forgets all history, returning to an idle state (used when a machine
    /// is replaced).
    pub fn reset(&mut self) {
        *self = BusyResource::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }
    fn dur(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn idle_resource_starts_immediately() {
        let mut r = BusyResource::new();
        let span = r.reserve(secs(5), dur(2));
        assert_eq!(span, Span::new(secs(5), secs(7)));
        assert_eq!(r.busy_until(), secs(7));
    }

    #[test]
    fn fifo_queues_back_to_back() {
        let mut r = BusyResource::new();
        r.reserve(secs(0), dur(3));
        let second = r.reserve(secs(1), dur(2));
        assert_eq!(second, Span::new(secs(3), secs(5)));
        assert_eq!(r.reserved_total(), dur(5));
        assert_eq!(r.busy_timeline().total(), dur(5));
    }

    #[test]
    fn gap_between_requests_stays_idle() {
        let mut r = BusyResource::new();
        r.reserve(secs(0), dur(1));
        r.reserve(secs(5), dur(1));
        let idle = r.idle_within(Span::new(secs(0), secs(10)));
        assert_eq!(
            idle,
            vec![Span::new(secs(1), secs(5)), Span::new(secs(6), secs(10))]
        );
        assert_eq!(r.busy_within(Span::new(secs(0), secs(10))), dur(2));
    }

    #[test]
    fn zero_duration_does_not_block() {
        let mut r = BusyResource::new();
        let span = r.reserve(secs(3), SimDuration::ZERO);
        assert!(span.is_empty());
        assert!(r.is_idle_at(secs(3)));
        assert_eq!(r.reserved_total(), SimDuration::ZERO);
    }

    #[test]
    fn reserve_at_honours_floor() {
        let mut r = BusyResource::new();
        let span = r.reserve_at(secs(1), secs(4), dur(2));
        assert_eq!(span.start, secs(4));
        // But a busy resource pushes past the floor.
        let span2 = r.reserve_at(secs(0), secs(5), dur(1));
        assert_eq!(span2.start, secs(6));
    }

    #[test]
    fn reset_clears_history() {
        let mut r = BusyResource::new();
        r.reserve(secs(0), dur(10));
        r.reset();
        assert!(r.is_idle_at(SimTime::ZERO));
        assert!(r.busy_timeline().is_empty());
    }

    #[test]
    fn timeline_matches_reserved_total_property() {
        let mut r = BusyResource::new();
        let mut expected = SimDuration::ZERO;
        for i in 0..50u64 {
            let d = dur(i % 4);
            r.reserve(secs(i * 3 % 17), d);
            expected += d;
        }
        assert_eq!(r.reserved_total(), expected);
        assert_eq!(r.busy_timeline().total(), expected);
        assert!(r.busy_timeline().check_invariants());
    }
}
