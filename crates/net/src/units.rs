//! Data-size and bandwidth units.
//!
//! Sizes are exact `u64` byte counts. Bandwidths are `f64` bytes/second —
//! they only ever enter the simulation through the pure cost function
//! `α + s/B`, so float math here cannot accumulate drift across events.
//!
//! Decimal prefixes follow the paper and vendor datasheets: `400 Gbps` EFA
//! means 400·10⁹ bits/s, `9.4 GB` means 9.4·10⁹ bytes.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub};
use serde::{Deserialize, Serialize};

/// An exact byte count.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// From raw bytes.
    pub const fn from_bytes(bytes: u64) -> Self {
        ByteSize(bytes)
    }
    /// From decimal kilobytes (10³ bytes).
    pub const fn from_kb(kb: u64) -> Self {
        ByteSize(kb * 1_000)
    }
    /// From decimal megabytes (10⁶ bytes).
    pub const fn from_mb(mb: u64) -> Self {
        ByteSize(mb * 1_000_000)
    }
    /// From decimal gigabytes (10⁹ bytes).
    pub const fn from_gb(gb: u64) -> Self {
        ByteSize(gb * 1_000_000_000)
    }
    /// From binary mebibytes (2²⁰ bytes) — GPU buffer sizes like the paper's
    /// reserved "128MB" are conventionally binary.
    pub const fn from_mib(mib: u64) -> Self {
        ByteSize(mib * (1 << 20))
    }
    /// From binary gibibytes (2³⁰ bytes) — GPU memory capacities.
    pub const fn from_gib(gib: u64) -> Self {
        ByteSize(gib * (1 << 30))
    }
    /// From fractional gigabytes, rounding to whole bytes.
    pub fn from_gb_f64(gb: f64) -> Self {
        ByteSize((gb.max(0.0) * 1e9).round() as u64)
    }

    /// Raw bytes.
    pub const fn as_bytes(self) -> u64 {
        self.0
    }
    /// Decimal gigabytes as a float.
    pub fn as_gb_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    /// Decimal megabytes as a float.
    pub fn as_mb_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
    /// Whether the size is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
    /// Saturating subtraction.
    pub fn saturating_sub(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(other.0))
    }
    /// The smaller of two sizes.
    pub fn min(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.min(other.0))
    }
    /// The larger of two sizes.
    pub fn max(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.max(other.0))
    }
    /// Ceiling division: the number of `chunk`-sized pieces needed to cover
    /// this size. Returns 0 for a zero chunk.
    pub fn div_ceil_by(self, chunk: ByteSize) -> u64 {
        if chunk.0 == 0 {
            0
        } else {
            self.0.div_ceil(chunk.0)
        }
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_add(rhs.0))
    }
}
impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}
impl Sub for ByteSize {
    type Output = ByteSize;
    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(rhs.0))
    }
}
impl Mul<u64> for ByteSize {
    type Output = ByteSize;
    fn mul(self, rhs: u64) -> ByteSize {
        ByteSize(self.0.saturating_mul(rhs))
    }
}
impl Div<u64> for ByteSize {
    type Output = ByteSize;
    fn div(self, rhs: u64) -> ByteSize {
        ByteSize(self.0 / rhs.max(1))
    }
}
impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        iter.fold(ByteSize::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0 as f64;
        if self.0 < 1_000 {
            write!(f, "{}B", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.2}KB", b / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.2}MB", b / 1e6)
        } else if self.0 < 1_000_000_000_000 {
            write!(f, "{:.2}GB", b / 1e9)
        } else {
            write!(f, "{:.2}TB", b / 1e12)
        }
    }
}

/// A data rate in bytes per second.
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug, Serialize, Deserialize)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// From gigabits per second (network datasheet convention).
    pub fn from_gbps(gbps: f64) -> Self {
        Bandwidth(gbps.max(0.0) * 1e9 / 8.0)
    }
    /// `const` variant of [`Bandwidth::from_gbps`] for static catalogs.
    /// The caller must pass a non-negative rate.
    pub const fn const_from_gbps(gbps: f64) -> Self {
        Bandwidth(gbps * 1e9 / 8.0)
    }
    /// From gigabytes per second.
    pub fn from_gbytes_per_sec(gbs: f64) -> Self {
        Bandwidth(gbs.max(0.0) * 1e9)
    }
    /// From raw bytes per second.
    pub fn from_bytes_per_sec(bps: f64) -> Self {
        Bandwidth(bps.max(0.0))
    }

    /// Bytes per second.
    pub fn bytes_per_sec(self) -> f64 {
        self.0
    }
    /// Gigabits per second.
    pub fn as_gbps(self) -> f64 {
        self.0 * 8.0 / 1e9
    }
    /// Gigabytes per second.
    pub fn as_gbytes_per_sec(self) -> f64 {
        self.0 / 1e9
    }

    /// Scales by an efficiency factor in `[0, +inf)` (e.g. NCCL achieving
    /// 60% of line rate).
    pub fn scaled(self, factor: f64) -> Bandwidth {
        Bandwidth(self.0 * factor.max(0.0))
    }

    /// Seconds to move `size` at this rate; `f64::INFINITY` for zero
    /// bandwidth and positive size.
    pub fn seconds_for(self, size: ByteSize) -> f64 {
        if size.is_zero() {
            0.0
        } else if self.0 <= 0.0 {
            f64::INFINITY
        } else {
            size.as_bytes() as f64 / self.0
        }
    }

    /// Bytes movable in `seconds` at this rate (floored; negatives → 0).
    pub fn bytes_in_seconds(self, seconds: f64) -> ByteSize {
        if seconds <= 0.0 || self.0 <= 0.0 {
            ByteSize::ZERO
        } else {
            ByteSize::from_bytes((self.0 * seconds).floor() as u64)
        }
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}Gbps", self.as_gbps())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_constructors() {
        assert_eq!(ByteSize::from_gb(2).as_bytes(), 2_000_000_000);
        assert_eq!(ByteSize::from_mib(128).as_bytes(), 128 << 20);
        assert_eq!(ByteSize::from_gib(40).as_bytes(), 40 << 30);
        assert_eq!(ByteSize::from_kb(3).as_bytes(), 3_000);
        assert_eq!(ByteSize::from_gb_f64(9.4).as_gb_f64(), 9.4);
    }

    #[test]
    fn byte_arithmetic_saturates() {
        let a = ByteSize::from_gb(1);
        let b = ByteSize::from_gb(3);
        assert_eq!(a.saturating_sub(b), ByteSize::ZERO);
        assert_eq!(a - b, ByteSize::ZERO);
        assert_eq!((a + b).as_gb_f64(), 4.0);
        assert_eq!((b / 3).as_gb_f64(), 1.0);
        assert_eq!(b / 0, b, "division by zero clamps to divisor 1");
    }

    #[test]
    fn div_ceil_counts_chunks() {
        let total = ByteSize::from_bytes(10);
        assert_eq!(total.div_ceil_by(ByteSize::from_bytes(3)), 4);
        assert_eq!(total.div_ceil_by(ByteSize::from_bytes(5)), 2);
        assert_eq!(total.div_ceil_by(ByteSize::ZERO), 0);
    }

    #[test]
    fn bandwidth_conversions_roundtrip() {
        let bw = Bandwidth::from_gbps(400.0);
        assert!((bw.as_gbps() - 400.0).abs() < 1e-9);
        assert!((bw.as_gbytes_per_sec() - 50.0).abs() < 1e-9);
        let bw2 = Bandwidth::from_gbytes_per_sec(50.0);
        assert!((bw2.as_gbps() - 400.0).abs() < 1e-9);
    }

    #[test]
    fn seconds_for_matches_hand_calc() {
        // 100 GB at 400 Gbps (= 50 GB/s) takes 2 s.
        let bw = Bandwidth::from_gbps(400.0);
        let t = bw.seconds_for(ByteSize::from_gb(100));
        assert!((t - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_bandwidth_is_infinite_time() {
        let bw = Bandwidth::from_gbps(0.0);
        assert!(bw.seconds_for(ByteSize::from_bytes(1)).is_infinite());
        assert_eq!(bw.seconds_for(ByteSize::ZERO), 0.0);
    }

    #[test]
    fn bytes_in_seconds_inverts_seconds_for() {
        let bw = Bandwidth::from_gbps(100.0);
        let s = ByteSize::from_gb(5);
        let t = bw.seconds_for(s);
        let back = bw.bytes_in_seconds(t);
        assert!(back.as_bytes().abs_diff(s.as_bytes()) <= 1);
        assert_eq!(bw.bytes_in_seconds(-1.0), ByteSize::ZERO);
    }

    #[test]
    fn scaled_efficiency() {
        let bw = Bandwidth::from_gbps(400.0).scaled(0.5);
        assert!((bw.as_gbps() - 200.0).abs() < 1e-9);
        assert_eq!(Bandwidth::from_gbps(10.0).scaled(-1.0).bytes_per_sec(), 0.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", ByteSize::from_gb(9)), "9.00GB");
        assert_eq!(format!("{}", ByteSize::from_bytes(512)), "512B");
        assert_eq!(format!("{}", Bandwidth::from_gbps(400.0)), "400.0Gbps");
    }

    #[test]
    fn sum_of_sizes() {
        let total: ByteSize = [ByteSize::from_mb(1), ByteSize::from_mb(2)]
            .into_iter()
            .sum();
        assert_eq!(total, ByteSize::from_mb(3));
    }
}
