//! The inter-machine network fabric and per-machine copy engines.
//!
//! Machines are connected full-mesh (EFA gives every p4d/p3dn instance its
//! own NIC into a non-blocking fabric). A transfer from machine `a` to
//! machine `b` reserves `a`'s TX direction and `b`'s RX direction for
//! `f(s) = α + s/B`; both directions keep exact busy timelines. Each machine
//! also has a GPU↔CPU copy engine with its own cost model — the paper
//! (§5.2, footnote 2) measured that copy bandwidth to be comparable to the
//! inter-machine GPU-to-GPU bandwidth on p4d instances, which is exactly the
//! regime where GEMINI's sub-buffer pipelining matters.

use crate::cost::TransferCost;
use crate::resource::BusyResource;
use crate::units::ByteSize;
use gemini_sim::{SimTime, Span};
use serde::{Deserialize, Serialize};

/// Identifies a machine within a fabric (dense index).
pub type MachineIdx = usize;

/// Static description of a fabric.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct FabricConfig {
    /// Number of machines.
    pub machines: usize,
    /// Point-to-point inter-machine cost (NIC → NIC).
    pub network: TransferCost,
    /// Local GPU↔CPU copy cost (PCIe / copy engine).
    pub copy: TransferCost,
}

/// The completed placement of one transfer on the fabric.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransferRecord {
    /// Sender machine.
    pub src: MachineIdx,
    /// Receiver machine.
    pub dst: MachineIdx,
    /// The span the transfer occupied on both endpoints.
    pub span: Span,
}

/// Error type for fabric operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FabricError {
    /// A machine index was out of range.
    UnknownMachine(MachineIdx),
    /// Source and destination were the same machine for a network transfer.
    SelfTransfer(MachineIdx),
}

impl core::fmt::Display for FabricError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FabricError::UnknownMachine(m) => write!(f, "unknown machine index {m}"),
            FabricError::SelfTransfer(m) => {
                write!(f, "network transfer from machine {m} to itself")
            }
        }
    }
}

impl std::error::Error for FabricError {}

struct Endpoint {
    tx: BusyResource,
    rx: BusyResource,
    copy: BusyResource,
}

/// A full-mesh network fabric with per-machine NICs and copy engines.
pub struct Fabric {
    config: FabricConfig,
    endpoints: Vec<Endpoint>,
    telemetry: gemini_telemetry::TelemetrySink,
}

impl Fabric {
    /// Builds a fabric for `config.machines` machines.
    pub fn new(config: FabricConfig) -> Self {
        let endpoints = (0..config.machines)
            .map(|_| Endpoint {
                tx: BusyResource::new(),
                rx: BusyResource::new(),
                copy: BusyResource::new(),
            })
            .collect();
        Fabric {
            config,
            endpoints,
            telemetry: gemini_telemetry::TelemetrySink::disabled(),
        }
    }

    /// Attaches a telemetry sink; every transfer and local copy records a
    /// byte counter and queueing-delay histogram through it.
    pub fn with_telemetry(mut self, sink: gemini_telemetry::TelemetrySink) -> Self {
        self.telemetry = sink;
        self
    }

    /// The fabric's telemetry sink.
    pub fn telemetry(&self) -> &gemini_telemetry::TelemetrySink {
        &self.telemetry
    }

    /// The static configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// Number of machines.
    pub fn machines(&self) -> usize {
        self.config.machines
    }

    fn check(&self, m: MachineIdx) -> Result<(), FabricError> {
        if m >= self.endpoints.len() {
            Err(FabricError::UnknownMachine(m))
        } else {
            Ok(())
        }
    }

    /// Schedules a point-to-point transfer of `size` from `src` to `dst`
    /// arriving at `now`. The transfer starts when *both* the sender's TX
    /// and the receiver's RX are free, and occupies both for `f(size)`.
    pub fn transfer(
        &mut self,
        now: SimTime,
        src: MachineIdx,
        dst: MachineIdx,
        size: ByteSize,
    ) -> Result<TransferRecord, FabricError> {
        self.check(src)?;
        self.check(dst)?;
        if src == dst {
            return Err(FabricError::SelfTransfer(src));
        }
        let duration = self.config.network.time(size);
        let earliest = now
            .max(self.endpoints[src].tx.busy_until())
            .max(self.endpoints[dst].rx.busy_until());
        let span = self.endpoints[src].tx.reserve(earliest, duration);
        let rx_span = self.endpoints[dst].rx.reserve(span.start, duration);
        debug_assert_eq!(span, rx_span, "TX and RX must co-reserve");
        if self.telemetry.is_enabled() {
            self.telemetry
                .counter_add("net.transfer_bytes", size.as_bytes());
            self.telemetry.counter_add("net.transfers", 1);
            self.telemetry.observe_us("net.transfer_queue_us", || {
                span.start.saturating_since(now).as_nanos() / 1_000
            });
        }
        Ok(TransferRecord { src, dst, span })
    }

    /// Schedules a local GPU↔CPU copy of `size` on `machine` arriving at
    /// `now`; returns the span it occupies on the copy engine.
    pub fn local_copy(
        &mut self,
        now: SimTime,
        machine: MachineIdx,
        size: ByteSize,
    ) -> Result<Span, FabricError> {
        self.check(machine)?;
        let duration = self.config.copy.time(size);
        let span = self.endpoints[machine].copy.reserve(now, duration);
        if self.telemetry.is_enabled() {
            self.telemetry
                .counter_add("net.local_copy_bytes", size.as_bytes());
            self.telemetry.counter_add("net.local_copies", 1);
        }
        Ok(span)
    }

    /// The TX busy-resource of a machine.
    pub fn tx(&self, machine: MachineIdx) -> Result<&BusyResource, FabricError> {
        self.check(machine)?;
        Ok(&self.endpoints[machine].tx)
    }

    /// The RX busy-resource of a machine.
    pub fn rx(&self, machine: MachineIdx) -> Result<&BusyResource, FabricError> {
        self.check(machine)?;
        Ok(&self.endpoints[machine].rx)
    }

    /// The copy-engine busy-resource of a machine.
    pub fn copy_engine(&self, machine: MachineIdx) -> Result<&BusyResource, FabricError> {
        self.check(machine)?;
        Ok(&self.endpoints[machine].copy)
    }

    /// Clears a machine's resource history (machine replaced).
    pub fn reset_machine(&mut self, machine: MachineIdx) -> Result<(), FabricError> {
        self.check(machine)?;
        let e = &mut self.endpoints[machine];
        e.tx.reset();
        e.rx.reset();
        e.copy.reset();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Bandwidth;
    use gemini_sim::SimDuration;

    fn fabric(n: usize) -> Fabric {
        Fabric::new(FabricConfig {
            machines: n,
            network: TransferCost::pure_bandwidth(Bandwidth::from_gbytes_per_sec(1.0)),
            copy: TransferCost::pure_bandwidth(Bandwidth::from_gbytes_per_sec(2.0)),
        })
    }

    #[test]
    fn transfer_occupies_both_ends() {
        let mut f = fabric(3);
        let r = f
            .transfer(SimTime::ZERO, 0, 1, ByteSize::from_gb(2))
            .unwrap();
        assert_eq!(r.span.len(), SimDuration::from_secs(2));
        assert_eq!(f.tx(0).unwrap().busy_until(), r.span.end);
        assert_eq!(f.rx(1).unwrap().busy_until(), r.span.end);
        // The reverse directions stay free.
        assert!(f.rx(0).unwrap().is_idle_at(SimTime::ZERO));
        assert!(f.tx(1).unwrap().is_idle_at(SimTime::ZERO));
    }

    #[test]
    fn receiver_contention_delays_start() {
        let mut f = fabric(3);
        f.transfer(SimTime::ZERO, 0, 2, ByteSize::from_gb(5))
            .unwrap();
        let r = f
            .transfer(SimTime::ZERO, 1, 2, ByteSize::from_gb(1))
            .unwrap();
        assert_eq!(r.span.start, SimTime::from_secs(5));
    }

    #[test]
    fn disjoint_pairs_run_in_parallel() {
        let mut f = fabric(4);
        let a = f
            .transfer(SimTime::ZERO, 0, 1, ByteSize::from_gb(3))
            .unwrap();
        let b = f
            .transfer(SimTime::ZERO, 2, 3, ByteSize::from_gb(3))
            .unwrap();
        assert_eq!(a.span.start, SimTime::ZERO);
        assert_eq!(b.span.start, SimTime::ZERO);
    }

    #[test]
    fn self_transfer_rejected() {
        let mut f = fabric(2);
        assert_eq!(
            f.transfer(SimTime::ZERO, 1, 1, ByteSize::from_gb(1)),
            Err(FabricError::SelfTransfer(1))
        );
    }

    #[test]
    fn unknown_machine_rejected() {
        let mut f = fabric(2);
        assert_eq!(
            f.transfer(SimTime::ZERO, 0, 7, ByteSize::from_gb(1)),
            Err(FabricError::UnknownMachine(7))
        );
        assert!(f.tx(9).is_err());
    }

    #[test]
    fn local_copy_uses_copy_engine_only() {
        let mut f = fabric(2);
        let span = f
            .local_copy(SimTime::ZERO, 0, ByteSize::from_gb(4))
            .unwrap();
        assert_eq!(span.len(), SimDuration::from_secs(2));
        assert!(f.tx(0).unwrap().is_idle_at(SimTime::ZERO));
    }

    #[test]
    fn reset_machine_clears_state() {
        let mut f = fabric(2);
        f.transfer(SimTime::ZERO, 0, 1, ByteSize::from_gb(10))
            .unwrap();
        f.reset_machine(1).unwrap();
        assert!(f.rx(1).unwrap().is_idle_at(SimTime::ZERO));
        assert!(!f.tx(0).unwrap().is_idle_at(SimTime::ZERO));
    }
}
