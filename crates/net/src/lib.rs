//! Network fabric, copy-engine and persistent-storage models.
//!
//! GEMINI's scheduling decisions consume a small set of physical quantities:
//! NIC bandwidth between machines, GPU↔CPU copy bandwidth, the aggregate
//! bandwidth of remote persistent storage, and per-transfer startup latency.
//! This crate models all of them with the classic `f(s) = α + s/B` cost
//! (paper §5.3), FIFO busy-resources that produce exact busy timelines, and a
//! fabric that reserves sender-TX and receiver-RX capacity for each flow.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cost;
pub mod fabric;
pub mod flow;
pub mod resource;
pub mod storage;
pub mod units;

pub use cost::TransferCost;
pub use fabric::{Fabric, FabricConfig, TransferRecord};
pub use flow::{
    fluid_completion_times, fluid_completion_times_with, FlowResource, FluidFlow, FluidNetwork,
};
pub use resource::BusyResource;
pub use storage::PersistentStorage;
pub use units::{Bandwidth, ByteSize};
