//! The remote persistent storage model.
//!
//! The paper's baselines write checkpoints to a remote filesystem (FSx) with
//! a *fixed aggregate* bandwidth (20 Gbps in the evaluation) that does not
//! grow with the number of training machines — the root cause of their low
//! checkpoint frequency (§2.2). We model the storage as a single shared
//! FIFO pipe: concurrent writers serialize, so writing the full model state
//! from `N` machines takes `total_bytes / aggregate_bandwidth` regardless of
//! `N`, exactly matching the flat baseline curves of Figure 11.

use crate::cost::TransferCost;
use crate::resource::BusyResource;
use crate::units::ByteSize;
use gemini_sim::{SimDuration, SimTime, Span};
use serde::{Deserialize, Serialize};

/// Remote persistent storage with fixed aggregate bandwidth.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PersistentStorage {
    cost: TransferCost,
    pipe: BusyResource,
    bytes_written: ByteSize,
    bytes_read: ByteSize,
}

impl PersistentStorage {
    /// Creates a storage with the given aggregate cost model.
    pub fn new(cost: TransferCost) -> Self {
        PersistentStorage {
            cost,
            pipe: BusyResource::new(),
            bytes_written: ByteSize::ZERO,
            bytes_read: ByteSize::ZERO,
        }
    }

    /// The aggregate cost model.
    pub fn cost(&self) -> TransferCost {
        self.cost
    }

    /// Pure estimate of moving `size` through the aggregate pipe with no
    /// contention (used by analytic experiments).
    pub fn transfer_time(&self, size: ByteSize) -> SimDuration {
        self.cost.time(size)
    }

    /// Queues a write of `size` arriving at `now`; returns its span.
    pub fn write(&mut self, now: SimTime, size: ByteSize) -> Span {
        self.bytes_written += size;
        self.pipe.reserve(now, self.cost.time(size))
    }

    /// Queues a read (checkpoint retrieval) of `size` arriving at `now`.
    /// Reads share the same aggregate pipe as writes.
    pub fn read(&mut self, now: SimTime, size: ByteSize) -> Span {
        self.bytes_read += size;
        self.pipe.reserve(now, self.cost.time(size))
    }

    /// Total bytes written so far.
    pub fn bytes_written(&self) -> ByteSize {
        self.bytes_written
    }

    /// Total bytes read so far.
    pub fn bytes_read(&self) -> ByteSize {
        self.bytes_read
    }

    /// The earliest time a new request could start.
    pub fn busy_until(&self) -> SimTime {
        self.pipe.busy_until()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Bandwidth;

    fn fsx() -> PersistentStorage {
        // The paper's FSx deployment: 20 Gbps aggregate.
        PersistentStorage::new(TransferCost::pure_bandwidth(Bandwidth::from_gbps(20.0)))
    }

    #[test]
    fn aggregate_bandwidth_is_shared() {
        let mut s = fsx();
        // Two machines writing 75 GB each serialize: 150 GB at 2.5 GB/s = 60 s.
        let a = s.write(SimTime::ZERO, ByteSize::from_gb(75));
        let b = s.write(SimTime::ZERO, ByteSize::from_gb(75));
        assert_eq!(a.start, SimTime::ZERO);
        assert_eq!(b.start, a.end);
        assert_eq!(b.end, SimTime::from_secs(60));
    }

    #[test]
    fn mtnlg_checkpoint_anchor() {
        // §2.2: MT-NLG model states take ~42 min at 20 Gbps. MT-NLG is 530 B
        // params × 12 bytes ≈ 6.36 TB; 6.36e12 / 2.5e9 B/s ≈ 2544 s ≈ 42.4 min.
        let s = fsx();
        let t = s.transfer_time(ByteSize::from_gb(530 * 12));
        let mins = t.as_secs_f64() / 60.0;
        assert!((mins - 42.4).abs() < 1.0, "got {mins} min");
    }

    #[test]
    fn reads_and_writes_share_pipe() {
        let mut s = fsx();
        s.write(SimTime::ZERO, ByteSize::from_gb(25)); // 10 s
        let r = s.read(SimTime::ZERO, ByteSize::from_gb(25));
        assert_eq!(r.start, SimTime::from_secs(10));
        assert_eq!(s.bytes_written(), ByteSize::from_gb(25));
        assert_eq!(s.bytes_read(), ByteSize::from_gb(25));
    }

    #[test]
    fn busy_until_tracks_queue() {
        let mut s = fsx();
        assert_eq!(s.busy_until(), SimTime::ZERO);
        s.write(SimTime::from_secs(5), ByteSize::from_gb(25));
        assert_eq!(s.busy_until(), SimTime::from_secs(15));
    }
}
