//! The `f(s) = α + s/B` transfer-cost model.
//!
//! The paper (§5.3) models the time to send a checkpoint chunk of size `s`
//! as a startup latency `α` plus the serialization time `s/B` at bandwidth
//! `B` — the standard LogP-style point-to-point cost used throughout the
//! collective-communication literature it cites.

use crate::units::{Bandwidth, ByteSize};
use gemini_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// A transfer cost model with startup latency and bandwidth.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TransferCost {
    /// Per-transfer startup latency `α`.
    pub alpha: SimDuration,
    /// Sustained bandwidth `B`.
    pub bandwidth: Bandwidth,
}

impl TransferCost {
    /// Creates a cost model.
    pub fn new(alpha: SimDuration, bandwidth: Bandwidth) -> Self {
        TransferCost { alpha, bandwidth }
    }

    /// A zero-latency model (pure bandwidth).
    pub fn pure_bandwidth(bandwidth: Bandwidth) -> Self {
        TransferCost {
            alpha: SimDuration::ZERO,
            bandwidth,
        }
    }

    /// `f(s) = α + s/B`. A zero-size transfer still pays `α` (a real message
    /// does), but callers that skip empty transfers entirely should do so
    /// before asking for the cost.
    pub fn time(&self, size: ByteSize) -> SimDuration {
        self.alpha + SimDuration::from_secs_f64(self.bandwidth.seconds_for(size))
    }

    /// The inverse of [`TransferCost::time`]: the largest size whose transfer
    /// fits within `budget`. Returns zero when even an empty message would
    /// not fit (budget ≤ α). This is the `(remain_span − α)·B` step of
    /// Algorithm 2, line 12.
    pub fn max_size_within(&self, budget: SimDuration) -> ByteSize {
        if budget <= self.alpha {
            return ByteSize::ZERO;
        }
        let usable = (budget - self.alpha).as_secs_f64();
        self.bandwidth.bytes_in_seconds(usable)
    }

    /// Cost of `n` back-to-back transfers of the same size (each pays `α`).
    pub fn time_n(&self, size: ByteSize, n: u64) -> SimDuration {
        SimDuration::from_secs_f64(self.time(size).as_secs_f64() * n as f64)
    }

    /// Returns this model with bandwidth scaled by an efficiency factor.
    pub fn scaled(&self, factor: f64) -> TransferCost {
        TransferCost {
            alpha: self.alpha,
            bandwidth: self.bandwidth.scaled(factor),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TransferCost {
        TransferCost::new(SimDuration::from_micros(100), Bandwidth::from_gbps(400.0))
    }

    #[test]
    fn time_is_alpha_plus_serialization() {
        let m = model();
        // 50 GB at 50 GB/s = 1 s, plus 100 µs.
        let t = m.time(ByteSize::from_gb(50));
        assert!((t.as_secs_f64() - 1.0001).abs() < 1e-7, "{t}");
    }

    #[test]
    fn zero_size_costs_alpha() {
        let m = model();
        assert_eq!(m.time(ByteSize::ZERO), SimDuration::from_micros(100));
    }

    #[test]
    fn max_size_within_inverts_time() {
        let m = model();
        let budget = SimDuration::from_millis(500);
        let s = m.max_size_within(budget);
        assert!(m.time(s) <= budget);
        // And it is maximal: one more megabyte would exceed the budget.
        let bigger = s + ByteSize::from_mb(1);
        assert!(m.time(bigger) > budget);
    }

    #[test]
    fn max_size_within_tiny_budget_is_zero() {
        let m = model();
        assert_eq!(
            m.max_size_within(SimDuration::from_micros(50)),
            ByteSize::ZERO
        );
        assert_eq!(
            m.max_size_within(SimDuration::from_micros(100)),
            ByteSize::ZERO
        );
    }

    #[test]
    fn time_n_is_linear() {
        let m = model();
        let one = m.time(ByteSize::from_mb(32)).as_secs_f64();
        let four = m.time_n(ByteSize::from_mb(32), 4).as_secs_f64();
        assert!((four - 4.0 * one).abs() < 1e-9);
    }

    #[test]
    fn scaled_reduces_bandwidth_not_alpha() {
        let m = model().scaled(0.5);
        assert_eq!(m.alpha, SimDuration::from_micros(100));
        assert!((m.bandwidth.as_gbps() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn pure_bandwidth_has_no_alpha() {
        let m = TransferCost::pure_bandwidth(Bandwidth::from_gbps(8.0));
        // 1 GB at 1 GB/s = 1 s exactly.
        assert_eq!(m.time(ByteSize::from_gb(1)), SimDuration::from_secs(1));
    }
}
