//! Max-min fair fluid flows — a finer-grained alternative to the FIFO
//! pipe model for *concurrent* transfers.
//!
//! The FIFO resources elsewhere in this crate serialize competing work,
//! which matches NCCL stream semantics for checkpoint chunks but is
//! pessimistic for inherently parallel fan-ins like `N` machines
//! simultaneously reading a persistent checkpoint (§6.2 Case 2): real
//! storage gives each reader a fair share of the aggregate bandwidth, so
//! all readers finish together rather than in sequence. Both models give
//! the same *last-finisher* time (total bytes / aggregate bandwidth), but
//! the fluid model gets per-flow completions right — which matters when
//! recovery lets machines that finished retrieving early start their
//! warm-up sooner.
//!
//! The solver is classic progressive filling: repeatedly find the most
//! contended resource, freeze its flows at the fair share, subtract, and
//! continue; then advance time to the earliest completion and re-solve.

use crate::units::{Bandwidth, ByteSize};
use gemini_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// A resource a flow may traverse.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum FlowResource {
    /// A machine's transmit direction.
    Tx(usize),
    /// A machine's receive direction.
    Rx(usize),
    /// The shared aggregate pipe (persistent storage).
    Shared,
}

/// One fluid flow: bytes to move across a set of resources.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FluidFlow {
    /// The resources the flow occupies simultaneously.
    pub resources: Vec<FlowResource>,
    /// Bytes to move.
    pub bytes: ByteSize,
}

/// The capacity table.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FluidNetwork {
    /// Per-machine TX capacity.
    pub tx: Vec<Bandwidth>,
    /// Per-machine RX capacity.
    pub rx: Vec<Bandwidth>,
    /// The shared pipe's aggregate capacity, if present.
    pub shared: Option<Bandwidth>,
}

impl FluidNetwork {
    /// A symmetric fabric of `machines` NICs at `nic` plus a shared pipe.
    pub fn symmetric(machines: usize, nic: Bandwidth, shared: Option<Bandwidth>) -> Self {
        FluidNetwork {
            tx: vec![nic; machines],
            rx: vec![nic; machines],
            shared,
        }
    }

    fn capacity(&self, r: FlowResource) -> f64 {
        match r {
            FlowResource::Tx(m) => self.tx.get(m).map(|b| b.bytes_per_sec()).unwrap_or(0.0),
            FlowResource::Rx(m) => self.rx.get(m).map(|b| b.bytes_per_sec()).unwrap_or(0.0),
            FlowResource::Shared => self.shared.map(|b| b.bytes_per_sec()).unwrap_or(0.0),
        }
    }
}

/// Max-min fair rates for the active flows (progressive filling).
/// `active[i]` indexes into `flows`; returns bytes/s per active flow.
fn fair_rates(network: &FluidNetwork, flows: &[FluidFlow], active: &[usize]) -> Vec<f64> {
    use std::collections::HashMap;
    let mut rates = vec![0.0f64; active.len()];
    let mut frozen = vec![false; active.len()];
    // Remaining capacity per touched resource.
    let mut remaining: HashMap<FlowResource, f64> = HashMap::new();
    for &fi in active {
        for &r in &flows[fi].resources {
            remaining.entry(r).or_insert_with(|| network.capacity(r));
        }
    }
    loop {
        // For each resource, its fair share among unfrozen flows.
        let mut bottleneck: Option<(FlowResource, f64)> = None;
        for (&r, &cap) in &remaining {
            let users = active
                .iter()
                .enumerate()
                .filter(|(ai, &fi)| !frozen[*ai] && flows[fi].resources.contains(&r))
                .count();
            if users == 0 {
                continue;
            }
            let share = cap / users as f64;
            if bottleneck.map(|(_, s)| share < s).unwrap_or(true) {
                bottleneck = Some((r, share));
            }
        }
        let Some((r, share)) = bottleneck else {
            break; // everything frozen
        };
        // Freeze the bottleneck's flows at the fair share and charge every
        // resource they cross.
        for (ai, &fi) in active.iter().enumerate() {
            if frozen[ai] || !flows[fi].resources.contains(&r) {
                continue;
            }
            frozen[ai] = true;
            rates[ai] = share;
            for &res in &flows[fi].resources {
                if let Some(cap) = remaining.get_mut(&res) {
                    *cap = (*cap - share).max(0.0);
                }
            }
        }
    }
    rates
}

/// Runs all flows from time zero to completion under max-min fairness;
/// returns each flow's completion time (same order as `flows`).
pub fn fluid_completion_times(network: &FluidNetwork, flows: &[FluidFlow]) -> Vec<SimDuration> {
    fluid_completion_times_with(network, flows, &gemini_telemetry::TelemetrySink::disabled())
}

/// Like [`fluid_completion_times`], reporting each admitted flow as a
/// [`gemini_telemetry::TelemetryEvent::FlowScheduled`] event (flows all
/// start at simulated time zero of their solve) and recording per-flow
/// completion times into the `net.flow_completion_us` histogram.
pub fn fluid_completion_times_with(
    network: &FluidNetwork,
    flows: &[FluidFlow],
    telemetry: &gemini_telemetry::TelemetrySink,
) -> Vec<SimDuration> {
    let times = fluid_solve(network, flows);
    if telemetry.is_enabled() {
        for (i, (f, t)) in flows.iter().zip(&times).enumerate() {
            telemetry.event(gemini_sim::SimTime::ZERO, || {
                gemini_telemetry::TelemetryEvent::FlowScheduled {
                    flow: i,
                    bytes: f.bytes.as_bytes(),
                    completes_in: *t,
                }
            });
            if *t != SimDuration::MAX {
                telemetry.observe_us("net.flow_completion_us", || t.as_nanos() / 1_000);
            }
        }
        telemetry.counter_add("net.flows_scheduled", flows.len() as u64);
    }
    times
}

/// The solver behind both entry points.
fn fluid_solve(network: &FluidNetwork, flows: &[FluidFlow]) -> Vec<SimDuration> {
    let mut remaining: Vec<f64> = flows.iter().map(|f| f.bytes.as_bytes() as f64).collect();
    let mut done: Vec<Option<f64>> = vec![None; flows.len()];
    let mut now = 0.0f64;
    loop {
        let active: Vec<usize> = (0..flows.len())
            .filter(|&i| done[i].is_none() && remaining[i] > 0.0)
            .collect();
        if active.is_empty() {
            break;
        }
        let rates = fair_rates(network, flows, &active);
        // Time until the earliest active flow drains.
        let mut dt = f64::INFINITY;
        for (ai, &fi) in active.iter().enumerate() {
            if rates[ai] > 0.0 {
                dt = dt.min(remaining[fi] / rates[ai]);
            }
        }
        if !dt.is_finite() {
            // Starved flows (zero-capacity path) never finish; mark them.
            for &fi in &active {
                done[fi] = Some(f64::INFINITY);
            }
            break;
        }
        now += dt;
        for (ai, &fi) in active.iter().enumerate() {
            remaining[fi] -= rates[ai] * dt;
            if remaining[fi] <= 1e-6 {
                remaining[fi] = 0.0;
                done[fi] = Some(now);
            }
        }
    }
    // Zero-byte flows complete instantly.
    (0..flows.len())
        .map(|i| {
            let t = done[i].unwrap_or(0.0);
            if t.is_finite() {
                SimDuration::from_secs_f64(t)
            } else {
                SimDuration::MAX
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gbs(v: f64) -> Bandwidth {
        Bandwidth::from_gbytes_per_sec(v)
    }

    fn flow(resources: Vec<FlowResource>, gb: u64) -> FluidFlow {
        FluidFlow {
            resources,
            bytes: ByteSize::from_gb(gb),
        }
    }

    #[test]
    fn single_flow_gets_full_bandwidth() {
        let net = FluidNetwork::symmetric(2, gbs(10.0), None);
        let flows = [flow(vec![FlowResource::Tx(0), FlowResource::Rx(1)], 20)];
        let t = fluid_completion_times(&net, &flows);
        assert!((t[0].as_secs_f64() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn two_flows_into_one_receiver_share_fairly() {
        let net = FluidNetwork::symmetric(3, gbs(10.0), None);
        let flows = [
            flow(vec![FlowResource::Tx(0), FlowResource::Rx(2)], 10),
            flow(vec![FlowResource::Tx(1), FlowResource::Rx(2)], 10),
        ];
        let t = fluid_completion_times(&net, &flows);
        // Each gets 5 GB/s → both finish at 2 s (vs FIFO: 1 s and 2 s).
        assert!((t[0].as_secs_f64() - 2.0).abs() < 1e-6);
        assert!((t[1].as_secs_f64() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn short_flow_releases_bandwidth_to_the_long_one() {
        let net = FluidNetwork::symmetric(3, gbs(10.0), None);
        let flows = [
            flow(vec![FlowResource::Tx(0), FlowResource::Rx(2)], 5),
            flow(vec![FlowResource::Tx(1), FlowResource::Rx(2)], 15),
        ];
        let t = fluid_completion_times(&net, &flows);
        // Phase 1: both at 5 GB/s until flow 0 drains at t=1. Phase 2:
        // flow 1 has 10 GB left at 10 GB/s → finishes at t=2.
        assert!((t[0].as_secs_f64() - 1.0).abs() < 1e-6);
        assert!((t[1].as_secs_f64() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn uncontended_flow_is_unaffected() {
        let net = FluidNetwork::symmetric(4, gbs(10.0), None);
        let flows = [
            flow(vec![FlowResource::Tx(0), FlowResource::Rx(1)], 10),
            flow(vec![FlowResource::Tx(2), FlowResource::Rx(3)], 10),
        ];
        let t = fluid_completion_times(&net, &flows);
        assert!((t[0].as_secs_f64() - 1.0).abs() < 1e-6);
        assert!((t[1].as_secs_f64() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn storage_fan_in_matches_fifo_last_finisher() {
        // 16 machines each reading 75 GB through a 2.5 GB/s shared pipe:
        // fluid fairness gives every reader agg/16 and all finish at
        // 1.2 TB / 2.5 GB/s = 480 s — the FIFO pipe's *total* time.
        let net = FluidNetwork::symmetric(16, gbs(50.0), Some(gbs(2.5)));
        let flows: Vec<FluidFlow> = (0..16)
            .map(|m| flow(vec![FlowResource::Shared, FlowResource::Rx(m)], 75))
            .collect();
        let t = fluid_completion_times(&net, &flows);
        for ti in &t {
            assert!((ti.as_secs_f64() - 480.0).abs() < 1e-3, "{ti}");
        }
    }

    #[test]
    fn nic_bound_flows_do_not_steal_the_shared_pipe() {
        // One reader is NIC-limited (slow RX); the rest split the slack.
        let mut net = FluidNetwork::symmetric(3, gbs(10.0), Some(gbs(9.0)));
        net.rx[0] = gbs(1.0);
        let flows: Vec<FluidFlow> = (0..3)
            .map(|m| flow(vec![FlowResource::Shared, FlowResource::Rx(m)], 8))
            .collect();
        let t = fluid_completion_times(&net, &flows);
        // Reader 0 runs at 1 GB/s → 8 s. Readers 1-2 split the remaining
        // 8 GB/s → 4 GB/s each → 2 s.
        assert!((t[0].as_secs_f64() - 8.0).abs() < 1e-6, "{}", t[0]);
        assert!((t[1].as_secs_f64() - 2.0).abs() < 1e-6, "{}", t[1]);
        assert!((t[2].as_secs_f64() - 2.0).abs() < 1e-6, "{}", t[2]);
    }

    #[test]
    fn zero_byte_flows_complete_immediately() {
        let net = FluidNetwork::symmetric(2, gbs(10.0), None);
        let flows = [flow(vec![FlowResource::Tx(0), FlowResource::Rx(1)], 0)];
        let t = fluid_completion_times(&net, &flows);
        assert_eq!(t[0], SimDuration::ZERO);
    }

    #[test]
    fn starved_flow_reports_never() {
        let net = FluidNetwork::symmetric(2, gbs(10.0), None); // no shared pipe
        let flows = [flow(vec![FlowResource::Shared], 1)];
        let t = fluid_completion_times(&net, &flows);
        assert_eq!(t[0], SimDuration::MAX);
    }
}
