//! Property-based tests for the network models: cost inversion, FIFO
//! resources and fabric conservation.

use gemini_net::{
    fluid_completion_times, Bandwidth, BusyResource, ByteSize, Fabric, FabricConfig, FlowResource,
    FluidFlow, FluidNetwork, TransferCost,
};
use gemini_sim::{SimDuration, SimTime, Span};
use proptest::prelude::*;

fn cost_strategy() -> impl Strategy<Value = TransferCost> {
    (1u64..5_000, 1.0f64..500.0).prop_map(|(alpha_us, gbps)| {
        TransferCost::new(
            SimDuration::from_micros(alpha_us),
            Bandwidth::from_gbps(gbps),
        )
    })
}

proptest! {
    #[test]
    fn cost_is_monotone_in_size(cost in cost_strategy(), a in 0u64..1_000_000_000, b in 0u64..1_000_000_000) {
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(
            cost.time(ByteSize::from_bytes(lo)) <= cost.time(ByteSize::from_bytes(hi))
        );
    }

    #[test]
    fn max_size_within_is_inverse_of_time(cost in cost_strategy(), budget_us in 1u64..10_000_000) {
        let budget = SimDuration::from_micros(budget_us);
        let size = cost.max_size_within(budget);
        // A zero size means "nothing fits" (budget <= alpha); a zero-size
        // message is never sent, so the alpha-only cost is irrelevant.
        if size.is_zero() {
            prop_assert!(budget <= cost.alpha + SimDuration::from_nanos(2));
            return Ok(());
        }
        // The returned size fits...
        prop_assert!(cost.time(size) <= budget + SimDuration::from_nanos(2));
        // ...and is within one KB of maximal.
        let bigger = size + ByteSize::from_kb(1);
        if cost.time(bigger) <= budget {
            // Only possible when the budget is huge relative to bandwidth
            // rounding; tolerate at most 1 KB of slack.
            prop_assert!(
                cost.time(bigger + ByteSize::from_kb(1)) > budget,
                "max_size_within left more than 2KB unused"
            );
        }
    }

    #[test]
    fn busy_resource_conserves_time(reqs in proptest::collection::vec((0u64..1_000, 0u64..500), 0..60)) {
        let mut r = BusyResource::new();
        let mut total = SimDuration::ZERO;
        let mut last_end = SimTime::ZERO;
        for (at, dur) in reqs {
            let span = r.reserve(
                SimTime::from_nanos(at),
                SimDuration::from_nanos(dur),
            );
            if dur > 0 {
                // FIFO: never starts before previous work ends.
                prop_assert!(span.start >= last_end);
                last_end = span.end;
            }
            total += SimDuration::from_nanos(dur);
        }
        prop_assert_eq!(r.reserved_total(), total);
        prop_assert_eq!(r.busy_timeline().total(), total);
        prop_assert!(r.busy_timeline().check_invariants());
        prop_assert_eq!(r.busy_until(), last_end);
    }

    #[test]
    fn busy_resource_idle_complements_busy(reqs in proptest::collection::vec((0u64..1_000, 1u64..300), 1..40)) {
        let mut r = BusyResource::new();
        for (at, dur) in reqs {
            r.reserve(SimTime::from_nanos(at), SimDuration::from_nanos(dur));
        }
        let window = Span::new(SimTime::ZERO, SimTime::from_nanos(50_000));
        let idle: SimDuration = r
            .idle_within(window)
            .iter()
            .fold(SimDuration::ZERO, |acc, s| acc + s.len());
        prop_assert_eq!(idle + r.busy_within(window), window.len());
    }

    #[test]
    fn fabric_conserves_per_endpoint_time(
        transfers in proptest::collection::vec((0usize..6, 0usize..6, 1u64..200), 1..50)
    ) {
        let cost = TransferCost::pure_bandwidth(Bandwidth::from_gbytes_per_sec(1.0));
        let mut fabric = Fabric::new(FabricConfig {
            machines: 6,
            network: cost,
            copy: cost,
        });
        let mut tx_expected = [SimDuration::ZERO; 6];
        let mut rx_expected = [SimDuration::ZERO; 6];
        for (src, dst, mb) in transfers {
            if src == dst {
                prop_assert!(fabric
                    .transfer(SimTime::ZERO, src, dst, ByteSize::from_mb(mb))
                    .is_err());
                continue;
            }
            let size = ByteSize::from_mb(mb);
            let rec = fabric.transfer(SimTime::ZERO, src, dst, size).unwrap();
            prop_assert_eq!(rec.span.len(), cost.time(size));
            tx_expected[src] += cost.time(size);
            rx_expected[dst] += cost.time(size);
        }
        for m in 0..6 {
            prop_assert_eq!(fabric.tx(m).unwrap().reserved_total(), tx_expected[m]);
            prop_assert_eq!(fabric.rx(m).unwrap().reserved_total(), rx_expected[m]);
        }
    }

    #[test]
    fn bandwidth_roundtrip(gbps in 0.001f64..10_000.0) {
        let bw = Bandwidth::from_gbps(gbps);
        prop_assert!((bw.as_gbps() - gbps).abs() / gbps < 1e-12);
        // seconds_for and bytes_in_seconds invert within a byte.
        let size = ByteSize::from_mb(100);
        let t = bw.seconds_for(size);
        let back = bw.bytes_in_seconds(t);
        prop_assert!(back.as_bytes().abs_diff(size.as_bytes()) <= 1);
    }

    #[test]
    fn fluid_flows_respect_capacity_bounds(
        flows_spec in proptest::collection::vec((0usize..4, 0usize..4, 1u64..50), 1..12),
    ) {
        let net = FluidNetwork::symmetric(4, Bandwidth::from_gbytes_per_sec(10.0), None);
        let flows: Vec<FluidFlow> = flows_spec
            .iter()
            .map(|&(src, dst, gb)| FluidFlow {
                resources: if src == dst {
                    vec![FlowResource::Tx(src)]
                } else {
                    vec![FlowResource::Tx(src), FlowResource::Rx(dst)]
                },
                bytes: ByteSize::from_gb(gb),
            })
            .collect();
        let times = fluid_completion_times(&net, &flows);
        // Per-flow: nothing beats line rate.
        for (i, f) in flows.iter().enumerate() {
            let solo = f.bytes.as_bytes() as f64 / 10e9;
            prop_assert!(times[i].as_secs_f64() >= solo - 1e-6, "flow {i} beat line rate");
        }
        // Per-resource: the last finisher among a resource's flows cannot
        // beat the resource draining all its bytes at full capacity.
        let all_resources: std::collections::BTreeSet<(u8, usize)> = flows
            .iter()
            .flat_map(|f| f.resources.iter().map(|r| match r {
                FlowResource::Tx(m) => (0u8, *m),
                FlowResource::Rx(m) => (1u8, *m),
                FlowResource::Shared => (2u8, 0),
            }))
            .collect();
        for key in all_resources {
            let r = match key {
                (0, m) => FlowResource::Tx(m),
                (1, m) => FlowResource::Rx(m),
                _ => FlowResource::Shared,
            };
            let total: f64 = flows
                .iter()
                .filter(|f| f.resources.contains(&r))
                .map(|f| f.bytes.as_bytes() as f64)
                .sum();
            let last = flows
                .iter()
                .enumerate()
                .filter(|(_, f)| f.resources.contains(&r))
                .map(|(i, _)| times[i].as_secs_f64())
                .fold(0.0, f64::max);
            prop_assert!(last >= total / 10e9 - 1e-6, "resource {key:?} overdrove");
        }
        // Adding competition never speeds a flow up (fairness monotonicity).
        for i in 0..flows.len() {
            let solo_time = fluid_completion_times(&net, &flows[i..=i])[0];
            prop_assert!(times[i] >= solo_time, "flow {i} got faster under load");
        }
    }

    #[test]
    fn byte_size_div_ceil(total in 0u64..1_000_000, chunk in 1u64..10_000) {
        let n = ByteSize::from_bytes(total).div_ceil_by(ByteSize::from_bytes(chunk));
        prop_assert!(n * chunk >= total);
        prop_assert!(n == 0 || (n - 1) * chunk < total);
    }
}
