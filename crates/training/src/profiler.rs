//! The online profiler (paper §5.4).
//!
//! GEMINI trains the first ~20 iterations *without* checkpointing, records
//! the start and end timestamps of every communication operation, and
//! derives the averaged idle-timespan profile used by the checkpoint
//! partition algorithm. The paper observes the profiled timeline is nearly
//! constant across iterations (normalized standard deviation < 10%), which
//! justifies scheduling against the average.

use crate::timeline::IterationTimeline;
use gemini_sim::{OnlineStats, SimDuration, SimTime, Span};
use serde::{Deserialize, Serialize};

/// Default number of warm-up iterations profiled before checkpointing
/// starts ("e.g., 20 iterations in our implementation", §5.4).
pub const DEFAULT_PROFILE_ITERATIONS: usize = 20;

/// The averaged idle-timespan profile of one iteration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct IdleProfile {
    /// Averaged idle spans, in iteration-relative time, ascending.
    pub spans: Vec<Span>,
    /// Averaged iteration length.
    pub iteration_time: SimDuration,
    /// Normalized standard deviation of the iteration time across the
    /// profiled window.
    pub iter_time_normalized_stddev: f64,
}

impl IdleProfile {
    /// Total idle time in the averaged profile.
    pub fn total_idle(&self) -> SimDuration {
        self.spans
            .iter()
            .fold(SimDuration::ZERO, |acc, s| acc + s.len())
    }

    /// The idle-span lengths, the `T = {t1, …, td}` input of Algorithm 2.
    pub fn span_lengths(&self) -> Vec<SimDuration> {
        self.spans.iter().map(|s| s.len()).collect()
    }
}

/// Accumulates observed iterations and produces an [`IdleProfile`].
#[derive(Clone, Debug, Default)]
pub struct OnlineProfiler {
    observed: Vec<Vec<Span>>,
    iter_times: OnlineStats,
    target: usize,
}

impl OnlineProfiler {
    /// A profiler that wants `target` iterations before reporting.
    pub fn new(target: usize) -> Self {
        OnlineProfiler {
            observed: Vec::new(),
            iter_times: OnlineStats::new(),
            target: target.max(1),
        }
    }

    /// A profiler with the paper's default window of 20 iterations.
    pub fn with_default_window() -> Self {
        Self::new(DEFAULT_PROFILE_ITERATIONS)
    }

    /// Records one iteration's timeline.
    pub fn observe(&mut self, timeline: &IterationTimeline) {
        self.observed.push(timeline.idle_spans());
        self.iter_times
            .push(timeline.iteration_time().as_secs_f64());
    }

    /// Iterations observed so far.
    pub fn observed_count(&self) -> usize {
        self.observed.len()
    }

    /// Whether enough iterations have been observed.
    pub fn is_ready(&self) -> bool {
        self.observed.len() >= self.target
    }

    /// Produces the averaged idle profile, or `None` before the window is
    /// full.
    ///
    /// Spans are aligned by index (the paper's observation that the
    /// timeline structure is stable across iterations), except the *final*
    /// span — the network-silent optimizer-update tail, which every
    /// iteration has — which is aligned last-to-last. Jitter occasionally
    /// merges or splits tiny mid-iteration gaps, so iterations with a
    /// deviant span count are conservatively truncated to the common
    /// prefix; anchoring the tail separately keeps the structurally
    /// load-bearing update span in the profile regardless.
    pub fn profile(&self) -> Option<IdleProfile> {
        if !self.is_ready() {
            return None;
        }
        let common = self.observed.iter().map(|s| s.len()).min().unwrap_or(0);
        if common == 0 {
            return Some(IdleProfile {
                spans: Vec::new(),
                iteration_time: SimDuration::from_secs_f64(self.iter_times.mean()),
                iter_time_normalized_stddev: self.iter_times.normalized_stddev(),
            });
        }
        let n = self.observed.len() as f64;
        let mut spans = Vec::with_capacity(common);
        let average = |pick: &dyn Fn(&Vec<Span>) -> Span| -> Span {
            let (mut start_acc, mut end_acc) = (0.0f64, 0.0f64);
            for obs in &self.observed {
                let s = pick(obs);
                start_acc += s.start.as_secs_f64();
                end_acc += s.end.as_secs_f64();
            }
            Span::new(
                SimTime::from_secs_f64(start_acc / n),
                SimTime::from_secs_f64(end_acc / n),
            )
        };
        for idx in 0..common - 1 {
            spans.push(average(&|obs: &Vec<Span>| obs[idx]));
        }
        // The final span: each iteration's last gap (the update phase).
        spans.push(average(&|obs: &Vec<Span>| *obs.last().expect("non-empty")));
        Some(IdleProfile {
            spans,
            iteration_time: SimDuration::from_secs_f64(self.iter_times.mean()),
            iter_time_normalized_stddev: self.iter_times.normalized_stddev(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::ModelConfig;
    use crate::timeline::TimelineBuilder;
    use gemini_cluster::InstanceType;
    use gemini_sim::DetRng;

    fn builder() -> TimelineBuilder {
        TimelineBuilder::new(ModelConfig::gpt2_100b(), InstanceType::p4d(), 16)
    }

    fn profiled(noise: f64, seed: u64) -> IdleProfile {
        let b = builder();
        let mut rng = DetRng::new(seed);
        let mut p = OnlineProfiler::with_default_window();
        for _ in 0..DEFAULT_PROFILE_ITERATIONS {
            p.observe(&b.build_jittered(&mut rng, noise));
        }
        p.profile().expect("window full")
    }

    #[test]
    fn not_ready_before_window_full() {
        let b = builder();
        let mut p = OnlineProfiler::new(5);
        for i in 0..4 {
            assert!(!p.is_ready(), "iteration {i}");
            assert!(p.profile().is_none());
            p.observe(&b.build());
        }
        assert!(!p.is_ready());
        p.observe(&b.build());
        assert!(p.is_ready());
        assert!(p.profile().is_some());
    }

    #[test]
    fn noise_free_profile_equals_single_timeline() {
        let b = builder();
        let tl = b.build();
        let mut p = OnlineProfiler::new(3);
        for _ in 0..3 {
            p.observe(&tl);
        }
        let prof = p.profile().unwrap();
        assert_eq!(prof.spans.len(), tl.idle_spans().len());
        assert_eq!(prof.iteration_time, tl.iteration_time());
        assert_eq!(prof.iter_time_normalized_stddev, 0.0);
        assert_eq!(prof.total_idle(), tl.network_idle_total());
    }

    #[test]
    fn jittered_profile_stddev_below_10_percent() {
        // §5.4: normalized stddev of the measurements is below 10%.
        let prof = profiled(0.05, 7);
        assert!(
            prof.iter_time_normalized_stddev < 0.10,
            "stddev = {}",
            prof.iter_time_normalized_stddev
        );
        assert!(!prof.spans.is_empty());
    }

    #[test]
    fn jittered_profile_close_to_deterministic() {
        let base = builder().build();
        let prof = profiled(0.05, 8);
        let base_idle = base.network_idle_total().as_secs_f64();
        let prof_idle = prof.total_idle().as_secs_f64();
        assert!(
            (prof_idle - base_idle).abs() / base_idle < 0.25,
            "base {base_idle:.2}s, profiled {prof_idle:.2}s"
        );
    }

    #[test]
    fn span_lengths_match_spans() {
        let prof = profiled(0.02, 9);
        let lens = prof.span_lengths();
        assert_eq!(lens.len(), prof.spans.len());
        for (l, s) in lens.iter().zip(&prof.spans) {
            assert_eq!(*l, s.len());
        }
    }

    #[test]
    fn target_clamps_to_one() {
        let p = OnlineProfiler::new(0);
        assert!(!p.is_ready());
    }
}
