//! The training data pipeline: a synthetic corpus, a sharded, shuffling
//! data loader, and the loader state that checkpoints must capture.
//!
//! The paper trains on the Wikipedia-en corpus (§7.1). The corpus itself is
//! immaterial to failure recovery, but the *data-loader position* is not:
//! rolling the model states back to iteration `k` without also rolling the
//! sampler back replays or skips data and changes the training trajectory.
//! DeepSpeed therefore persists the loader state inside every checkpoint,
//! and so do we — [`DataLoaderState`] is tiny, deterministic to encode, and
//! travels with the model-state shards through the checkpoint codec.

use gemini_sim::DetRng;
use serde::{Deserialize, Serialize};

/// A synthetic tokenized corpus: `samples` sequences of `seq_len` tokens,
/// generated deterministically from a seed (a stand-in for Wikipedia-en).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyntheticCorpus {
    /// Number of sequences.
    pub samples: u64,
    /// Tokens per sequence.
    pub seq_len: u64,
    /// Vocabulary size (tokens are in `0..vocab`).
    pub vocab: u64,
    /// Generation seed.
    pub seed: u64,
}

impl SyntheticCorpus {
    /// A corpus sized like the paper's setting (vocab 50 265, sequence
    /// length 512).
    pub fn paper_sized(samples: u64, seed: u64) -> SyntheticCorpus {
        SyntheticCorpus {
            samples,
            seq_len: 512,
            vocab: 50_265,
            seed,
        }
    }

    /// The tokens of sequence `index` (deterministic; out-of-range indices
    /// wrap, modelling epoch restarts at the storage layer).
    pub fn sequence(&self, index: u64) -> Vec<u32> {
        let index = if self.samples == 0 {
            0
        } else {
            index % self.samples
        };
        let mut rng = DetRng::new(self.seed).fork_index(index);
        (0..self.seq_len)
            .map(|_| rng.uniform_u64(0, self.vocab.max(1)) as u32)
            .collect()
    }
}

/// The sampler position a checkpoint must capture to make recovery
/// trajectory-preserving.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataLoaderState {
    /// Current epoch (reshuffle generation).
    pub epoch: u64,
    /// Samples already consumed within the epoch (across all ranks).
    pub cursor: u64,
}

impl DataLoaderState {
    /// The start-of-training state.
    pub fn initial() -> DataLoaderState {
        DataLoaderState {
            epoch: 0,
            cursor: 0,
        }
    }

    /// Serializes into a fixed 16-byte record (embedded in checkpoint
    /// frames next to the model states).
    pub fn encode(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.epoch.to_le_bytes());
        out[8..].copy_from_slice(&self.cursor.to_le_bytes());
        out
    }

    /// Decodes a 16-byte record.
    pub fn decode(bytes: &[u8]) -> Option<DataLoaderState> {
        if bytes.len() != 16 {
            return None;
        }
        Some(DataLoaderState {
            epoch: u64::from_le_bytes(bytes[..8].try_into().ok()?),
            cursor: u64::from_le_bytes(bytes[8..].try_into().ok()?),
        })
    }
}

/// A sharded, shuffling data loader: every rank sees a disjoint slice of a
/// per-epoch permutation, like `DistributedSampler`.
#[derive(Clone, Debug)]
pub struct DataLoader {
    corpus: SyntheticCorpus,
    world: u64,
    micro_batch: u64,
    state: DataLoaderState,
    /// The current epoch's permutation (lazily rebuilt on epoch change).
    permutation: Vec<u64>,
    permutation_epoch: u64,
}

impl DataLoader {
    /// Creates a loader over `corpus` for `world` ranks with per-rank batch
    /// `micro_batch`, starting at `state`.
    pub fn new(
        corpus: SyntheticCorpus,
        world: u64,
        micro_batch: u64,
        state: DataLoaderState,
    ) -> DataLoader {
        let mut loader = DataLoader {
            corpus,
            world: world.max(1),
            micro_batch: micro_batch.max(1),
            state,
            permutation: Vec::new(),
            permutation_epoch: u64::MAX,
        };
        loader.ensure_permutation();
        loader
    }

    /// Samples consumed per global step.
    pub fn samples_per_step(&self) -> u64 {
        self.world * self.micro_batch
    }

    /// The loader's checkpointable state.
    pub fn state(&self) -> DataLoaderState {
        self.state
    }

    /// Rewinds (or fast-forwards) to a checkpointed state — the recovery
    /// path.
    pub fn restore(&mut self, state: DataLoaderState) {
        self.state = state;
        self.ensure_permutation();
    }

    fn ensure_permutation(&mut self) {
        if self.permutation_epoch == self.state.epoch {
            return;
        }
        let mut perm: Vec<u64> = (0..self.corpus.samples).collect();
        let mut rng = DetRng::new(self.corpus.seed)
            .fork("shuffle")
            .fork_index(self.state.epoch);
        rng.shuffle(&mut perm);
        self.permutation = perm;
        self.permutation_epoch = self.state.epoch;
    }

    /// Produces every rank's sample indices for the next global step and
    /// advances the cursor once (wrapping into the next epoch as needed —
    /// a step never straddles epochs; the tail is dropped, as
    /// `DistributedSampler` does with `drop_last`).
    pub fn next_step(&mut self) -> Vec<Vec<u64>> {
        let per_step = self.samples_per_step();
        if self.corpus.samples == 0 {
            return vec![Vec::new(); self.world as usize];
        }
        if self.state.cursor + per_step > self.corpus.samples {
            self.state.epoch += 1;
            self.state.cursor = 0;
            self.ensure_permutation();
        }
        let batches = (0..self.world)
            .map(|rank| {
                let base = self.state.cursor + rank * self.micro_batch;
                (0..self.micro_batch)
                    .map(|i| {
                        let pos = (base + i) as usize % self.permutation.len().max(1);
                        self.permutation[pos]
                    })
                    .collect()
            })
            .collect();
        self.state.cursor += per_step;
        batches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus(samples: u64) -> SyntheticCorpus {
        SyntheticCorpus::paper_sized(samples, 7)
    }

    #[test]
    fn corpus_is_deterministic_and_in_vocab() {
        let c = corpus(100);
        let a = c.sequence(42);
        let b = c.sequence(42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 512);
        assert!(a.iter().all(|&t| (t as u64) < c.vocab));
        assert_ne!(c.sequence(42), c.sequence(43));
    }

    #[test]
    fn out_of_range_indices_wrap() {
        let c = corpus(10);
        assert_eq!(c.sequence(3), c.sequence(13));
    }

    #[test]
    fn ranks_see_disjoint_slices() {
        let mut loader = DataLoader::new(corpus(1_000), 4, 8, DataLoaderState::initial());
        let mut seen = std::collections::BTreeSet::new();
        for batch in loader.next_step() {
            assert_eq!(batch.len(), 8);
            for idx in batch {
                assert!(seen.insert(idx), "sample {idx} served twice in one step");
            }
        }
        assert_eq!(seen.len(), 32);
    }

    #[test]
    fn epochs_reshuffle() {
        let c = corpus(64);
        let mut loader = DataLoader::new(c.clone(), 1, 8, DataLoaderState::initial());
        let mut epoch0 = Vec::new();
        for _ in 0..8 {
            epoch0.extend(loader.next_step().remove(0));
        }
        assert_eq!(loader.state().epoch, 0);
        // Next step wraps into epoch 1 with a different permutation.
        let first_of_epoch1 = loader.next_step().remove(0);
        assert_eq!(loader.state().epoch, 1);
        // Both epochs cover the same sample set...
        let mut sorted = epoch0.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        // ...in a different order.
        assert_ne!(&epoch0[..8], &first_of_epoch1[..]);
    }

    #[test]
    fn restore_replays_the_same_data() {
        let mut loader = DataLoader::new(corpus(512), 2, 4, DataLoaderState::initial());
        for _ in 0..10 {
            loader.next_step();
        }
        let ckpt = loader.state();
        let replay_a: Vec<Vec<Vec<u64>>> = (0..6).map(|_| loader.next_step()).collect();
        // Failure: roll back to the checkpoint and replay.
        loader.restore(ckpt);
        let replay_b: Vec<Vec<Vec<u64>>> = (0..6).map(|_| loader.next_step()).collect();
        assert_eq!(replay_a, replay_b, "recovery must be trajectory-preserving");
    }

    #[test]
    fn restore_across_epoch_boundary() {
        let mut loader = DataLoader::new(corpus(40), 2, 4, DataLoaderState::initial());
        // 8 samples/step, 40 samples/epoch → 5 steps per epoch.
        for _ in 0..7 {
            loader.next_step();
        }
        assert_eq!(loader.state().epoch, 1);
        let ckpt = loader.state();
        let a = loader.next_step();
        loader.restore(ckpt);
        let b = loader.next_step();
        assert_eq!(a, b);
    }

    #[test]
    fn state_roundtrips_through_bytes() {
        let s = DataLoaderState {
            epoch: 3,
            cursor: 12_345,
        };
        assert_eq!(DataLoaderState::decode(&s.encode()), Some(s));
        assert_eq!(DataLoaderState::decode(&[0u8; 7]), None);
    }

    #[test]
    fn empty_corpus_yields_empty_batches() {
        let mut loader = DataLoader::new(corpus(0), 2, 4, DataLoaderState::initial());
        let batches = loader.next_step();
        assert_eq!(batches.len(), 2);
        assert!(batches.iter().all(Vec::is_empty));
    }
}
