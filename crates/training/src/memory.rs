//! Per-GPU memory accounting for ZeRO-3 training.
//!
//! The paper reports hard capacity walls: "The largest model size we can
//! train is 100B given the machine scale and the GPU memory size. Further
//! increasing the model size causes GPU out-of-memory errors" on 16 p4d
//! (40 GB A100s), and 40B on 16 p3dn (32 GB V100s) (§7.2). This module
//! prices the components of a rank's footprint:
//!
//! * the ZeRO-3 **shard**: fp16 params + fp16 grads + fp32 master params +
//!   Adam moments = 16 bytes per parameter, divided by the world size;
//! * **activations** with recomputation: one fp16 tensor of
//!   `micro_batch × seq × hidden` per layer (the checkpointed layer
//!   inputs);
//! * the **gathered working set**: the fp16 parameters of the layer in
//!   flight plus the prefetch window;
//! * a calibrated **workspace factor** covering what no analytic model
//!   sees — allocator fragmentation, NCCL rings, cuBLAS workspaces,
//!   gradient-norm scratch — fixed once against the paper's two capacity
//!   anchors.

use crate::models::ModelConfig;
use gemini_cluster::InstanceType;
use gemini_net::ByteSize;
use serde::Serialize;

/// Multiplier on the analytic footprint covering fragmentation and
/// framework workspaces; calibrated so the paper's capacity walls come out
/// (100B trains on 16 p4d but not much more; 40B on 16 p3dn likewise).
pub const WORKSPACE_FACTOR: f64 = 1.6;

/// Parameter-gather prefetch depth assumed resident (current layer + the
/// prefetched window, matching the timeline generator).
const RESIDENT_GATHERED_LAYERS: u64 = 3;

/// The per-GPU memory footprint breakdown.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct MemoryFootprint {
    /// ZeRO-3 shard: 16 bytes/param ÷ world.
    pub shard: ByteSize,
    /// Checkpointed activations (with recomputation).
    pub activations: ByteSize,
    /// Gathered fp16 parameters of the in-flight layers.
    pub gathered: ByteSize,
    /// Everything, workspace factor applied.
    pub total: ByteSize,
}

/// Prices `model` on `world` GPUs.
pub fn footprint(model: &ModelConfig, world: usize) -> MemoryFootprint {
    let world = world.max(1) as u64;
    let shard = ByteSize::from_bytes(16 * model.params() / world);
    // One fp16 activation tensor of mb × seq × hidden per layer survives
    // recomputation, plus the embedding output.
    let act_per_layer = model.micro_batch * model.seq_len * model.hidden * 2;
    let activations = ByteSize::from_bytes(act_per_layer * (model.layers as u64 + 1));
    let gathered = ByteSize::from_bytes(2 * model.layer_params() * RESIDENT_GATHERED_LAYERS);
    let raw = shard + activations + gathered;
    let total = ByteSize::from_bytes((raw.as_bytes() as f64 * WORKSPACE_FACTOR) as u64);
    MemoryFootprint {
        shard,
        activations,
        gathered,
        total,
    }
}

/// Whether `model` fits the GPUs of `machines × instance`.
pub fn fits(model: &ModelConfig, instance: &InstanceType, machines: usize) -> bool {
    let world = machines * instance.gpus as usize;
    footprint(model, world).total <= instance.gpu_mem
}

/// The largest Table 2 model that fits the given deployment, by nominal
/// size.
pub fn largest_trainable(instance: &InstanceType, machines: usize) -> Option<&'static ModelConfig> {
    crate::models::TABLE2_MODELS
        .iter()
        .filter(|m| fits(m, instance, machines))
        .max_by_key(|m| m.nominal_params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::TABLE2_MODELS;

    #[test]
    fn paper_deployments_fit() {
        // Every pairing the evaluation actually ran.
        for (name, inst) in [
            ("GPT-2 100B", InstanceType::p4d()),
            ("RoBERTa 100B", InstanceType::p4d()),
            ("BERT 100B", InstanceType::p4d()),
            ("GPT-2 10B", InstanceType::p3dn()),
            ("GPT-2 20B", InstanceType::p3dn()),
            ("GPT-2 40B", InstanceType::p3dn()),
        ] {
            let m = ModelConfig::by_name(name).unwrap();
            assert!(fits(m, inst, 16), "{name} must fit 16 {}", inst.name);
        }
    }

    #[test]
    fn capacity_walls_match_section_7_2() {
        // "The largest model size we can train is 100B" on 16 p4d...
        assert_eq!(
            largest_trainable(InstanceType::p4d(), 16)
                .unwrap()
                .nominal_params,
            100_000_000_000
        );
        // ...and 40B on 16 p3dn.
        assert_eq!(
            largest_trainable(InstanceType::p3dn(), 16)
                .unwrap()
                .nominal_params,
            40_000_000_000
        );
        // 100B does NOT fit the V100 deployment.
        assert!(!fits(ModelConfig::gpt2_100b(), InstanceType::p3dn(), 16));
    }

    #[test]
    fn footprint_components_are_sane_for_100b() {
        let f = footprint(ModelConfig::gpt2_100b(), 128);
        // 16 B/param × 100e9 / 128 = 12.5 GB shard.
        assert!((f.shard.as_gb_f64() - 12.5).abs() < 0.01);
        // 8×512×8192×2 × 125 layers ≈ 8.4 GB of activations.
        assert!((f.activations.as_gb_f64() - 8.4).abs() < 0.2);
        assert!(f.total > f.shard + f.activations);
        // Within the A100's 40 GiB.
        assert!(f.total <= InstanceType::p4d().gpu_mem);
    }

    #[test]
    fn fewer_machines_need_more_memory_per_gpu() {
        let big = footprint(ModelConfig::gpt2_100b(), 128).total;
        let small = footprint(ModelConfig::gpt2_100b(), 32).total;
        assert!(small > big);
        // 100B on 4 machines blows the A100 budget outright.
        assert!(!fits(ModelConfig::gpt2_100b(), InstanceType::p4d(), 4));
    }

    #[test]
    fn monotone_in_model_size() {
        let mut prev = ByteSize::ZERO;
        for name in ["GPT-2 10B", "GPT-2 20B", "GPT-2 40B", "GPT-2 100B"] {
            let m = TABLE2_MODELS.iter().find(|m| m.name == name).unwrap();
            let f = footprint(m, 128);
            assert!(f.total > prev, "{name}");
            prev = f.total;
        }
    }
}
