//! The expert-parallel MoE step model and sparse-checkpoint arithmetic.
//!
//! Grounded in "Sparse Checkpointing for Fast and Reliable MoE Training"
//! (PAPERS.md): a mixture-of-experts model routes each token to `top_k` of
//! `experts` expert FFNs, so between two checkpoints only the *recently
//! updated* experts are dirty and an incremental checkpoint can persist the
//! dense backbone plus the dirty experts only — strictly no more than the
//! full checkpoint.
//!
//! Sizing keeps the *same nominal parameter total* as the dense model: the
//! FFN of every `moe_layer_every`-th layer is split into `experts` shards.
//! Full-checkpoint volume and GPU memory are therefore unchanged, while
//! per-token compute touches `top_k / experts` of each expert pool and the
//! expert parameters are never all-gathered (expert parallelism) — tokens
//! travel to experts via all-to-all dispatch/combine instead.
//!
//! Gating is modelled deterministically: expert `e` is touched at iteration
//! `i` when a split-mix hash of `(i, e)` clears a Zipf-skewed threshold
//! (`P ∝ 1/(e+1)`, normalized so the expected hot set is ≈ `2·top_k`
//! experts). Low-index experts are hot and nearly always dirty; the tail is
//! cold — the activation skew the sparse-checkpointing literature reports.

use crate::models::ModelConfig;
use crate::workload::MoeSpec;
use crate::zero::Zero3Setup;
use gemini_cluster::InstanceType;
use gemini_net::ByteSize;
use serde::Serialize;
use std::collections::BTreeSet;

/// SplitMix64 finalizer — the deterministic gating hash.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// An MoE model trained with expert parallelism on a cluster.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct MoeSetup {
    /// The underlying ZeRO-3 sharding of the dense backbone.
    pub zero: Zero3Setup,
    /// The MoE knobs.
    pub spec: MoeSpec,
}

impl MoeSetup {
    /// Creates a setup for `model` on `machines` machines of `instance`.
    pub fn new(
        model: &ModelConfig,
        instance: &InstanceType,
        machines: usize,
        spec: MoeSpec,
    ) -> Self {
        MoeSetup {
            zero: Zero3Setup::new(model, instance, machines),
            spec,
        }
    }

    /// Whether transformer layer `l` (0-based) is an MoE layer: every
    /// `moe_layer_every`-th layer, starting from the last of each stride so
    /// `every = 1` makes all layers MoE.
    pub fn is_moe_layer(&self, layer: usize) -> bool {
        (layer as u32 + 1) % self.spec.moe_layer_every == 0
    }

    /// Number of MoE layers in the model.
    pub fn moe_layer_count(&self) -> usize {
        (0..self.zero.model.layers as usize)
            .filter(|&l| self.is_moe_layer(l))
            .count()
    }

    /// Fraction of one MoE layer's parameters that live in the expert pool
    /// (the FFN share).
    pub fn ffn_fraction(&self) -> f64 {
        MoeSpec::ffn_fraction(self.zero.model.hidden, self.zero.model.intermediate)
    }

    /// Fraction of the *total* checkpoint that is expert parameters.
    pub fn expert_checkpoint_fraction(&self) -> f64 {
        let per_layer = self.zero.model.layer_params() as f64;
        let expert_params = self.moe_layer_count() as f64 * per_layer * self.ffn_fraction();
        expert_params / self.zero.model.params() as f64
    }

    /// Fraction of the total checkpoint that is the dense backbone
    /// (embeddings, attention, layer norms, dense-layer FFNs).
    pub fn backbone_fraction(&self) -> f64 {
        1.0 - self.expert_checkpoint_fraction()
    }

    /// Active fraction of an MoE layer's compute relative to its dense
    /// counterpart: the backbone share in full, plus `top_k / experts` of
    /// the expert pool.
    pub fn active_layer_fraction(&self) -> f64 {
        let ffn = self.ffn_fraction();
        let active = self.spec.top_k as f64 / self.spec.experts as f64;
        (1.0 - ffn) + ffn * active
    }

    /// Global all-to-all payload of one MoE layer's dispatch (or combine):
    /// every token's fp16 activation travels to its `top_k` experts.
    pub fn dispatch_payload_bytes(&self) -> ByteSize {
        let tokens = self.zero.model.tokens_per_gpu() * self.zero.world_size() as u64;
        ByteSize::from_bytes(
            tokens
                * self.spec.top_k as u64
                * self.zero.model.hidden
                * crate::models::COMM_BYTES_PER_PARAM,
        )
    }

    /// Probability (per 10 000) that expert `e` is touched in one iteration:
    /// Zipf-skewed routing, normalized so the expected hot set is
    /// ≈ `min(2·top_k, experts)` experts.
    pub fn touch_per_10k(&self, expert: usize) -> u64 {
        let harmonic: f64 = (1..=self.spec.experts).map(|r| 1.0 / r as f64).sum();
        let hot = (2 * self.spec.top_k).min(self.spec.experts) as f64;
        let p = (hot / harmonic) / (expert as f64 + 1.0);
        (p.min(1.0) * 10_000.0) as u64
    }

    /// The deterministic hot-expert set of iteration `iteration` — the
    /// experts whose parameters that iteration's optimizer step updates.
    pub fn touched_experts(&self, iteration: u64) -> Vec<usize> {
        (0..self.spec.experts)
            .filter(|&e| {
                let h = mix64(
                    (iteration.wrapping_add(1))
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add((e as u64).wrapping_mul(0xD1B5_4A32_D192_ED03)),
                );
                h % 10_000 < self.touch_per_10k(e)
            })
            .collect()
    }

    /// Expected hot-set size per iteration (sum of touch probabilities).
    pub fn expected_touched(&self) -> f64 {
        (0..self.spec.experts)
            .map(|e| self.touch_per_10k(e) as f64 / 10_000.0)
            .sum()
    }

    /// Incremental-checkpoint volume, as a fraction of the full checkpoint,
    /// when `dirty` experts changed since the last flush: the backbone plus
    /// the dirty share of the expert pool. Always in `(0, 1]`.
    pub fn incremental_fraction(&self, dirty: usize) -> f64 {
        let dirty = dirty.min(self.spec.experts) as f64;
        self.backbone_fraction()
            + self.expert_checkpoint_fraction() * dirty / self.spec.experts as f64
    }

    /// Steady-state incremental fraction with a flush every iteration — the
    /// estimate the executor uses to price pre-preemption flushes.
    pub fn steady_incremental_fraction(&self) -> f64 {
        self.backbone_fraction()
            + self.expert_checkpoint_fraction() * self.expected_touched()
                / self.spec.experts as f64
    }

    /// Incremental-checkpoint bytes per machine for `dirty` dirty experts.
    pub fn incremental_bytes_per_machine(&self, dirty: usize) -> ByteSize {
        let full = self.zero.ckpt_bytes_per_machine().as_bytes() as f64;
        ByteSize::from_bytes((full * self.incremental_fraction(dirty)).round() as u64)
    }
}

/// Tracks which experts changed since the last checkpoint flush.
#[derive(Clone, Debug, Default, Serialize)]
pub struct IncrementalTracker {
    dirty: BTreeSet<usize>,
}

impl IncrementalTracker {
    /// A tracker with no dirty experts.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one iteration's hot-expert set.
    pub fn observe(&mut self, touched: &[usize]) {
        self.dirty.extend(touched.iter().copied());
    }

    /// Number of experts dirty since the last flush.
    pub fn dirty_count(&self) -> usize {
        self.dirty.len()
    }

    /// The dirty experts, sorted.
    pub fn dirty_experts(&self) -> Vec<usize> {
        self.dirty.iter().copied().collect()
    }

    /// Flushes the incremental checkpoint: returns how many experts it had
    /// to include and marks everything clean.
    pub fn flush(&mut self) -> usize {
        let n = self.dirty.len();
        self.dirty.clear();
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::MoeSpec;

    fn setup() -> MoeSetup {
        MoeSetup::new(
            ModelConfig::gpt2_100b(),
            InstanceType::p4d(),
            16,
            MoeSpec::default(),
        )
    }

    #[test]
    fn half_the_layers_are_moe() {
        let s = setup();
        // 124 layers, every 2nd → 62 MoE layers.
        assert_eq!(s.moe_layer_count(), 62);
        assert!(!s.is_moe_layer(0));
        assert!(s.is_moe_layer(1));
    }

    #[test]
    fn fractions_partition_the_checkpoint() {
        let s = setup();
        let e = s.expert_checkpoint_fraction();
        assert!((0.2..0.5).contains(&e), "expert fraction = {e}");
        assert!((s.backbone_fraction() + e - 1.0).abs() < 1e-12);
    }

    #[test]
    fn active_fraction_cuts_moe_layer_compute() {
        let s = setup();
        let a = s.active_layer_fraction();
        // top-2 of 8 experts on a ≈2/3-FFN layer → roughly half the flops.
        assert!((0.3..0.7).contains(&a), "active fraction = {a}");
    }

    #[test]
    fn gating_is_deterministic_and_skewed() {
        let s = setup();
        for i in 0..50u64 {
            assert_eq!(s.touched_experts(i), s.touched_experts(i));
        }
        // Expert 0 is hot (P = 1 here), the tail is cold.
        assert!(s.touch_per_10k(0) > s.touch_per_10k(7));
        let hits7 = (0..200u64)
            .filter(|&i| s.touched_experts(i).contains(&7))
            .count();
        let hits0 = (0..200u64)
            .filter(|&i| s.touched_experts(i).contains(&0))
            .count();
        assert!(hits0 > hits7, "hot {hits0} vs cold {hits7}");
    }

    #[test]
    fn incremental_never_exceeds_full() {
        let s = setup();
        for dirty in 0..=s.spec.experts {
            let f = s.incremental_fraction(dirty);
            assert!(f > 0.0 && f <= 1.0 + 1e-12, "dirty={dirty}: {f}");
            assert!(
                s.incremental_bytes_per_machine(dirty) <= s.zero.ckpt_bytes_per_machine(),
                "dirty={dirty}"
            );
        }
        assert!((s.incremental_fraction(s.spec.experts) - 1.0).abs() < 1e-12);
        let steady = s.steady_incremental_fraction();
        assert!(steady < 1.0 && steady > s.backbone_fraction());
    }

    #[test]
    fn tracker_accumulates_and_flushes() {
        let s = setup();
        let mut t = IncrementalTracker::new();
        assert_eq!(t.dirty_count(), 0);
        t.observe(&s.touched_experts(0));
        t.observe(&s.touched_experts(1));
        t.observe(&s.touched_experts(0)); // idempotent
        let d = t.dirty_count();
        assert!(d >= 1 && d <= s.spec.experts);
        assert_eq!(t.flush(), d);
        assert_eq!(t.dirty_count(), 0);
        assert!(t.dirty_experts().is_empty());
    }
}
