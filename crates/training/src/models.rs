//! Model configurations — the paper's Table 2 — and sizing arithmetic.
//!
//! Checkpoint sizing follows ZeRO-3 with mixed-precision Adam: the persisted
//! model states are the fp32 master parameters plus the two Adam moments,
//! i.e. **12 bytes per parameter**, sharded evenly across the world. This
//! reproduces the paper's measured 9.4 GB per GPU for GPT-2 100B on 128
//! GPUs (§5.2: "the checkpoint size of GPT2-100B on each GPU is 9.4GB").
//!
//! Table 2's architectural hyper-parameters do not always multiply out to
//! the nominal size in the model's name (e.g. "GPT-2 10B"'s layer count
//! yields ≈3.9 B parameters); we expose both [`ModelConfig::exact_params`]
//! (derived from the architecture) and the nominal count, and use the
//! nominal count for all sizing so the figures line up with the paper's
//! labels. The per-layer breakdown used by the timeline generator is the
//! exact per-layer share rescaled to the nominal total.

use gemini_net::ByteSize;
use serde::{Deserialize, Serialize};

/// Bytes of persisted model state per parameter (fp32 master + Adam m + v).
pub const CKPT_BYTES_PER_PARAM: u64 = 12;

/// Bytes per parameter moved by a parameter all-gather (fp16).
pub const COMM_BYTES_PER_PARAM: u64 = 2;

/// Model family, as in Table 2.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Architecture {
    /// Decoder-only GPT-2 style.
    Gpt2,
    /// RoBERTa encoder.
    Roberta,
    /// BERT encoder.
    Bert,
}

impl Architecture {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Architecture::Gpt2 => "GPT-2",
            Architecture::Roberta => "RoBERTa",
            Architecture::Bert => "BERT",
        }
    }
}

/// One row of the paper's Table 2 plus the training hyper-parameters used
/// throughout the evaluation (§7.1: sequence length 512, vocabulary 50265,
/// micro-batch 8, mixed precision, activation recomputation, Adam).
#[derive(Clone, Copy, Debug, Serialize)]
pub struct ModelConfig {
    /// Display name, e.g. `GPT-2 100B`.
    pub name: &'static str,
    /// Model family.
    pub arch: Architecture,
    /// Nominal parameter count from the model's name (e.g. 100 B).
    pub nominal_params: u64,
    /// Hidden size.
    pub hidden: u64,
    /// Feed-forward intermediate size.
    pub intermediate: u64,
    /// Transformer layers.
    pub layers: u32,
    /// Attention heads.
    pub heads: u32,
    /// Vocabulary size.
    pub vocab: u64,
    /// Sequence length.
    pub seq_len: u64,
    /// Micro-batch size per GPU.
    pub micro_batch: u64,
}

impl ModelConfig {
    /// Parameters of one transformer layer derived from the architecture:
    /// attention (4H² + 4H), feed-forward (2·H·I + H + I) and two layer
    /// norms (4H).
    pub fn layer_params_exact(&self) -> u64 {
        let h = self.hidden;
        let i = self.intermediate;
        4 * h * h + 4 * h + 2 * h * i + h + i + 4 * h
    }

    /// Embedding parameters (token + position embeddings).
    pub fn embedding_params_exact(&self) -> u64 {
        self.vocab * self.hidden + self.seq_len * self.hidden
    }

    /// Exact parameter count from the architecture.
    pub fn exact_params(&self) -> u64 {
        self.embedding_params_exact() + self.layers as u64 * self.layer_params_exact()
    }

    /// The parameter count used for sizing (the nominal count, so results
    /// carry the paper's labels).
    pub fn params(&self) -> u64 {
        self.nominal_params
    }

    /// Per-layer share of the nominal parameters: the exact per-layer
    /// fraction rescaled to the nominal total.
    pub fn layer_params(&self) -> u64 {
        let exact_total = self.exact_params() as f64;
        let frac = self.layer_params_exact() as f64 / exact_total;
        (self.nominal_params as f64 * frac) as u64
    }

    /// Embedding share of the nominal parameters.
    pub fn embedding_params(&self) -> u64 {
        self.nominal_params - self.layer_params() * self.layers as u64
    }

    /// Tokens processed per GPU per iteration.
    pub fn tokens_per_gpu(&self) -> u64 {
        self.micro_batch * self.seq_len
    }

    /// Total persisted model-state bytes (all shards together).
    pub fn checkpoint_bytes_total(&self) -> ByteSize {
        ByteSize::from_bytes(self.params() * CKPT_BYTES_PER_PARAM)
    }

    /// Persisted model-state bytes per GPU at the given world size.
    pub fn checkpoint_bytes_per_gpu(&self, world: usize) -> ByteSize {
        self.checkpoint_bytes_total() / world.max(1) as u64
    }

    /// Persisted model-state bytes per machine (its GPUs' shards together).
    pub fn checkpoint_bytes_per_machine(&self, machines: usize) -> ByteSize {
        self.checkpoint_bytes_total() / machines.max(1) as u64
    }

    /// Training FLOPs per GPU per iteration with activation recomputation:
    /// forward 2PT + backward 4PT + recompute 2PT = 8PT, with `P` the
    /// per-GPU *model* parameters (dense transformer approximation) and `T`
    /// the tokens the GPU processes.
    pub fn flops_per_gpu_per_iter(&self) -> f64 {
        8.0 * self.params() as f64 * self.tokens_per_gpu() as f64
    }

    /// Looks up a Table 2 model by display name.
    pub fn by_name(name: &str) -> Option<&'static ModelConfig> {
        TABLE2_MODELS.iter().find(|m| m.name == name)
    }

    /// GPT-2 100B, the representative model of the evaluation (§7.2).
    pub fn gpt2_100b() -> &'static ModelConfig {
        Self::by_name("GPT-2 100B").expect("GPT-2 100B is in Table 2")
    }

    /// GPT-2 40B, the model used for the traffic-interleaving ablation
    /// (Fig. 16).
    pub fn gpt2_40b() -> &'static ModelConfig {
        Self::by_name("GPT-2 40B").expect("GPT-2 40B is in Table 2")
    }
}

const fn table2(
    name: &'static str,
    arch: Architecture,
    nominal_b: u64,
    hidden: u64,
    intermediate: u64,
    layers: u32,
    heads: u32,
) -> ModelConfig {
    ModelConfig {
        name,
        arch,
        nominal_params: nominal_b * 1_000_000_000,
        hidden,
        intermediate,
        layers,
        heads,
        vocab: 50_265,
        seq_len: 512,
        micro_batch: 8,
    }
}

/// The paper's Table 2: eight large-language-model configurations.
pub static TABLE2_MODELS: &[ModelConfig] = &[
    table2("GPT-2 10B", Architecture::Gpt2, 10, 2_560, 10_240, 46, 40),
    table2("GPT-2 20B", Architecture::Gpt2, 20, 5_120, 20_480, 64, 40),
    table2("GPT-2 40B", Architecture::Gpt2, 40, 5_120, 20_480, 128, 40),
    table2(
        "RoBERTa 40B",
        Architecture::Roberta,
        40,
        5_120,
        20_480,
        128,
        40,
    ),
    table2("BERT 40B", Architecture::Bert, 40, 5_120, 20_480, 128, 40),
    table2(
        "GPT-2 100B",
        Architecture::Gpt2,
        100,
        8_192,
        32_768,
        124,
        64,
    ),
    table2(
        "RoBERTa 100B",
        Architecture::Roberta,
        100,
        8_192,
        32_768,
        124,
        64,
    ),
    table2("BERT 100B", Architecture::Bert, 100, 8_192, 32_768, 124, 64),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_eight_rows() {
        assert_eq!(TABLE2_MODELS.len(), 8);
    }

    #[test]
    fn gpt2_100b_exact_params_match_nominal() {
        // For the 100B configs the architecture multiplies out to ≈100 B,
        // validating the layer-parameter formula.
        let m = ModelConfig::gpt2_100b();
        let exact = m.exact_params() as f64;
        assert!(
            (exact / 1e9 - 100.0).abs() < 2.0,
            "exact = {:.1}B",
            exact / 1e9
        );
    }

    #[test]
    fn gpt2_40b_and_20b_exact_params_match_nominal() {
        let m40 = ModelConfig::gpt2_40b();
        assert!((m40.exact_params() as f64 / 1e9 - 40.0).abs() < 1.0);
        let m20 = ModelConfig::by_name("GPT-2 20B").unwrap();
        assert!((m20.exact_params() as f64 / 1e9 - 20.0).abs() < 1.0);
    }

    #[test]
    fn checkpoint_per_gpu_matches_paper_9_4gb() {
        // §5.2: GPT2-100B checkpoint is 9.4 GB per GPU on 128 GPUs.
        let m = ModelConfig::gpt2_100b();
        let per_gpu = m.checkpoint_bytes_per_gpu(128);
        assert!((per_gpu.as_gb_f64() - 9.375).abs() < 0.01, "got {per_gpu}");
    }

    #[test]
    fn checkpoint_per_machine_is_eight_gpu_shards() {
        let m = ModelConfig::gpt2_100b();
        let per_machine = m.checkpoint_bytes_per_machine(16);
        assert_eq!(per_machine, m.checkpoint_bytes_per_gpu(128) * 8);
        assert!((per_machine.as_gb_f64() - 75.0).abs() < 0.01);
    }

    #[test]
    fn layer_share_rescales_to_nominal() {
        for m in TABLE2_MODELS {
            let total = m.layer_params() * m.layers as u64 + m.embedding_params();
            assert_eq!(total, m.nominal_params, "{}", m.name);
            assert!(m.embedding_params() > 0, "{}", m.name);
        }
    }

    #[test]
    fn flops_match_8pt() {
        let m = ModelConfig::gpt2_100b();
        let f = m.flops_per_gpu_per_iter();
        // 8 × 100e9 × (8 × 512) = 3.2768e15.
        assert!((f - 3.2768e15).abs() / f < 1e-12);
    }

    #[test]
    fn lookup_and_accessors() {
        assert!(ModelConfig::by_name("BERT 40B").is_some());
        assert!(ModelConfig::by_name("GPT-5").is_none());
        assert_eq!(ModelConfig::gpt2_40b().layers, 128);
        assert_eq!(Architecture::Roberta.name(), "RoBERTa");
    }

    #[test]
    fn tokens_per_gpu_is_4096() {
        for m in TABLE2_MODELS {
            assert_eq!(m.tokens_per_gpu(), 4096);
        }
    }
}
