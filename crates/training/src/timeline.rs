//! The iteration-timeline generator.
//!
//! Reproduces the communication/computation structure of a ZeRO-3 training
//! iteration (paper Fig. 4): per-layer parameter all-gathers in the forward
//! pass, all-gathers plus gradient reduce-scatters in the backward pass, and
//! a network-silent optimizer update at the end. The NIC is a FIFO resource;
//! collectives are issued in program order with prefetching, so the network
//! shows a long busy block early in the iteration and increasingly many
//! *idle timespans* as computation falls behind communication — the gaps
//! GEMINI fills with checkpoint traffic.
//!
//! ## Calibration
//!
//! All hardware constants come from the instance catalog
//! ([`gemini_cluster::catalog`]); the single constant owned by this module
//! is [`OPTIMIZER_PARAMS_PER_SEC`], the effective optimizer-update
//! throughput per GPU. Together they are fixed so that GPT-2 100B on 16
//! p4d.24xlarge machines lands on the paper's anchors: ≈62 s iterations with
//! roughly 12–15 s of network idle time (§7.2, Fig. 7/8), and GPT-2 40B on
//! 16 p3dn.24xlarge lands near 45 s (Fig. 13/16).

use crate::models::ModelConfig;
use crate::moe::MoeSetup;
use crate::workload::WorkloadSpec;
use crate::zero::Zero3Setup;
use gemini_cluster::InstanceType;
use gemini_collectives::{collective_time, CollectiveKind};
use gemini_net::{ByteSize, TransferCost};
use gemini_sim::{DetRng, SimDuration, SimTime, Span, Timeline};
use serde::{Deserialize, Serialize};

/// Effective optimizer-update throughput per GPU, in parameters per second.
///
/// DeepSpeed's mixed-precision Adam step touches the fp32 master weights and
/// both moments, computes the global gradient norm and re-casts to fp16; at
/// 100 B-parameter scale this takes several seconds per iteration. The value
/// is calibrated so the GPT-2 100B update phase is ≈9.5 s, which closes the
/// gap between the 52.5 s of overlapped compute and the paper's measured
/// 62 s iteration.
pub const OPTIMIZER_PARAMS_PER_SEC: f64 = 8.2e7;

/// How many layers ahead parameter all-gathers are prefetched in the
/// backward pass (DeepSpeed prefetches a small window of upcoming layers).
const PREFETCH_DEPTH: usize = 2;

/// The kind of an operation on the iteration timeline.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum OpKind {
    /// Forward-pass parameter all-gather.
    ForwardAllGather,
    /// Forward-pass layer computation.
    ForwardCompute,
    /// Backward-pass parameter all-gather.
    BackwardAllGather,
    /// Backward-pass layer computation (incl. activation recomputation).
    BackwardCompute,
    /// Gradient reduce-scatter.
    ReduceScatter,
    /// Optimizer update (network-silent).
    Update,
    /// MoE all-to-all sending tokens to their routed experts.
    ExpertDispatch,
    /// MoE all-to-all returning expert outputs to the owning ranks.
    ExpertCombine,
}

/// One placed operation.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PlacedOp {
    /// What the operation is.
    pub kind: OpKind,
    /// Which layer it belongs to (`None` for embeddings / update).
    pub layer: Option<u32>,
    /// Where it sits on the timeline.
    pub span: Span,
}

/// The complete timeline of one training iteration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct IterationTimeline {
    /// The iteration window `[0, iteration_time)`.
    pub window: Span,
    /// Network (NIC) busy spans.
    pub network_busy: Timeline,
    /// GPU compute busy spans.
    pub compute_busy: Timeline,
    /// The optimizer-update span at the end of the iteration.
    pub update_span: Span,
    /// Every placed operation, for inspection and rendering.
    pub ops: Vec<PlacedOp>,
}

impl IterationTimeline {
    /// Total iteration time.
    pub fn iteration_time(&self) -> SimDuration {
        self.window.len()
    }

    /// The network idle timespans within the iteration — the set `T` that
    /// the paper's Algorithm 2 consumes.
    pub fn idle_spans(&self) -> Vec<Span> {
        self.network_busy.gaps(self.window)
    }

    /// Total network idle time (plotted in Fig. 8 / Fig. 13b).
    pub fn network_idle_total(&self) -> SimDuration {
        self.idle_spans()
            .iter()
            .fold(SimDuration::ZERO, |acc, s| acc + s.len())
    }

    /// Total network busy time.
    pub fn network_busy_total(&self) -> SimDuration {
        self.network_busy.total()
    }

    /// The largest single idle span (drives the naive-interleave buffer
    /// requirement in §7.4).
    pub fn largest_idle_span(&self) -> SimDuration {
        self.idle_spans()
            .iter()
            .map(|s| s.len())
            .fold(SimDuration::ZERO, SimDuration::max)
    }
}

/// Builds [`IterationTimeline`]s for a model on a cluster.
///
/// # Examples
///
/// ```
/// use gemini_cluster::InstanceType;
/// use gemini_training::{ModelConfig, TimelineBuilder};
///
/// let timeline =
///     TimelineBuilder::new(ModelConfig::gpt2_100b(), InstanceType::p4d(), 16).build();
/// // The paper's anchor: ~62 s iterations with >10 s of network idle time.
/// assert!((timeline.iteration_time().as_secs_f64() - 62.0).abs() < 5.0);
/// assert!(timeline.network_idle_total().as_secs_f64() > 10.0);
/// ```
#[derive(Clone, Debug)]
pub struct TimelineBuilder {
    setup: Zero3Setup,
    instance: InstanceType,
    workload: WorkloadSpec,
}

/// Internal FIFO resource tracker used during construction.
struct FifoTrack {
    free_at: SimTime,
    spans: Vec<Span>,
}

impl FifoTrack {
    fn new() -> Self {
        FifoTrack {
            free_at: SimTime::ZERO,
            spans: Vec::new(),
        }
    }

    /// Reserves `dur` issued at `issue`; FIFO semantics.
    fn reserve(&mut self, issue: SimTime, dur: SimDuration) -> Span {
        let start = issue.max(self.free_at);
        let span = Span::with_len(start, dur);
        if !dur.is_zero() {
            self.spans.push(span);
            self.free_at = span.end;
        }
        span
    }
}

impl TimelineBuilder {
    /// Creates a builder for a dense ZeRO-3 run of `model` on `machines`
    /// machines of `instance`.
    pub fn new(model: &ModelConfig, instance: &InstanceType, machines: usize) -> Self {
        Self::with_workload(model, instance, machines, WorkloadSpec::dense())
    }

    /// Creates a builder for an explicit [`WorkloadSpec`] (dense or MoE).
    pub fn with_workload(
        model: &ModelConfig,
        instance: &InstanceType,
        machines: usize,
        workload: WorkloadSpec,
    ) -> Self {
        TimelineBuilder {
            setup: Zero3Setup::new(model, instance, machines),
            instance: instance.clone(),
            workload,
        }
    }

    /// The underlying ZeRO-3 setup.
    pub fn setup(&self) -> &Zero3Setup {
        &self.setup
    }

    /// The instance type in use.
    pub fn instance(&self) -> &InstanceType {
        &self.instance
    }

    /// The workload this builder models.
    pub fn workload(&self) -> WorkloadSpec {
        self.workload
    }

    /// Builds the deterministic (noise-free) iteration timeline.
    pub fn build(&self) -> IterationTimeline {
        self.build_inner(None)
    }

    /// Builds a timeline with multiplicative jitter of ±`frac` on every
    /// operation duration, modelling run-to-run variance. The paper's online
    /// profiler measures a normalized standard deviation below 10% (§5.4).
    pub fn build_jittered(&self, rng: &mut DetRng, frac: f64) -> IterationTimeline {
        self.build_inner(Some((rng, frac)))
    }

    fn build_inner(&self, jitter: Option<(&mut DetRng, f64)>) -> IterationTimeline {
        match self.workload.moe() {
            None => self.build_dense_inner(jitter),
            Some(spec) => {
                let moe = MoeSetup {
                    zero: self.setup,
                    spec,
                };
                self.build_moe_inner(jitter, &moe)
            }
        }
    }

    fn build_dense_inner(&self, mut jitter: Option<(&mut DetRng, f64)>) -> IterationTimeline {
        let mut j = move |d: SimDuration| -> SimDuration {
            match &mut jitter {
                None => d,
                Some((rng, frac)) => {
                    let f = rng.uniform(1.0 - *frac, 1.0 + *frac);
                    d.mul_f64(f)
                }
            }
        };

        let model = &self.setup.model;
        let layers = model.layers as usize;
        let net_cost = self.instance.training_net_cost();
        let eff_flops = self.instance.effective_gpu_flops();
        let tokens = model.tokens_per_gpu() as f64;

        // Per-layer durations.
        let layer_bytes = self.setup.layer_param_bytes();
        let embed_bytes = self.setup.embedding_param_bytes();
        let t_ag_layer = self.ag_time(layer_bytes, &net_cost);
        let t_ag_embed = self.ag_time(embed_bytes, &net_cost);
        let flops_fwd_layer = 2.0 * model.layer_params() as f64 * tokens;
        let flops_bwd_layer = 6.0 * model.layer_params() as f64 * tokens;
        let flops_fwd_embed = 2.0 * model.embedding_params() as f64 * tokens;
        let flops_bwd_embed = 6.0 * model.embedding_params() as f64 * tokens;
        let t_fwd_layer = SimDuration::from_secs_f64(flops_fwd_layer / eff_flops);
        let t_bwd_layer = SimDuration::from_secs_f64(flops_bwd_layer / eff_flops);
        let t_fwd_embed = SimDuration::from_secs_f64(flops_fwd_embed / eff_flops);
        let t_bwd_embed = SimDuration::from_secs_f64(flops_bwd_embed / eff_flops);

        let mut net = FifoTrack::new();
        let mut comp = FifoTrack::new();
        let mut ops: Vec<PlacedOp> = Vec::with_capacity(4 * layers + 8);

        // ---- Forward pass ----
        // Embedding all-gather + compute, then per-layer AG/compute with the
        // NIC running ahead (forward prefetch is effectively unbounded: the
        // gathered fp16 parameters of upcoming layers are small relative to
        // activations, and DeepSpeed keeps the communication stream fed).
        let embed_ag = net.reserve(SimTime::ZERO, j(t_ag_embed));
        ops.push(PlacedOp {
            kind: OpKind::ForwardAllGather,
            layer: None,
            span: embed_ag,
        });
        let embed_comp = comp.reserve(embed_ag.end, j(t_fwd_embed));
        ops.push(PlacedOp {
            kind: OpKind::ForwardCompute,
            layer: None,
            span: embed_comp,
        });

        let mut fwd_ag_end = vec![SimTime::ZERO; layers];
        for l in 0..layers {
            let span = net.reserve(SimTime::ZERO, j(t_ag_layer));
            fwd_ag_end[l] = span.end;
            ops.push(PlacedOp {
                kind: OpKind::ForwardAllGather,
                layer: Some(l as u32),
                span,
            });
        }
        for l in 0..layers {
            let start = comp.free_at.max(fwd_ag_end[l]);
            let span = comp.reserve(start, j(t_fwd_layer));
            ops.push(PlacedOp {
                kind: OpKind::ForwardCompute,
                layer: Some(l as u32),
                span,
            });
        }

        // ---- Backward pass ----
        // Processed top layer first. AG(l) for the next PREFETCH_DEPTH
        // layers is issued as backward computation advances; RS(l) is issued
        // when layer l's backward compute finishes.
        let bwd_begin = comp.free_at;
        let mut bwd_ag_end = vec![SimTime::ZERO; layers];
        // Prefetch the first window immediately.
        for l in (layers.saturating_sub(PREFETCH_DEPTH)..layers).rev() {
            let span = net.reserve(bwd_begin, j(t_ag_layer));
            bwd_ag_end[l] = span.end;
            ops.push(PlacedOp {
                kind: OpKind::BackwardAllGather,
                layer: Some(l as u32),
                span,
            });
        }
        for l in (0..layers).rev() {
            // Prefetch the AG that keeps the window PREFETCH_DEPTH deep.
            if l >= PREFETCH_DEPTH {
                let target = l - PREFETCH_DEPTH;
                let span = net.reserve(comp.free_at, j(t_ag_layer));
                bwd_ag_end[target] = span.end;
                ops.push(PlacedOp {
                    kind: OpKind::BackwardAllGather,
                    layer: Some(target as u32),
                    span,
                });
            }
            let start = comp.free_at.max(bwd_ag_end[l]);
            let cspan = comp.reserve(start, j(t_bwd_layer));
            ops.push(PlacedOp {
                kind: OpKind::BackwardCompute,
                layer: Some(l as u32),
                span: cspan,
            });
            // Gradient reduce-scatter, issued when this layer's grads exist.
            let rs = net.reserve(cspan.end, j(t_ag_layer));
            ops.push(PlacedOp {
                kind: OpKind::ReduceScatter,
                layer: Some(l as u32),
                span: rs,
            });
        }
        // Embedding backward: compute then reduce-scatter.
        let espan = comp.reserve(comp.free_at, j(t_bwd_embed));
        ops.push(PlacedOp {
            kind: OpKind::BackwardCompute,
            layer: None,
            span: espan,
        });
        let ers = net.reserve(espan.end, j(t_ag_embed));
        ops.push(PlacedOp {
            kind: OpKind::ReduceScatter,
            layer: None,
            span: ers,
        });

        // ---- Optimizer update ----
        let update_len = SimDuration::from_secs_f64(
            self.setup.params_per_gpu() as f64 / OPTIMIZER_PARAMS_PER_SEC,
        );
        let update_start = comp.free_at.max(net.free_at);
        let update_span = comp.reserve(update_start, j(update_len));
        ops.push(PlacedOp {
            kind: OpKind::Update,
            layer: None,
            span: update_span,
        });

        let end = update_span.end;
        IterationTimeline {
            window: Span::new(SimTime::ZERO, end),
            network_busy: Timeline::from_spans(net.spans.iter().copied()),
            compute_busy: Timeline::from_spans(comp.spans.iter().copied()),
            update_span,
            ops,
        }
    }

    /// The expert-parallel iteration. MoE layers all-gather only their dense
    /// backbone (experts stay resident under expert parallelism), route
    /// tokens through dispatch/combine all-to-alls, and compute only the
    /// `top_k / experts` active slice of the expert pool. Because dispatch
    /// depends on the previous layer's output, forward all-gathers are
    /// issued with a bounded prefetch window rather than all upfront.
    fn build_moe_inner(
        &self,
        mut jitter: Option<(&mut DetRng, f64)>,
        moe: &MoeSetup,
    ) -> IterationTimeline {
        let mut j = move |d: SimDuration| -> SimDuration {
            match &mut jitter {
                None => d,
                Some((rng, frac)) => {
                    let f = rng.uniform(1.0 - *frac, 1.0 + *frac);
                    d.mul_f64(f)
                }
            }
        };

        let model = &self.setup.model;
        let layers = model.layers as usize;
        let net_cost = self.instance.training_net_cost();
        let eff_flops = self.instance.effective_gpu_flops();
        let tokens = model.tokens_per_gpu() as f64;

        let layer_bytes = self.setup.layer_param_bytes();
        let backbone_bytes = ByteSize::from_bytes(
            (layer_bytes.as_bytes() as f64 * (1.0 - moe.ffn_fraction())).round() as u64,
        );
        let embed_bytes = self.setup.embedding_param_bytes();
        let t_ag_dense = self.ag_time(layer_bytes, &net_cost);
        let t_ag_backbone = self.ag_time(backbone_bytes, &net_cost);
        let t_ag_embed = self.ag_time(embed_bytes, &net_cost);
        let t_a2a = collective_time(
            CollectiveKind::AllToAll,
            self.setup.machines,
            moe.dispatch_payload_bytes(),
            &net_cost,
        );
        let active = moe.active_layer_fraction();
        let flops_fwd_layer = 2.0 * model.layer_params() as f64 * tokens;
        let flops_bwd_layer = 6.0 * model.layer_params() as f64 * tokens;
        let flops_fwd_embed = 2.0 * model.embedding_params() as f64 * tokens;
        let flops_bwd_embed = 6.0 * model.embedding_params() as f64 * tokens;
        let t_fwd = |is_moe: bool| {
            let f = if is_moe { active } else { 1.0 };
            SimDuration::from_secs_f64(flops_fwd_layer * f / eff_flops)
        };
        let t_bwd = |is_moe: bool| {
            let f = if is_moe { active } else { 1.0 };
            SimDuration::from_secs_f64(flops_bwd_layer * f / eff_flops)
        };
        let t_ag = |is_moe: bool| if is_moe { t_ag_backbone } else { t_ag_dense };

        let mut net = FifoTrack::new();
        let mut comp = FifoTrack::new();
        let mut ops: Vec<PlacedOp> = Vec::with_capacity(6 * layers + 8);

        // ---- Forward pass ----
        let embed_ag = net.reserve(SimTime::ZERO, j(t_ag_embed));
        ops.push(PlacedOp {
            kind: OpKind::ForwardAllGather,
            layer: None,
            span: embed_ag,
        });
        let embed_comp = comp.reserve(
            embed_ag.end,
            j(SimDuration::from_secs_f64(flops_fwd_embed / eff_flops)),
        );
        ops.push(PlacedOp {
            kind: OpKind::ForwardCompute,
            layer: None,
            span: embed_comp,
        });

        let mut fwd_ag_end = vec![SimTime::ZERO; layers];
        let mut issued = 0usize;
        for l in 0..layers {
            // Keep the all-gather window PREFETCH_DEPTH layers deep.
            while issued < layers && issued <= l + PREFETCH_DEPTH {
                let span = net.reserve(comp.free_at, j(t_ag(moe.is_moe_layer(issued))));
                fwd_ag_end[issued] = span.end;
                ops.push(PlacedOp {
                    kind: OpKind::ForwardAllGather,
                    layer: Some(issued as u32),
                    span,
                });
                issued += 1;
            }
            if moe.is_moe_layer(l) {
                let disp = net.reserve(comp.free_at.max(fwd_ag_end[l]), j(t_a2a));
                ops.push(PlacedOp {
                    kind: OpKind::ExpertDispatch,
                    layer: Some(l as u32),
                    span: disp,
                });
                let cspan = comp.reserve(comp.free_at.max(disp.end), j(t_fwd(true)));
                ops.push(PlacedOp {
                    kind: OpKind::ForwardCompute,
                    layer: Some(l as u32),
                    span: cspan,
                });
                let comb = net.reserve(cspan.end, j(t_a2a));
                ops.push(PlacedOp {
                    kind: OpKind::ExpertCombine,
                    layer: Some(l as u32),
                    span: comb,
                });
                // The next layer consumes the combined output.
                comp.free_at = comp.free_at.max(comb.end);
            } else {
                let start = comp.free_at.max(fwd_ag_end[l]);
                let span = comp.reserve(start, j(t_fwd(false)));
                ops.push(PlacedOp {
                    kind: OpKind::ForwardCompute,
                    layer: Some(l as u32),
                    span,
                });
            }
        }

        // ---- Backward pass ----
        let bwd_begin = comp.free_at;
        let mut bwd_ag_end = vec![SimTime::ZERO; layers];
        for l in (layers.saturating_sub(PREFETCH_DEPTH)..layers).rev() {
            let span = net.reserve(bwd_begin, j(t_ag(moe.is_moe_layer(l))));
            bwd_ag_end[l] = span.end;
            ops.push(PlacedOp {
                kind: OpKind::BackwardAllGather,
                layer: Some(l as u32),
                span,
            });
        }
        for l in (0..layers).rev() {
            if l >= PREFETCH_DEPTH {
                let target = l - PREFETCH_DEPTH;
                let span = net.reserve(comp.free_at, j(t_ag(moe.is_moe_layer(target))));
                bwd_ag_end[target] = span.end;
                ops.push(PlacedOp {
                    kind: OpKind::BackwardAllGather,
                    layer: Some(target as u32),
                    span,
                });
            }
            let is_moe = moe.is_moe_layer(l);
            if is_moe {
                // Route the output gradients back to the experts.
                let disp = net.reserve(comp.free_at.max(bwd_ag_end[l]), j(t_a2a));
                ops.push(PlacedOp {
                    kind: OpKind::ExpertDispatch,
                    layer: Some(l as u32),
                    span: disp,
                });
                let cspan = comp.reserve(comp.free_at.max(disp.end), j(t_bwd(true)));
                ops.push(PlacedOp {
                    kind: OpKind::BackwardCompute,
                    layer: Some(l as u32),
                    span: cspan,
                });
                let comb = net.reserve(cspan.end, j(t_a2a));
                ops.push(PlacedOp {
                    kind: OpKind::ExpertCombine,
                    layer: Some(l as u32),
                    span: comb,
                });
                comp.free_at = comp.free_at.max(comb.end);
                // Backbone gradients still reduce-scatter; expert gradients
                // stay resident with their experts.
                let rs = net.reserve(comp.free_at, j(t_ag(true)));
                ops.push(PlacedOp {
                    kind: OpKind::ReduceScatter,
                    layer: Some(l as u32),
                    span: rs,
                });
            } else {
                let start = comp.free_at.max(bwd_ag_end[l]);
                let cspan = comp.reserve(start, j(t_bwd(false)));
                ops.push(PlacedOp {
                    kind: OpKind::BackwardCompute,
                    layer: Some(l as u32),
                    span: cspan,
                });
                let rs = net.reserve(cspan.end, j(t_ag(false)));
                ops.push(PlacedOp {
                    kind: OpKind::ReduceScatter,
                    layer: Some(l as u32),
                    span: rs,
                });
            }
        }
        let espan = comp.reserve(
            comp.free_at,
            j(SimDuration::from_secs_f64(flops_bwd_embed / eff_flops)),
        );
        ops.push(PlacedOp {
            kind: OpKind::BackwardCompute,
            layer: None,
            span: espan,
        });
        let ers = net.reserve(espan.end, j(t_ag_embed));
        ops.push(PlacedOp {
            kind: OpKind::ReduceScatter,
            layer: None,
            span: ers,
        });

        // ---- Optimizer update ----
        let update_len = SimDuration::from_secs_f64(
            self.setup.params_per_gpu() as f64 / OPTIMIZER_PARAMS_PER_SEC,
        );
        let update_start = comp.free_at.max(net.free_at);
        let update_span = comp.reserve(update_start, j(update_len));
        ops.push(PlacedOp {
            kind: OpKind::Update,
            layer: None,
            span: update_span,
        });

        let end = update_span.end;
        IterationTimeline {
            window: Span::new(SimTime::ZERO, end),
            network_busy: Timeline::from_spans(net.spans.iter().copied()),
            compute_busy: Timeline::from_spans(comp.spans.iter().copied()),
            update_span,
            ops,
        }
    }

    fn ag_time(&self, total: ByteSize, cost: &TransferCost) -> SimDuration {
        collective_time(CollectiveKind::AllGather, self.setup.machines, total, cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::ModelConfig;

    fn timeline_100b() -> IterationTimeline {
        TimelineBuilder::new(ModelConfig::gpt2_100b(), InstanceType::p4d(), 16).build()
    }

    fn timeline_40b_p3dn() -> IterationTimeline {
        TimelineBuilder::new(ModelConfig::gpt2_40b(), InstanceType::p3dn(), 16).build()
    }

    #[test]
    fn gpt2_100b_iteration_near_62s() {
        // §7.2: "The iteration time of GPT-2 100B with 16 p4d.24xlarge is
        // 62 seconds".
        let t = timeline_100b();
        let iter = t.iteration_time().as_secs_f64();
        assert!((iter - 62.0).abs() < 5.0, "iteration = {iter:.1}s");
    }

    #[test]
    fn gpt2_100b_idle_time_matches_fig8() {
        // Fig. 8: around 12.5 s of network idle time per iteration.
        let t = timeline_100b();
        let idle = t.network_idle_total().as_secs_f64();
        assert!((10.0..20.0).contains(&idle), "idle = {idle:.1}s");
    }

    #[test]
    fn gpt2_40b_p3dn_iteration_near_45s() {
        // Fig. 13a / Fig. 16: GPT-2 40B on 16 p3dn runs ≈40-48 s iterations.
        let t = timeline_40b_p3dn();
        let iter = t.iteration_time().as_secs_f64();
        assert!((38.0..52.0).contains(&iter), "iteration = {iter:.1}s");
    }

    #[test]
    fn gpt2_40b_p3dn_has_a_few_seconds_idle() {
        // Fig. 13b: a handful of seconds of idle time.
        let t = timeline_40b_p3dn();
        let idle = t.network_idle_total().as_secs_f64();
        assert!((2.0..12.0).contains(&idle), "idle = {idle:.1}s");
    }

    #[test]
    fn busy_plus_idle_equals_iteration() {
        let t = timeline_100b();
        let sum = t.network_busy_total() + t.network_idle_total();
        assert_eq!(sum, t.iteration_time());
    }

    #[test]
    fn update_phase_is_network_silent() {
        let t = timeline_100b();
        assert!(!t.update_span.is_empty());
        let update_tl = Timeline::from_spans([t.update_span]);
        assert!(t.network_busy.overlap(&update_tl).is_zero());
        // And it is the tail of the iteration.
        assert_eq!(t.update_span.end, t.window.end);
    }

    #[test]
    fn network_and_compute_spans_stay_inside_window() {
        let t = timeline_100b();
        for tlx in [&t.network_busy, &t.compute_busy] {
            assert!(tlx.last_end().unwrap() <= t.window.end);
            assert!(tlx.check_invariants());
        }
    }

    #[test]
    fn idle_spans_are_disjoint_from_busy() {
        let t = timeline_100b();
        let idle = Timeline::from_spans(t.idle_spans());
        assert!(t.network_busy.overlap(&idle).is_zero());
    }

    #[test]
    fn op_count_matches_structure() {
        let m = ModelConfig::gpt2_100b();
        let t = timeline_100b();
        let l = m.layers as usize;
        // fwd: (L+1) AG + (L+1) compute; bwd: L AG + (L+1) compute + (L+1)
        // RS; update: 1.
        assert_eq!(t.ops.len(), 2 * (l + 1) + l + 2 * (l + 1) + 1);
    }

    #[test]
    fn jitter_changes_but_stays_close() {
        let b = TimelineBuilder::new(ModelConfig::gpt2_100b(), InstanceType::p4d(), 16);
        let base = b.build().iteration_time().as_secs_f64();
        let mut rng = DetRng::new(4);
        let jit = b
            .build_jittered(&mut rng, 0.05)
            .iteration_time()
            .as_secs_f64();
        assert!(jit != base);
        assert!((jit - base).abs() / base < 0.1, "base {base}, jit {jit}");
    }

    #[test]
    fn largest_idle_span_is_the_update_phase() {
        let t = timeline_100b();
        assert_eq!(t.largest_idle_span(), t.update_span.len());
    }

    #[test]
    fn more_machines_longer_communication() {
        let m = ModelConfig::gpt2_100b();
        let t4 = TimelineBuilder::new(m, InstanceType::p4d(), 4).build();
        let t16 = TimelineBuilder::new(m, InstanceType::p4d(), 16).build();
        assert!(t16.network_busy_total() > t4.network_busy_total());
    }

    #[test]
    fn moe_timeline_has_expert_traffic_and_runs_faster() {
        use crate::workload::WorkloadSpec;
        let dense = timeline_100b();
        let moe = TimelineBuilder::with_workload(
            ModelConfig::gpt2_100b(),
            InstanceType::p4d(),
            16,
            WorkloadSpec::moe_default(),
        )
        .build();
        let dispatches = moe
            .ops
            .iter()
            .filter(|o| o.kind == OpKind::ExpertDispatch)
            .count();
        let combines = moe
            .ops
            .iter()
            .filter(|o| o.kind == OpKind::ExpertCombine)
            .count();
        // 62 MoE layers, forward + backward a2a pairs.
        assert_eq!(dispatches, 124);
        assert_eq!(combines, 124);
        // Sparse activation cuts GPU compute; token routing adds NIC time.
        assert!(
            moe.compute_busy.total() < dense.compute_busy.total(),
            "moe compute {:.1}s vs dense {:.1}s",
            moe.compute_busy.total().as_secs_f64(),
            dense.compute_busy.total().as_secs_f64()
        );
        assert!(
            moe.network_busy_total() > dense.network_busy_total(),
            "moe net {:.1}s vs dense {:.1}s",
            moe.network_busy_total().as_secs_f64(),
            dense.network_busy_total().as_secs_f64()
        );
        // The a2a tax is bounded: within 1.6× of the dense iteration.
        assert!(
            moe.iteration_time() < dense.iteration_time().mul_f64(1.6),
            "moe {:.1}s vs dense {:.1}s",
            moe.iteration_time().as_secs_f64(),
            dense.iteration_time().as_secs_f64()
        );
        assert!(!moe.idle_spans().is_empty());
        let sum = moe.network_busy_total() + moe.network_idle_total();
        assert_eq!(sum, moe.iteration_time());
        for tlx in [&moe.network_busy, &moe.compute_busy] {
            assert!(tlx.last_end().unwrap() <= moe.window.end);
            assert!(tlx.check_invariants());
        }
    }

    #[test]
    fn dense_workload_builder_matches_plain_builder() {
        use crate::workload::WorkloadSpec;
        let a = timeline_100b();
        let b = TimelineBuilder::with_workload(
            ModelConfig::gpt2_100b(),
            InstanceType::p4d(),
            16,
            WorkloadSpec::dense(),
        )
        .build();
        assert_eq!(a.iteration_time(), b.iteration_time());
        assert_eq!(a.ops.len(), b.ops.len());
        assert_eq!(a.network_busy_total(), b.network_busy_total());
    }

    #[test]
    fn all_table2_models_build() {
        for m in crate::models::TABLE2_MODELS {
            let inst = if m.nominal_params >= 100_000_000_000 {
                InstanceType::p4d()
            } else {
                InstanceType::p3dn()
            };
            let t = TimelineBuilder::new(m, inst, 16).build();
            assert!(t.iteration_time() > SimDuration::ZERO, "{}", m.name);
            assert!(!t.idle_spans().is_empty(), "{}", m.name);
        }
    }
}
