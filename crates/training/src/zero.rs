//! ZeRO-3 sharding arithmetic for a model on a cluster.
//!
//! ZeRO-3 shards parameters, gradients and optimizer states across the full
//! world. Each layer's forward pass all-gathers that layer's fp16
//! parameters, the backward pass all-gathers them again and reduce-scatters
//! the gradients (paper §5.1). This module computes the per-layer and
//! per-iteration communication volumes and the per-machine checkpoint size.

use crate::models::{ModelConfig, COMM_BYTES_PER_PARAM};
use gemini_cluster::InstanceType;
use gemini_collectives::{bytes_per_node, CollectiveKind};
use gemini_net::ByteSize;
use serde::Serialize;

/// A model trained with ZeRO-3 on `machines` machines of one instance type.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Zero3Setup {
    /// The model configuration.
    pub model: ModelConfig,
    /// Number of machines.
    pub machines: usize,
    /// GPUs per machine.
    pub gpus_per_machine: u32,
}

impl Zero3Setup {
    /// Creates a setup for `model` on `machines` machines of `instance`.
    pub fn new(model: &ModelConfig, instance: &InstanceType, machines: usize) -> Self {
        Zero3Setup {
            model: *model,
            machines,
            gpus_per_machine: instance.gpus,
        }
    }

    /// Total GPUs.
    pub fn world_size(&self) -> usize {
        self.machines * self.gpus_per_machine as usize
    }

    /// fp16 bytes of one layer's full parameter set.
    pub fn layer_param_bytes(&self) -> ByteSize {
        ByteSize::from_bytes(self.model.layer_params() * COMM_BYTES_PER_PARAM)
    }

    /// fp16 bytes of the embedding parameters.
    pub fn embedding_param_bytes(&self) -> ByteSize {
        ByteSize::from_bytes(self.model.embedding_params() * COMM_BYTES_PER_PARAM)
    }

    /// Inter-machine bytes each NIC carries for one layer all-gather.
    pub fn layer_allgather_nic_bytes(&self) -> ByteSize {
        bytes_per_node(
            CollectiveKind::AllGather,
            self.machines,
            self.layer_param_bytes(),
        )
    }

    /// Inter-machine NIC bytes per iteration: two all-gathers (forward +
    /// backward) and one reduce-scatter, over every layer plus embeddings.
    pub fn iteration_nic_bytes(&self) -> ByteSize {
        let per_layer = self.layer_allgather_nic_bytes() * 3;
        let embed = bytes_per_node(
            CollectiveKind::AllGather,
            self.machines,
            self.embedding_param_bytes(),
        ) * 3;
        per_layer * self.model.layers as u64 + embed
    }

    /// Persisted checkpoint bytes held by one machine (its GPUs' shards of
    /// fp32 master parameters + Adam moments).
    pub fn ckpt_bytes_per_machine(&self) -> ByteSize {
        self.model.checkpoint_bytes_per_machine(self.machines)
    }

    /// Parameters in one GPU's optimizer shard.
    pub fn params_per_gpu(&self) -> u64 {
        self.model.params() / self.world_size().max(1) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup_100b() -> Zero3Setup {
        Zero3Setup::new(ModelConfig::gpt2_100b(), InstanceType::p4d(), 16)
    }

    #[test]
    fn world_size() {
        assert_eq!(setup_100b().world_size(), 128);
    }

    #[test]
    fn iteration_nic_bytes_is_about_6p() {
        // 3 collectives × 2 bytes/param × (N-1)/N ≈ 5.6 bytes/param at N=16.
        let s = setup_100b();
        let bytes = s.iteration_nic_bytes().as_bytes() as f64;
        let expected = 6.0 * 100e9 * 15.0 / 16.0;
        assert!(
            (bytes - expected).abs() / expected < 0.01,
            "bytes = {bytes:.3e}, expected ≈ {expected:.3e}"
        );
    }

    #[test]
    fn ckpt_bytes_per_machine_75gb() {
        let s = setup_100b();
        assert!((s.ckpt_bytes_per_machine().as_gb_f64() - 75.0).abs() < 0.01);
    }

    #[test]
    fn params_per_gpu() {
        let s = setup_100b();
        assert_eq!(s.params_per_gpu(), 100_000_000_000 / 128);
    }

    #[test]
    fn single_machine_has_no_nic_traffic() {
        let s = Zero3Setup::new(ModelConfig::gpt2_100b(), InstanceType::p4d(), 1);
        assert_eq!(s.iteration_nic_bytes(), ByteSize::ZERO);
    }

    #[test]
    fn layer_bytes_scale_with_hidden_size() {
        let small = Zero3Setup::new(
            ModelConfig::by_name("GPT-2 10B").unwrap(),
            InstanceType::p3dn(),
            16,
        );
        let big = setup_100b();
        assert!(big.layer_param_bytes() > small.layer_param_bytes());
    }
}
