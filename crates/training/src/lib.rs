//! The ZeRO-3 training model.
//!
//! GEMINI schedules checkpoint traffic into the *network idle timespans* of
//! a training iteration (paper §5). This crate produces those timespans from
//! first principles: model configurations (the paper's Table 2), ZeRO-3
//! sharding arithmetic, a per-layer iteration-timeline generator whose
//! constants are calibrated against the paper's measured anchors, and the
//! online profiler that observes the first iterations of a (jittered) run
//! and emits the averaged idle profile Algorithm 2 consumes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod data;
pub mod memory;
pub mod models;
pub mod moe;
pub mod profiler;
pub mod timeline;
pub mod workload;
pub mod zero;

pub use data::{DataLoader, DataLoaderState, SyntheticCorpus};
pub use memory::MemoryFootprint;
pub use models::{Architecture, ModelConfig, TABLE2_MODELS};
pub use moe::{IncrementalTracker, MoeSetup};
pub use profiler::{IdleProfile, OnlineProfiler};
pub use timeline::{IterationTimeline, TimelineBuilder};
pub use workload::{MoeSpec, WorkloadSpec, Zero3Spec};
pub use zero::Zero3Setup;
