//! Typed workload descriptions.
//!
//! Historically every entry point assumed a dense ZeRO-3 workload; the MoE
//! timeline (ROADMAP item 5) makes the workload an explicit axis. A
//! [`WorkloadSpec`] names the training recipe — dense ZeRO-3 or
//! expert-parallel mixture-of-experts — and is carried by deployments,
//! scenario builders and service queries so every layer (timeline, memory,
//! checkpoint volume, placement math) can branch on it.

use serde::{Deserialize, Serialize};

/// Marker for the dense ZeRO-3 recipe (paper §5.1). Carries no knobs today;
/// it exists so the dense/MoE split is a typed enum rather than an implicit
/// default, and leaves room for dense-specific knobs later.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub struct Zero3Spec;

/// Knobs of an expert-parallel mixture-of-experts workload.
///
/// The MoE model keeps the *same nominal parameter total* as its dense
/// counterpart — the FFN of every `moe_layer_every`-th layer is split into
/// `experts` expert shards — so full-checkpoint volume and memory validation
/// are unchanged, while per-token compute touches only `top_k` experts.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct MoeSpec {
    /// Experts per MoE layer.
    pub experts: usize,
    /// Experts each token is routed to.
    pub top_k: usize,
    /// Every `moe_layer_every`-th transformer layer is an MoE layer.
    pub moe_layer_every: u32,
    /// Dense placement groups spanned by one expert replication group (the
    /// expert-shard placement knob; see `gemini_core::placement::expert`).
    pub expert_span: usize,
}

impl Default for MoeSpec {
    fn default() -> Self {
        MoeSpec {
            experts: 8,
            top_k: 2,
            moe_layer_every: 2,
            expert_span: 2,
        }
    }
}

impl MoeSpec {
    /// Whether the knobs are internally consistent.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.experts == 0 {
            return Err("an MoE workload needs at least one expert");
        }
        if self.top_k == 0 || self.top_k > self.experts {
            return Err("top_k must be in 1..=experts");
        }
        if self.moe_layer_every == 0 {
            return Err("moe_layer_every must be at least 1");
        }
        if self.expert_span == 0 {
            return Err("expert_span must be at least 1");
        }
        Ok(())
    }

    /// Fraction of a dense layer's parameters that live in the expert pool
    /// (the FFN share), for a transformer layer of hidden size `h` and
    /// intermediate size `i`: `(2hi + h + i) / (4h² + 4h + 2hi + h + i + 4h)`.
    pub fn ffn_fraction(hidden: u64, intermediate: u64) -> f64 {
        let h = hidden as f64;
        let i = intermediate as f64;
        let ffn = 2.0 * h * i + h + i;
        let layer = 4.0 * h * h + 4.0 * h + ffn + 4.0 * h;
        ffn / layer
    }
}

/// The training recipe of a deployment.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// Dense ZeRO-3 (the paper's setting).
    Dense(Zero3Spec),
    /// Expert-parallel mixture-of-experts with sparse checkpointing.
    Moe(MoeSpec),
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec::Dense(Zero3Spec)
    }
}

impl WorkloadSpec {
    /// The dense ZeRO-3 workload.
    pub fn dense() -> Self {
        WorkloadSpec::Dense(Zero3Spec)
    }

    /// An MoE workload with the default knobs (8 experts, top-2 gating,
    /// MoE layers every 2nd layer, expert span 2).
    pub fn moe_default() -> Self {
        WorkloadSpec::Moe(MoeSpec::default())
    }

    /// Short label used in reports and query canonicalization.
    pub fn label(&self) -> &'static str {
        match self {
            WorkloadSpec::Dense(_) => "dense",
            WorkloadSpec::Moe(_) => "moe",
        }
    }

    /// The MoE knobs, when this is an MoE workload.
    pub fn moe(&self) -> Option<MoeSpec> {
        match self {
            WorkloadSpec::Dense(_) => None,
            WorkloadSpec::Moe(spec) => Some(*spec),
        }
    }

    /// Whether this is an MoE workload.
    pub fn is_moe(&self) -> bool {
        matches!(self, WorkloadSpec::Moe(_))
    }

    /// Validates the contained knobs.
    pub fn validate(&self) -> Result<(), &'static str> {
        match self {
            WorkloadSpec::Dense(_) => Ok(()),
            WorkloadSpec::Moe(spec) => spec.validate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_dense() {
        assert_eq!(WorkloadSpec::default(), WorkloadSpec::dense());
        assert!(!WorkloadSpec::default().is_moe());
        assert_eq!(WorkloadSpec::default().label(), "dense");
    }

    #[test]
    fn moe_default_knobs() {
        let w = WorkloadSpec::moe_default();
        assert!(w.is_moe());
        assert_eq!(w.label(), "moe");
        let spec = w.moe().unwrap();
        assert_eq!(spec.experts, 8);
        assert_eq!(spec.top_k, 2);
        assert!(w.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_knobs() {
        let mut spec = MoeSpec::default();
        spec.top_k = 9;
        assert!(WorkloadSpec::Moe(spec).validate().is_err());
        spec = MoeSpec {
            experts: 0,
            ..MoeSpec::default()
        };
        assert!(spec.validate().is_err());
        spec = MoeSpec {
            moe_layer_every: 0,
            ..MoeSpec::default()
        };
        assert!(spec.validate().is_err());
        spec = MoeSpec {
            expert_span: 0,
            ..MoeSpec::default()
        };
        assert!(spec.validate().is_err());
    }

    #[test]
    fn ffn_fraction_is_most_of_a_layer() {
        // With I = 4H the FFN is ≈ 2/3 of a layer's parameters.
        let f = MoeSpec::ffn_fraction(8192, 32768);
        assert!((0.6..0.75).contains(&f), "ffn fraction = {f}");
    }
}
