//! Property-based tests of the iteration-timeline generator across all
//! Table 2 models, cluster sizes and jitter levels.

use gemini_cluster::InstanceType;
use gemini_sim::{DetRng, SimDuration, Timeline};
use gemini_training::data::{DataLoader, DataLoaderState, SyntheticCorpus};
use gemini_training::memory::footprint;
use gemini_training::{
    IncrementalTracker, MoeSetup, MoeSpec, OnlineProfiler, TimelineBuilder, TABLE2_MODELS,
};
use proptest::prelude::*;

fn moe_spec_strategy() -> impl Strategy<Value = MoeSpec> {
    (1usize..=64)
        .prop_flat_map(|experts| (Just(experts), 1usize..=experts, 1u32..=6, 1usize..=4))
        .prop_map(|(experts, top_k, moe_layer_every, expert_span)| MoeSpec {
            experts,
            top_k,
            moe_layer_every,
            expert_span,
        })
}

fn builder_strategy() -> impl Strategy<Value = TimelineBuilder> {
    (0usize..TABLE2_MODELS.len(), 2usize..24, prop::bool::ANY).prop_map(
        |(model_idx, machines, big_iron)| {
            let inst = if big_iron {
                InstanceType::p4d()
            } else {
                InstanceType::p3dn()
            };
            TimelineBuilder::new(&TABLE2_MODELS[model_idx], inst, machines)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn timeline_structural_invariants(builder in builder_strategy()) {
        let t = builder.build();
        // Busy + idle exactly tile the iteration window.
        prop_assert_eq!(
            t.network_busy_total() + t.network_idle_total(),
            t.iteration_time()
        );
        // Spans are normalized and inside the window.
        prop_assert!(t.network_busy.check_invariants());
        prop_assert!(t.compute_busy.check_invariants());
        if let Some(end) = t.network_busy.last_end() {
            prop_assert!(end <= t.window.end);
        }
        // Idle spans never overlap busy spans.
        let idle = Timeline::from_spans(t.idle_spans());
        prop_assert!(t.network_busy.overlap(&idle).is_zero());
        // The update phase is network-silent and terminal.
        let upd = Timeline::from_spans([t.update_span]);
        prop_assert!(t.network_busy.overlap(&upd).is_zero());
        prop_assert_eq!(t.update_span.end, t.window.end);
    }

    #[test]
    fn timeline_deterministic(builder in builder_strategy()) {
        let a = builder.build();
        let b = builder.build();
        prop_assert_eq!(a.iteration_time(), b.iteration_time());
        prop_assert_eq!(a.network_busy, b.network_busy);
    }

    #[test]
    fn jitter_stays_proportional(builder in builder_strategy(), seed in any::<u64>()) {
        let base = builder.build().iteration_time().as_secs_f64();
        let mut rng = DetRng::new(seed);
        let jit = builder
            .build_jittered(&mut rng, 0.05)
            .iteration_time()
            .as_secs_f64();
        prop_assert!((jit - base).abs() / base < 0.15, "base {base}, jit {jit}");
    }

    #[test]
    fn more_machines_more_network_time(model_idx in 0usize..TABLE2_MODELS.len()) {
        let model = &TABLE2_MODELS[model_idx];
        let small = TimelineBuilder::new(model, InstanceType::p4d(), 4).build();
        let large = TimelineBuilder::new(model, InstanceType::p4d(), 16).build();
        prop_assert!(large.network_busy_total() > small.network_busy_total());
    }

    #[test]
    fn profiler_profile_tracks_observations(builder in builder_strategy(), seed in any::<u64>()) {
        let mut rng = DetRng::new(seed);
        let mut profiler = OnlineProfiler::new(5);
        let mut idle_sum = 0.0;
        for _ in 0..5 {
            let t = builder.build_jittered(&mut rng, 0.03);
            idle_sum += t.network_idle_total().as_secs_f64();
            profiler.observe(&t);
        }
        let profile = profiler.profile().unwrap();
        // The averaged idle time is close to the mean of the observations.
        let mean_idle = idle_sum / 5.0;
        let profiled = profile.total_idle().as_secs_f64();
        prop_assert!(
            (profiled - mean_idle).abs() < mean_idle.max(0.1) * 0.6,
            "profiled {profiled}, mean {mean_idle}"
        );
        // Spans come out in ascending, non-overlapping order.
        for w in profile.spans.windows(2) {
            prop_assert!(w[0].end <= w[1].start);
        }
        // Normalized stddev stays under the paper's 10% observation.
        prop_assert!(profile.iter_time_normalized_stddev < 0.10);
    }

    #[test]
    fn idle_always_enough_for_paper_checkpoints(machines in 8usize..24) {
        // For every Table 2 model on its evaluation hardware, the idle time
        // exceeds the checkpoint's network time — the premise behind
        // GEMINI's zero-overhead claim (§7.2).
        for model in TABLE2_MODELS {
            let inst = if model.nominal_params >= 100_000_000_000 {
                InstanceType::p4d()
            } else {
                InstanceType::p3dn()
            };
            let t = TimelineBuilder::new(model, inst, machines).build();
            let ckpt_bytes = model.checkpoint_bytes_per_machine(machines);
            let ckpt_time = inst.ckpt_net_cost().time(ckpt_bytes);
            prop_assert!(
                t.network_idle_total() > ckpt_time,
                "{} on {} machines: idle {} vs ckpt {}",
                model.name,
                machines,
                t.network_idle_total(),
                ckpt_time
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dataloader_restore_is_trajectory_preserving(
        samples in 32u64..500,
        world in 1u64..8,
        micro in 1u64..8,
        warm_steps in 0usize..20,
        replay_steps in 1usize..10,
        seed in any::<u64>(),
    ) {
        let corpus = SyntheticCorpus {
            samples,
            seq_len: 16,
            vocab: 1000,
            seed,
        };
        let mut loader = DataLoader::new(corpus, world, micro, DataLoaderState::initial());
        prop_assume!(loader.samples_per_step() <= samples);
        for _ in 0..warm_steps {
            loader.next_step();
        }
        let ckpt = loader.state();
        let a: Vec<_> = (0..replay_steps).map(|_| loader.next_step()).collect();
        loader.restore(ckpt);
        let b: Vec<_> = (0..replay_steps).map(|_| loader.next_step()).collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn dataloader_step_is_disjoint_within_epoch(
        samples in 64u64..500,
        world in 1u64..6,
        micro in 1u64..6,
        seed in any::<u64>(),
    ) {
        let corpus = SyntheticCorpus { samples, seq_len: 8, vocab: 100, seed };
        let mut loader = DataLoader::new(corpus, world, micro, DataLoaderState::initial());
        prop_assume!(loader.samples_per_step() <= samples);
        let batches = loader.next_step();
        let mut seen = std::collections::BTreeSet::new();
        for batch in batches {
            for idx in batch {
                prop_assert!(idx < samples);
                prop_assert!(seen.insert(idx));
            }
        }
    }

    #[test]
    fn loader_state_codec_roundtrips(epoch in any::<u64>(), cursor in any::<u64>()) {
        let s = DataLoaderState { epoch, cursor };
        prop_assert_eq!(DataLoaderState::decode(&s.encode()), Some(s));
    }

    #[test]
    fn memory_footprint_monotone_in_world(model_idx in 0usize..TABLE2_MODELS.len(),
                                          w in 1usize..512) {
        let m = &TABLE2_MODELS[model_idx];
        let small_world = footprint(m, w).total;
        let big_world = footprint(m, w * 2).total;
        prop_assert!(big_world <= small_world);
    }

    /// Sparse MoE checkpoints can never exceed the full checkpoint, for
    /// any internally-consistent gating knobs: the incremental fraction is
    /// in `(0, 1]`, monotone in the dirty count, saturates at exactly 1
    /// when every expert is dirty, and the deterministic gating keeps the
    /// tracker's dirty set inside the expert pool.
    #[test]
    fn moe_incremental_checkpoints_never_exceed_full(
        spec in moe_spec_strategy(),
        model_idx in 0usize..TABLE2_MODELS.len(),
        machines in 2usize..24,
        iters in 1u64..40,
    ) {
        prop_assert!(spec.validate().is_ok());
        let setup = MoeSetup::new(
            &TABLE2_MODELS[model_idx],
            &InstanceType::p4d(),
            machines,
            spec,
        );
        let full = setup.zero.ckpt_bytes_per_machine();
        let mut prev = 0.0f64;
        for dirty in 0..=spec.experts {
            let f = setup.incremental_fraction(dirty);
            prop_assert!(f > 0.0 && f <= 1.0 + 1e-12, "fraction {f} out of (0,1]");
            prop_assert!(f + 1e-12 >= prev, "fraction shrank as dirty grew");
            prev = f;
            prop_assert!(setup.incremental_bytes_per_machine(dirty) <= full);
        }
        prop_assert!((setup.incremental_fraction(spec.experts) - 1.0).abs() < 1e-9);
        let steady = setup.steady_incremental_fraction();
        prop_assert!(steady > 0.0 && steady <= 1.0 + 1e-12);
        let expected = setup.expected_touched();
        prop_assert!(expected >= 0.0 && expected <= spec.experts as f64);
        let mut tracker = IncrementalTracker::new();
        for i in 0..iters {
            tracker.observe(&setup.touched_experts(i));
            prop_assert!(tracker.dirty_count() <= spec.experts);
            prop_assert!(
                setup.incremental_fraction(tracker.dirty_count()) <= 1.0 + 1e-12
            );
        }
        prop_assert!(tracker.flush() <= spec.experts);
        prop_assert_eq!(tracker.dirty_count(), 0);
    }
}

#[test]
fn iteration_times_monotone_in_model_size() {
    let sizes = ["GPT-2 10B", "GPT-2 20B", "GPT-2 40B"];
    let mut prev = SimDuration::ZERO;
    for name in sizes {
        let model = TABLE2_MODELS.iter().find(|m| m.name == name).unwrap();
        let t = TimelineBuilder::new(model, InstanceType::p3dn(), 16).build();
        assert!(t.iteration_time() > prev, "{name}");
        prev = t.iteration_time();
    }
}
