//! Scenario-as-a-service acceptance: responses are byte-identical across
//! worker counts, cache temperature and sink state, and match the
//! equivalent one-shot `Scenario` builder runs byte-for-byte.

use gemini_cluster::{FailureKind, OperatorConfig};
use gemini_core::placement::analytic::analytic_recovery_probability;
use gemini_core::policy::PolicySpec;
use gemini_core::Placement;
use gemini_harness::{ChaosPlan, Deployment, DrillConfig, Scenario};
use gemini_service::ServiceEngine;
use gemini_telemetry::TelemetrySink;

/// A canned batch covering every query kind, duplicates (dedup food) and
/// malformed lines (error isolation).
fn canned_batch() -> Vec<String> {
    [
        r#"{"id":"q1","kind":"drill","seed":1}"#,
        r#"{"id":"q2","kind":"drill","model":"GPT-2 40B","instance":"p3dn.24xlarge","seed":2}"#,
        r#"{"id":"q3","kind":"drill","machines":8,"replicas":2,"failures":[[3,"software"]],"seed":1}"#,
        r#"{"id":"q4","kind":"recoverability","machines":16,"replicas":2,"max_k":4}"#,
        r#"{"id":"q5","kind":"recoverability","machines":24,"replicas":3,"max_k":6}"#,
        r#"{"id":"q6","kind":"chaos","plan":"kill_mid_checkpoint","seed":1,"policy":"adaptive"}"#,
        r#"{"id":"q7","kind":"chaos","plan":"root_churn","seed":2}"#,
        r#"{"id":"q8","kind":"lookahead","plan":"kill_mid_checkpoint","seed":1,"candidates":["adaptive","paper_3h"]}"#,
        r#"{"id":"q9","kind":"drill","seed":1}"#,
        r#"{"id":"q10","kind":"drill","failures":[[5,"hardware"],[5,"hardware"]]}"#,
        r#"{"id":"q11","kind":"recoverability","machines":16,"replicas":2,"max_k":4}"#,
        "not json",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

#[test]
fn serve_is_byte_identical_across_jobs_cache_and_sink() {
    let batch = canned_batch();

    // Cold engine, serial.
    let cold = ServiceEngine::new(TelemetrySink::disabled());
    let serial = cold.serve_batch(&batch, 1);

    // Fresh engine, 4 workers.
    let jobs4 = ServiceEngine::new(TelemetrySink::disabled()).serve_batch(&batch, 4);
    assert_eq!(serial, jobs4, "responses differ between --jobs 1 and --jobs 4");

    // Warm rerun on the already-populated engine.
    let warm = cold.serve_batch(&batch, 4);
    assert_eq!(serial, warm, "responses differ between cold and warm caches");

    // Enabled sink: `service.*` counters flow, responses must not move.
    let sink_on = ServiceEngine::new(TelemetrySink::enabled()).serve_batch(&batch, 2);
    assert_eq!(serial, sink_on, "responses differ between sink off and on");

    // Error isolation: exactly the two malformed lines answer ok=false,
    // everything else ok=true, every line answered in order.
    assert_eq!(serial.len(), batch.len());
    for (i, resp) in serial.iter().enumerate() {
        let expect_err = i == 9 || i == 11;
        assert_eq!(
            resp.contains("\"ok\":false"),
            expect_err,
            "line {i}: {resp}"
        );
    }
    assert!(serial[9].starts_with("{\"id\":\"q10\""));
}

#[test]
fn drill_responses_match_the_one_shot_builder_byte_for_byte() {
    let engine = ServiceEngine::new(TelemetrySink::disabled());

    // The default drill is exactly Fig. 14.
    let served = engine.serve_batch(&[r#"{"id":"d","kind":"drill","seed":1}"#.to_string()], 1);
    let one_shot = Scenario::drill(DrillConfig::fig14()).run().unwrap();
    assert_eq!(
        served[0],
        format!(
            "{{\"id\":\"d\",\"kind\":\"drill\",\"ok\":true,\"body\":\"{}\"}}",
            gemini_service::json::escape(&one_shot.render())
        )
    );

    // A diverged query (smaller fleet, software failure) against the
    // hand-built deployment.
    let served = engine.serve_batch(
        &[r#"{"id":"d2","kind":"drill","machines":8,"failures":[[3,"software"]],"seed":5}"#
            .to_string()],
        1,
    );
    let mut deployment = Deployment::dense_gpt2_100b_p4d();
    deployment.machines = 8;
    let one_shot = Scenario::drill(DrillConfig {
        scenario: deployment,
        failures: vec![(3, FailureKind::Software)],
        fail_during_iteration: 4,
        operator: OperatorConfig::default(),
        seed: 5,
        mode: gemini_core::RecoveryMode::Wait,
    })
    .run()
    .unwrap();
    assert!(served[0].contains(&gemini_service::json::escape(&one_shot.render())));
}

#[test]
fn chaos_and_lookahead_match_one_shot_runs() {
    let engine = ServiceEngine::new(TelemetrySink::disabled());
    let served = engine.serve_batch(
        &[
            r#"{"id":"c","kind":"chaos","plan":"kill_mid_checkpoint","seed":3,"policy":"adaptive"}"#
                .to_string(),
            r#"{"id":"l","kind":"lookahead","plan":"root_churn","seed":2,"candidates":["adaptive","paper_3h"]}"#
                .to_string(),
        ],
        2,
    );

    let plan = ChaosPlan::extended_catalog()
        .into_iter()
        .find(|p| p.name == "kill_mid_checkpoint")
        .unwrap();
    let one_shot = Scenario::chaos(plan)
        .seed(3)
        .policy(PolicySpec::adaptive())
        .run()
        .unwrap();
    assert_eq!(
        served[0],
        format!(
            "{{\"id\":\"c\",\"kind\":\"chaos\",\"ok\":true,\"body\":\"{}\"}}",
            gemini_service::json::escape(&one_shot.render())
        )
    );

    // Lookahead = one chaos run per candidate under the same seed; the
    // winner is the lower total wasted time.
    let mut wasted = Vec::new();
    for spec in [
        PolicySpec::adaptive(),
        PolicySpec::Fixed(
            gemini_baselines::fixed_policies()
                .into_iter()
                .find(|p| p.name == "paper_3h")
                .unwrap(),
        ),
    ] {
        let plan = ChaosPlan::extended_catalog()
            .into_iter()
            .find(|p| p.name == "root_churn")
            .unwrap();
        let report = Scenario::chaos(plan).seed(2).policy(spec).run().unwrap();
        wasted.push(report.wasted.total().as_secs_f64());
    }
    let best = if wasted[1] < wasted[0] { "paper_3h" } else { "adaptive" };
    assert!(
        served[1].contains(&format!("best={best}")),
        "lookahead winner mismatch: {} (wasted {wasted:?})",
        served[1]
    );
    for (name, w) in ["adaptive", "paper_3h"].iter().zip(&wasted) {
        assert!(
            served[1].contains(&format!("candidate={name} wasted={w:.3}s")),
            "candidate pricing mismatch for {name}: {}",
            served[1]
        );
    }
}

#[test]
fn recoverability_matches_the_analytic_kernel_bit_for_bit() {
    let engine = ServiceEngine::new(TelemetrySink::disabled());
    let served = engine.serve_batch(
        &[r#"{"id":"r","kind":"recoverability","machines":12,"replicas":3,"max_k":5}"#.to_string()],
        1,
    );
    let placement = Placement::mixed(12, 3).unwrap();
    for k in 0..=5usize {
        let p = analytic_recovery_probability(&placement, k);
        assert!(
            served[0].contains(&format!("k={k} p={p}")),
            "k={k}: expected p={p} in {}",
            served[0]
        );
    }
}
