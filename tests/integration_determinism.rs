//! Determinism guarantees across the whole stack: identical seeds produce
//! identical results, different seeds genuinely differ where randomness is
//! involved.

use gemini_harness::campaign::{run_campaign, CampaignConfig, Solution};
use gemini_harness::{run_drill, DrillConfig, Scenario};
use gemini_sim::DetRng;
use gemini_telemetry::TelemetrySink;

#[test]
fn drill_is_bit_identical_across_runs() {
    let a = run_drill(&DrillConfig::fig14()).unwrap();
    let b = run_drill(&DrillConfig::fig14()).unwrap();
    assert_eq!(a.detect_latency, b.detect_latency);
    assert_eq!(a.replacement_wait, b.replacement_wait);
    assert_eq!(a.total_downtime, b.total_downtime);
    assert_eq!(a.events, b.events);
}

#[test]
fn drill_seed_changes_replacement_draw() {
    let a = run_drill(&DrillConfig::fig14()).unwrap();
    let mut cfg = DrillConfig::fig14();
    cfg.seed = 999;
    let b = run_drill(&cfg).unwrap();
    // The 4-7 min replacement delay is a random draw; different seeds
    // should (almost surely) differ.
    assert_ne!(a.replacement_wait, b.replacement_wait);
}

#[test]
fn campaign_is_deterministic_and_seed_sensitive() {
    let mk = |seed| CampaignConfig::fig15(Solution::Gemini, 4.0, seed);
    let a1 = run_campaign(&mk(7)).unwrap();
    let a2 = run_campaign(&mk(7)).unwrap();
    let b = run_campaign(&mk(8)).unwrap();
    assert_eq!(a1.effective_ratio, a2.effective_ratio);
    assert_eq!(a1.failures, a2.failures);
    assert_ne!(
        (a1.effective_ratio, a1.failures),
        (b.effective_ratio, b.failures)
    );
}

#[test]
fn forked_streams_are_stable_across_fork_order() {
    let root = DetRng::new(1234);
    let mut direct = root.fork("campaign");
    // Interleave unrelated forks; the "campaign" stream must not move.
    let _ = root.fork("a");
    let _ = root.fork_index(9);
    let mut again = root.fork("campaign");
    for _ in 0..100 {
        assert_eq!(direct.unit().to_bits(), again.unit().to_bits());
    }
}

#[test]
fn telemetry_exports_are_byte_identical_across_same_seeded_runs() {
    let export = || {
        let sink = TelemetrySink::enabled();
        Scenario::drill(DrillConfig::fig14())
            .sink(sink.clone())
            .run()
            .unwrap();
        Scenario::campaign(CampaignConfig::fig15(Solution::Gemini, 4.0, 7))
            .sink(sink.clone())
            .run()
            .unwrap();
        (
            sink.export_chrome_trace(),
            sink.export_prometheus(),
            sink.export_metrics_json(),
        )
    };
    let (trace_a, prom_a, json_a) = export();
    let (trace_b, prom_b, json_b) = export();
    assert_eq!(
        trace_a, trace_b,
        "Chrome trace export must be deterministic"
    );
    assert_eq!(prom_a, prom_b, "Prometheus export must be deterministic");
    assert_eq!(json_a, json_b, "metrics JSON export must be deterministic");
    // And the exports are non-trivial: the trace covers the recovery spans
    // and the exposition carries every required metric family.
    assert!(trace_a.contains("\"traceEvents\""));
    assert!(trace_a.contains("\"name\":\"downtime\""));
    for family in ["ckpt_", "recovery_", "kv_", "net_", "sim_", "campaign_"] {
        assert!(prom_a.contains(family), "missing family {family}*");
    }
}

#[test]
fn typed_event_log_is_seed_stable() {
    let sink_a = TelemetrySink::enabled();
    let sink_b = TelemetrySink::enabled();
    Scenario::drill(DrillConfig::fig14())
        .sink(sink_a.clone())
        .run()
        .unwrap();
    Scenario::drill(DrillConfig::fig14())
        .sink(sink_b.clone())
        .run()
        .unwrap();
    assert_eq!(sink_a.events(), sink_b.events());
}

#[test]
fn experiment_tables_are_reproducible() {
    let a: Vec<String> = gemini_harness::experiments::render_all(true)
        .into_iter()
        .map(|t| t.to_markdown())
        .collect();
    let b: Vec<String> = gemini_harness::experiments::render_all(true)
        .into_iter()
        .map(|t| t.to_markdown())
        .collect();
    assert_eq!(a, b);
}
