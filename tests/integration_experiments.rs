//! Cross-checks of the paper's headline claims against the full
//! experiment pipeline — the quantitative acceptance tests of this
//! reproduction.

use gemini_harness::experiments::{interleave, placement, scale, throughput, wasted};

#[test]
fn headline_ckpt_retrieval_up_to_250x_faster() {
    // Abstract / §7.2: "reduces the checkpoint retrieval time by up to
    // 250×" (checkpoint-time reduction at 400 Gbps, 16 instances).
    let best = wasted::fig11()
        .into_iter()
        .map(|r| r.reduction)
        .fold(0.0f64, f64::max);
    assert!(best > 250.0, "best reduction = {best:.0}x");
}

#[test]
fn headline_ckpt_frequency_8x_over_highfreq() {
    // Abstract: "improves the checkpoint frequency by up to 8×".
    let rows = wasted::fig12();
    let g = rows
        .iter()
        .find(|r| r.solution == "GEMINI")
        .unwrap()
        .per_hour;
    let h = rows
        .iter()
        .find(|r| r.solution == "HighFreq")
        .unwrap()
        .per_hour;
    let ratio = g / h;
    assert!((7.0..11.0).contains(&ratio), "ratio = {ratio:.1}");
}

#[test]
fn headline_faster_failure_recovery_by_13x() {
    // Abstract: "achieves a faster failure recovery by more than 13×".
    for r in wasted::fig10() {
        let speedup = r.highfreq_min / r.gemini_cpu_min;
        assert!(speedup > 13.0, "replaced={}: {speedup:.1}", r.replaced);
    }
}

#[test]
fn headline_no_training_throughput_overhead() {
    // Abstract: "incurs no overhead on training throughput".
    for r in throughput::fig7() {
        assert!(
            (r.gemini_iteration - r.baseline_iteration).abs() < 0.01,
            "{}",
            r.model
        );
    }
}

#[test]
fn placement_beats_ring_everywhere() {
    for r in placement::fig9() {
        assert!(r.gemini_k2 > r.ring_k2);
        assert!(r.gemini_k3 > r.ring_k3);
    }
}

#[test]
fn interleaving_ablation_ranks_schemes_correctly() {
    use gemini_baselines::schemes::InterleaveScheme as S;
    let rows = interleave::fig16();
    let get = |s: S| rows.iter().find(|o| o.scheme == s).unwrap();
    assert!(get(S::NaiveInterleave).oom);
    let blocking = get(S::Blocking).overhead_frac.unwrap();
    let nopipe = get(S::InterleaveNoPipeline).overhead_frac.unwrap();
    let gemini = get(S::Gemini).overhead_frac.unwrap();
    assert!(blocking > nopipe && nopipe > gemini);
    assert!(gemini < 0.005);
}

#[test]
fn scalability_claims_hold() {
    // Fig. 15a: GEMINI ≥ 94% at the worst swept rate, always dominating.
    for row in scale::fig15a(true) {
        assert!(row.gemini >= row.highfreq);
        assert!(row.gemini >= row.strawman - 1e-9);
        assert!(row.gemini > 0.94);
    }
    // Fig. 15b at 1000 instances.
    let rows = scale::fig15b(true);
    let r = rows.iter().find(|r| r.x == 1000.0).unwrap();
    assert!(r.gemini > 0.85 && r.strawman < 0.35);
}

#[test]
fn full_render_is_consistent() {
    // Every artifact renders to non-trivial markdown and CSV.
    for table in gemini_harness::experiments::render_all(true) {
        let md = table.to_markdown();
        let csv = table.to_csv();
        assert!(md.lines().count() >= 4, "{}", table.title);
        assert_eq!(csv.lines().count(), table.rows.len() + 1, "{}", table.title);
    }
}
