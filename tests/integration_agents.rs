//! Integration of the coordination plane (agents ↔ KV store ↔ election)
//! with the checkpoint data plane (hierarchical store + codec): real bytes
//! survive a simulated failure and recovery.

use gemini_cluster::FailureKind;
use gemini_core::agents::{RootAgent, WorkerAgent};
use gemini_core::codec;
use gemini_core::recovery::{RecoveryCase, RecoveryPlanner};
use gemini_core::{GeminiConfig, HierarchicalStore, Placement};
use gemini_kvstore::KvStore;
use gemini_net::ByteSize;
use gemini_sim::SimTime;
use std::collections::HashMap;

fn t(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

/// A byte-level mirror of the metadata store: (host, owner) → encoded
/// checkpoint frames, as a real deployment would hold them in CPU memory.
struct ByteStore {
    frames: HashMap<(usize, usize), Vec<u8>>,
}

impl ByteStore {
    fn checkpoint(placement: &Placement, iteration: u64) -> ByteStore {
        let mut frames = HashMap::new();
        for owner in 0..placement.machines() {
            // Each owner's "model states": deterministic bytes derived from
            // its rank and the iteration.
            let data: Vec<u8> = (0..4096u32)
                .flat_map(|i| (i ^ owner as u32 ^ iteration as u32).to_le_bytes())
                .collect();
            let frame = codec::encode(owner as u32, iteration, &data).to_vec();
            for &host in placement.replica_hosts(owner).unwrap() {
                frames.insert((host, owner), frame.clone());
            }
        }
        ByteStore { frames }
    }

    fn machine_lost(&mut self, host: usize) {
        self.frames.retain(|(h, _), _| *h != host);
    }
}

#[test]
fn full_coordination_and_byte_recovery_pipeline() {
    let n = 8;
    let cfg = GeminiConfig::default();
    let placement = Placement::mixed(n, 2).unwrap();
    let mut meta = HierarchicalStore::new(placement.clone(), ByteSize::from_gb(75));
    meta.persist(0);

    // Coordination plane comes up.
    let mut kv = KvStore::new();
    let mut workers: Vec<WorkerAgent> =
        (0..n).map(|r| WorkerAgent::new(r, r as u64, cfg)).collect();
    for w in workers.iter_mut() {
        w.register(&mut kv, t(0)).unwrap();
    }
    let mut root = RootAgent::new("machine-0", &cfg);
    assert!(root.campaign(&mut kv, t(0)).unwrap());

    // Training proceeds; checkpoint 42 commits in metadata and bytes.
    meta.record_complete(42);
    let mut bytes = ByteStore::checkpoint(&placement, 42);

    // Machine 5 dies (hardware): heartbeats stop, CPU memory is wiped.
    meta.machine_lost(5);
    bytes.machine_lost(5);
    let mut detected = None;
    for s in 1..60 {
        if s % 5 == 0 {
            for w in workers.iter_mut() {
                if w.rank() != 5 {
                    w.heartbeat(&mut kv, t(s)).unwrap();
                }
            }
            root.campaign(&mut kv, t(s)).unwrap();
        }
        let report = root.scan(&mut kv, t(s), n);
        if report.missing == vec![5] {
            detected = Some(s);
            break;
        }
    }
    let detected = detected.expect("failure detected");
    assert!(detected <= 15, "detected at {detected}s");

    // The root plans recovery; rank 5 must fetch from its group peer 4.
    let plan = RecoveryPlanner
        .plan(&meta, &[(5, FailureKind::Hardware)])
        .unwrap();
    assert_eq!(plan.case, RecoveryCase::HardwareFromCpu);
    assert_eq!(plan.iteration, 42);
    let src = plan.sources.iter().find(|s| s.rank == 5).unwrap();
    let serving_host = src.from.unwrap();
    assert_eq!(serving_host, 4);

    // The replacement machine pulls the actual frame from the serving host
    // and decodes it — byte-for-byte recovery of rank 5's model states.
    let frame = bytes
        .frames
        .get(&(serving_host, 5))
        .expect("surviving replica holds the bytes");
    let payload = codec::decode(frame).unwrap();
    assert_eq!(payload.owner, 5);
    assert_eq!(payload.iteration, 42);
    let expected: Vec<u8> = (0..4096u32)
        .flat_map(|i| (i ^ 5u32 ^ 42u32).to_le_bytes())
        .collect();
    assert_eq!(&payload.data[..], &expected[..]);
}

#[test]
fn corrupted_replica_is_rejected_and_alternative_found() {
    let n = 6;
    let placement = Placement::mixed(n, 3).unwrap();
    let bytes = ByteStore::checkpoint(&placement, 7);

    // Rank 1's hosts are {0, 1, 2}. Suppose host 0's copy got corrupted
    // in transit; the checksum catches it and host 2 serves instead.
    let mut corrupted = bytes.frames.get(&(0, 1)).unwrap().clone();
    let mid = corrupted.len() / 2;
    corrupted[mid] ^= 0xFF;
    assert!(codec::decode(&corrupted).is_err());

    let fallback = bytes.frames.get(&(2, 1)).expect("third replica");
    let payload = codec::decode(fallback).unwrap();
    assert_eq!(payload.owner, 1);
}

#[test]
fn root_failover_and_continued_detection() {
    let n = 4;
    let cfg = GeminiConfig::default();
    let mut kv = KvStore::new();
    let mut workers: Vec<WorkerAgent> =
        (0..n).map(|r| WorkerAgent::new(r, r as u64, cfg)).collect();
    for w in workers.iter_mut() {
        w.register(&mut kv, t(0)).unwrap();
    }
    let mut roots: Vec<RootAgent> = (0..n)
        .map(|r| RootAgent::new(&format!("machine-{r}"), &cfg))
        .collect();

    // machine-0 leads; machines 0 AND 2 die at t = 10.
    let mut leader_history = Vec::new();
    let mut detected_missing: Option<Vec<usize>> = None;
    for s in 0..80u64 {
        for rank in 0..n {
            let dead = s >= 10 && (rank == 0 || rank == 2);
            if dead {
                continue;
            }
            if s % 5 == 0 {
                workers[rank].heartbeat(&mut kv, t(s)).unwrap();
            }
            let _ = roots[rank].campaign(&mut kv, t(s));
        }
        for rank in 0..n {
            let dead = s >= 10 && (rank == 0 || rank == 2);
            if !dead && roots[rank].is_leader(&mut kv, t(s)) {
                leader_history.push((s, rank));
                let report = roots[rank].scan(&mut kv, t(s), n);
                if report.missing.len() == 2 && detected_missing.is_none() {
                    detected_missing = Some(report.missing);
                }
            }
        }
    }
    // Leadership moved off machine-0 and detection still happened.
    let last_leader = leader_history.last().unwrap().1;
    assert_ne!(last_leader, 0);
    assert_eq!(detected_missing, Some(vec![0, 2]));
}
