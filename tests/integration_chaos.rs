//! End-to-end chaos campaign: every catalogued fault plan crossed with
//! several seeds, with all four engine invariants asserted green and the
//! byte-identical-rerun (determinism) invariant checked explicitly.

use gemini_core::recovery::RecoveryCase;
use gemini_harness::{run_chaos_campaign, ChaosPlan, Scenario};
use gemini_sim::SimDuration;
use gemini_telemetry::{CausalKind, TelemetrySink};

const SEEDS: [u64; 3] = [1, 2, 3];

#[test]
fn full_catalog_times_seeds_runs_green() {
    let plans = ChaosPlan::catalog();
    assert!(plans.len() >= 5, "catalog must hold at least 5 plans");
    let reports = run_chaos_campaign(&plans, &SEEDS, 2).unwrap();
    assert_eq!(reports.len(), plans.len() * SEEDS.len());
    for report in &reports {
        // Invariants 1-3 are folded into `violations` by the engine.
        assert!(
            report.is_green(),
            "plan {} seed {}: {:?}",
            report.plan_name,
            report.seed,
            report.violations
        );
        // Invariant 1, belt and braces: never two leaders.
        assert!(
            report.max_concurrent_leaders <= 1,
            "plan {} seed {}: {} concurrent leaders",
            report.plan_name,
            report.seed,
            report.max_concurrent_leaders
        );
        // The confirmation streak absorbed every blip.
        assert_eq!(
            report.spurious_detections, 0,
            "plan {} seed {}: spurious detections",
            report.plan_name, report.seed
        );
        // Faults actually fired and training made progress to the horizon.
        assert!(report.faults_injected > 0);
        assert!(report.final_iteration > 0);
    }
}

#[test]
fn reruns_with_the_same_seed_are_byte_identical() {
    // Invariant 4. Rendering (not JSON) is the canonical comparison form,
    // and an enabled telemetry sink must not perturb the model.
    for plan in ChaosPlan::catalog() {
        for seed in SEEDS {
            let run = |sink: TelemetrySink| {
                Scenario::chaos(plan.clone())
                    .seed(seed)
                    .sink(sink)
                    .run()
                    .unwrap()
            };
            let a = run(TelemetrySink::disabled());
            let b = run(TelemetrySink::disabled());
            let c = run(TelemetrySink::enabled());
            assert_eq!(
                a.render(),
                b.render(),
                "plan {} seed {seed} differs across reruns",
                plan.name
            );
            assert_eq!(
                a.render(),
                c.render(),
                "plan {} seed {seed} perturbed by telemetry",
                plan.name
            );
        }
    }
}

#[test]
fn campaign_is_jobs_invariant() {
    let plans = ChaosPlan::catalog();
    let serial = run_chaos_campaign(&plans, &SEEDS, 1).unwrap();
    let parallel = run_chaos_campaign(&plans, &SEEDS, 4).unwrap();
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.render(), b.render());
    }
}

#[test]
fn recovery_tiers_cover_all_three_cases_across_the_catalog() {
    // The catalog is diverse enough to exercise every recovery mechanism.
    let plans = ChaosPlan::catalog();
    let reports = run_chaos_campaign(&plans, &[1], 2).unwrap();
    let cases: Vec<RecoveryCase> = reports
        .iter()
        .flat_map(|r| r.waves.iter().map(|w| w.case))
        .collect();
    for expect in [
        RecoveryCase::SoftwareLocal,
        RecoveryCase::HardwareFromCpu,
        RecoveryCase::PersistentFallback,
    ] {
        assert!(
            cases.contains(&expect),
            "no catalogued plan exercised {expect:?} (got {cases:?})"
        );
    }
}

#[test]
fn fleet_wide_churn_holds_invariants_at_ten_thousand_machines() {
    // The extended-catalog plan: 10,000 machines, Poisson single-machine
    // software churn plus one correlated hardware pair loss. Exercises the
    // SoA cluster/chaos state lanes and the O(n) scan path at fleet scale
    // under the same four invariants as the paper-scale catalog. Kept out
    // of the default campaign matrix so the committed baselines (9 plans)
    // stay byte-identical.
    let plan = ChaosPlan::fleet_wide_churn();
    assert!(
        !ChaosPlan::catalog().iter().any(|p| p.name == plan.name),
        "fleet plan must not join the default campaign matrix"
    );
    assert!(
        ChaosPlan::extended_catalog()
            .iter()
            .any(|p| p.name == plan.name),
        "fleet plan missing from the extended catalog"
    );
    let report = Scenario::chaos(plan)
        .seed(1)
        .sink(TelemetrySink::disabled())
        .run()
        .unwrap();
    // Invariants 1-3 fold into `violations`; "ranks still down at the
    // horizon" is a violation too, so green means every wave completed.
    assert!(report.is_green(), "{:?}", report.violations);
    assert!(report.max_concurrent_leaders <= 1);
    assert_eq!(report.spurious_detections, 0, "spurious detections");
    assert!(report.faults_injected >= 5, "churn too sparse");
    assert!(report.waves.len() >= 2, "waves merged into fewer than 2");
    // Single-machine churn recovers from local CPU memory; the correlated
    // pair loss destroys both replicas of a shard and must fall back to
    // the persistent tier.
    assert!(report
        .waves
        .iter()
        .any(|w| w.case == RecoveryCase::SoftwareLocal));
    assert!(report
        .waves
        .iter()
        .any(|w| w.case == RecoveryCase::PersistentFallback));
    assert!(report.final_iteration > 0, "training never progressed");
}

#[test]
fn hardened_paths_exercise_retry_and_degradation() {
    let exhaustion = Scenario::chaos(ChaosPlan::replacement_exhaustion())
        .seed(1)
        .sink(TelemetrySink::disabled())
        .run()
        .unwrap();
    assert!(exhaustion.is_green(), "{:?}", exhaustion.violations);
    assert!(exhaustion.retry_attempts > 0);
    assert_eq!(exhaustion.retry_attempts, exhaustion.replacements_denied);

    let partition = Scenario::chaos(ChaosPlan::degraded_nic_partition())
        .seed(1)
        .sink(TelemetrySink::disabled())
        .run()
        .unwrap();
    assert!(partition.is_green(), "{:?}", partition.violations);
    assert_eq!(partition.waves.len(), 1);
    assert!(partition.waves[0].degraded.is_some());
    assert_eq!(partition.waves[0].case, RecoveryCase::PersistentFallback);
}

#[test]
fn shared_sink_counters_stay_cell_scoped_across_runs() {
    // Label hygiene: two Scenario runs recording into one sink must not
    // collapse their run counters into a single cell — each run's counts
    // stay attributable under its own `cell="{plan}:{seed}"` label.
    use gemini_telemetry::{intern_label, Key};
    let sink = TelemetrySink::enabled();
    for seed in [1u64, 2] {
        Scenario::chaos(ChaosPlan::kill_mid_checkpoint())
            .seed(seed)
            .sink(sink.clone())
            .run()
            .unwrap();
    }
    let snap = sink.metrics_snapshot();
    for seed in [1u64, 2] {
        let cell = intern_label(&format!("kill_mid_checkpoint:{seed}"));
        assert_eq!(
            snap.counter(Key::labeled("chaos.runs", "cell", cell)),
            1,
            "seed {seed}: chaos.runs not cell-scoped"
        );
        assert_eq!(
            snap.counter(Key::labeled("chaos.faults", "cell", cell)),
            1,
            "seed {seed}: chaos.faults not cell-scoped"
        );
        assert_eq!(
            snap.counter(Key::labeled("chaos.waves", "cell", cell)),
            1,
            "seed {seed}: chaos.waves not cell-scoped"
        );
    }
    // No un-labelled fallback cell silently aggregating across runs.
    assert_eq!(snap.counter(Key::plain("chaos.runs")), 0);
    assert_eq!(snap.counter(Key::plain("chaos.faults")), 0);
}

#[test]
fn detection_latency_respects_the_confirmation_bound_on_every_plan() {
    // Worst case for a clean fault: up to one heartbeat period (5s) before
    // the last beat ages, the 15s health TTL, then 7 one-second
    // confirmation scans — comfortably under 30s. Plans that *delay*
    // heartbeats (delayed_heartbeats, root_churn mutes) can stretch the
    // confirmed timestamp but never past the churn-mute ceiling, so the
    // bound still holds; a regression in the detector (longer streak,
    // slower scans, missed TTL expiry) pushes past it.
    let bound = SimDuration::from_secs(30);
    for plan in ChaosPlan::catalog() {
        let sink = TelemetrySink::enabled();
        let report = Scenario::chaos(plan.clone())
            .seed(1)
            .sink(sink.clone())
            .run()
            .unwrap();
        let mut confirmed = 0usize;
        for ev in &report.trace {
            if let CausalKind::Confirmed { rank, latency } = &ev.kind {
                confirmed += 1;
                assert!(
                    *latency <= bound,
                    "plan {} rank {rank}: detection took {latency} (> {bound})",
                    plan.name
                );
            }
        }
        assert!(
            confirmed > 0,
            "plan {}: no Confirmed events in the causal trace",
            plan.name
        );
        // The same latencies are exported as a per-plan histogram.
        let prom = sink.export_prometheus();
        assert!(
            prom.contains("chaos_detection_latency_us"),
            "plan {}: detection-latency histogram missing from export",
            plan.name
        );
        assert!(
            prom.contains(&format!("plan=\"{}\"", plan.name)),
            "plan {}: histogram not labelled with the plan name",
            plan.name
        );
    }
}
