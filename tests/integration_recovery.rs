//! End-to-end failure-recovery integration tests spanning the cluster,
//! kvstore, core and harness crates: the full drill pipeline under every
//! failure scenario the paper discusses (§6).

use gemini_cluster::{FailureKind, OperatorConfig};
use gemini_core::recovery::RecoveryCase;
use gemini_harness::{run_drill, DrillConfig, Deployment};
use gemini_sim::SimDuration;

fn base() -> DrillConfig {
    DrillConfig::fig14()
}

#[test]
fn end_to_end_software_failure_restarts_locally() {
    let mut cfg = base();
    cfg.failures = vec![(7, FailureKind::Software)];
    let r = run_drill(&cfg).unwrap();
    assert_eq!(r.case, RecoveryCase::SoftwareLocal);
    assert_eq!(r.replacement_wait, SimDuration::ZERO);
    assert_eq!(r.resumed_from_iteration, 3);
    // Local retrieval is the fastest tier: the paper calls it negligible.
    assert!(r.retrieval_time.as_secs_f64() < 3.0);
}

#[test]
fn end_to_end_hardware_failure_fetches_from_peer() {
    let r = run_drill(&base()).unwrap();
    assert_eq!(r.case, RecoveryCase::HardwareFromCpu);
    // The total is dominated by replacement + serialization + warmup,
    // never by retrieval.
    assert!(r.retrieval_time < r.serialize_time);
    assert!(r.retrieval_time < r.replacement_wait);
}

#[test]
fn end_to_end_simultaneous_failures_across_groups() {
    // With m = 2 and group placement {0,1},{2,3},…, failing one machine
    // from each of three different groups still recovers from CPU memory.
    let mut cfg = base();
    cfg.failures = vec![
        (0, FailureKind::Hardware),
        (2, FailureKind::Hardware),
        (4, FailureKind::Hardware),
    ];
    let r = run_drill(&cfg).unwrap();
    assert_eq!(r.case, RecoveryCase::HardwareFromCpu);
    assert_eq!(r.resumed_from_iteration, 3);
}

#[test]
fn end_to_end_group_wipe_degrades_to_persistent() {
    let mut cfg = base();
    cfg.failures = vec![(2, FailureKind::Hardware), (3, FailureKind::Hardware)];
    let r = run_drill(&cfg).unwrap();
    assert_eq!(r.case, RecoveryCase::PersistentFallback);
    assert_eq!(r.resumed_from_iteration, 0);
    // Persistent retrieval funnels the full 1.2 TB through 20 Gbps.
    assert!(r.retrieval_time.as_secs_f64() > 300.0);
}

#[test]
fn end_to_end_mixed_software_and_hardware() {
    let mut cfg = base();
    cfg.failures = vec![(1, FailureKind::Software), (6, FailureKind::Hardware)];
    let r = run_drill(&cfg).unwrap();
    assert_eq!(r.case, RecoveryCase::HardwareFromCpu);
    // One replacement wait applies even though a software failure came
    // along for the ride.
    assert!(r.replacement_wait > SimDuration::from_secs(60));
}

#[test]
fn end_to_end_standby_cuts_minutes_off_recovery() {
    let mut with = base();
    with.operator = OperatorConfig::with_standbys(1);
    let fast = run_drill(&with).unwrap();
    let slow = run_drill(&base()).unwrap();
    let saved = slow.total_downtime.as_secs_f64() - fast.total_downtime.as_secs_f64();
    // Replacement is 4-7 min from the cloud vs ~30 s from standby, but it
    // overlaps the 162 s serialization — the saving is the tail beyond it.
    assert!(saved > 30.0, "saved only {saved:.0}s");
}

#[test]
fn end_to_end_later_failure_rolls_back_one_iteration() {
    let mut cfg = base();
    cfg.fail_during_iteration = 10;
    let r = run_drill(&cfg).unwrap();
    assert_eq!(r.failed_iteration, 10);
    assert_eq!(r.resumed_from_iteration, 9);
}

#[test]
fn end_to_end_smaller_cluster_still_recovers() {
    // GPT-2 40B on 4 machines: 120 GB shards still fit the double-buffered
    // CPU budget (2 shards × 2 buffers × 120 GB = 480 GB < 768 GB).
    let mut cfg = base();
    cfg.scenario = Deployment {
        machines: 4,
        ..Deployment::dense_gpt2_40b_p3dn()
    };
    cfg.failures = vec![(3, FailureKind::Hardware)];
    let r = run_drill(&cfg).unwrap();
    assert_eq!(r.case, RecoveryCase::HardwareFromCpu);
}

#[test]
fn cpu_memory_validation_rejects_infeasible_deployments() {
    // GPT-2 100B on only 4 machines would need 2 × 2 × 300 GB = 1.2 TB of
    // CPU memory per host — more than p4d's 1152 GB. The system refuses to
    // assemble rather than silently overcommitting (§2.3.1's premise is
    // checked, not assumed).
    let scenario = Deployment {
        machines: 4,
        ..Deployment::dense_gpt2_100b_p4d()
    };
    assert!(scenario.build_system(1).is_err());
}

#[test]
fn end_to_end_p3dn_deployment_recovers() {
    let mut cfg = base();
    cfg.scenario = Deployment::dense_gpt2_40b_p3dn();
    cfg.failures = vec![(9, FailureKind::Hardware)];
    let r = run_drill(&cfg).unwrap();
    assert_eq!(r.case, RecoveryCase::HardwareFromCpu);
    // Smaller shards retrieve faster than the p4d case.
    assert!(r.retrieval_time.as_secs_f64() < 8.0);
}
