//! The deterministic-parallelism contract, end to end: every artifact the
//! harness can produce — markdown, CSV, JSON, telemetry exports, campaign
//! sweeps, Monte-Carlo estimates — must be **byte-identical** whether it
//! was computed serially or on a worker pool, at any `--jobs` value.
//!
//! These tests are the enforcement teeth behind `docs/PERFORMANCE.md`'s
//! determinism contract: parallel work is expressed as indexed task sets,
//! per-task results depend only on the task index and the caller's
//! configuration, and results merge by index.

use gemini_core::placement::probability::monte_carlo_recovery_probability_jobs;
use gemini_core::Placement;
use gemini_harness::campaign::{campaign_grid, run_campaigns, Solution};
use gemini_harness::des_campaign::{run_des_sweep, DesCampaignConfig};
use gemini_harness::experiments::{render_all_jobs, render_all_with_jobs};
use gemini_harness::par;
use gemini_sim::DetRng;
use gemini_telemetry::TelemetrySink;

#[test]
fn rendered_artifacts_are_byte_identical_across_job_counts() {
    let serial = render_all_jobs(true, 1);
    for jobs in [2, 8] {
        let par = render_all_jobs(true, jobs);
        assert_eq!(serial.len(), par.len());
        for (s, p) in serial.iter().zip(par.iter()) {
            assert_eq!(s.title, p.title, "order diverged at jobs={jobs}");
            assert_eq!(
                s.to_markdown(),
                p.to_markdown(),
                "markdown diverged for {} at jobs={jobs}",
                s.title
            );
            assert_eq!(
                s.to_csv(),
                p.to_csv(),
                "csv diverged for {} at jobs={jobs}",
                s.title
            );
            assert_eq!(
                s.to_json(),
                p.to_json(),
                "json diverged for {} at jobs={jobs}",
                s.title
            );
        }
    }
}

#[test]
fn telemetry_exports_are_byte_identical_across_job_counts() {
    // The figure-regeneration path records only deterministic metrics
    // (artifact counters + `parallel.tasks`), so the *exported* Prometheus
    // text and metrics JSON must match byte-for-byte at any job count.
    let export = |jobs: usize| {
        let sink = TelemetrySink::enabled();
        let _ = render_all_with_jobs(true, jobs, &sink);
        (sink.export_prometheus(), sink.export_metrics_json())
    };
    let (prom1, json1) = export(1);
    for jobs in [2, 8] {
        let (prom, json) = export(jobs);
        assert_eq!(prom1, prom, "Prometheus export diverged at jobs={jobs}");
        assert_eq!(json1, json, "metrics JSON diverged at jobs={jobs}");
    }
    // And the deterministic parallel.tasks counter is actually in there.
    assert!(
        prom1.contains("parallel_tasks") || prom1.contains("parallel.tasks"),
        "parallel.tasks missing from export:\n{prom1}"
    );
}

#[test]
fn campaign_grid_sweep_is_bit_identical_across_job_counts() {
    // seeds × failure-rates × solutions, the Fig. 15a grid shape.
    let grid = campaign_grid(
        &[42, 7],
        &[0.0, 4.0, 8.0],
        &[Solution::Gemini, Solution::Strawman, Solution::HighFreq],
    );
    assert_eq!(grid.len(), 2 * 3 * 3);
    let serial = run_campaigns(&grid, 1).expect("campaigns run");
    for jobs in [2, 8] {
        let par = run_campaigns(&grid, jobs).expect("campaigns run");
        assert_eq!(serial.len(), par.len());
        for (s, p) in serial.iter().zip(par.iter()) {
            assert_eq!(
                s.effective_ratio.to_bits(),
                p.effective_ratio.to_bits(),
                "ratio diverged at jobs={jobs}"
            );
            assert_eq!(s.failures, p.failures);
            assert_eq!(s.iterations, p.iterations);
            assert_eq!(
                s.recovery_lost.as_nanos(),
                p.recovery_lost.as_nanos(),
                "recovery_lost diverged at jobs={jobs}"
            );
        }
    }
}

#[test]
fn des_sweep_is_bit_identical_across_job_counts() {
    let configs: Vec<DesCampaignConfig> = [(0.0, 1), (2.0, 11), (8.0, 11)]
        .iter()
        .map(|&(per_day, seed)| DesCampaignConfig::software_only(per_day, seed))
        .collect();
    let serial = run_des_sweep(&configs, 1).expect("sweeps run");
    for jobs in [2, 8] {
        let par = run_des_sweep(&configs, jobs).expect("sweeps run");
        for (s, p) in serial.iter().zip(par.iter()) {
            assert_eq!(s.effective_ratio.to_bits(), p.effective_ratio.to_bits());
            assert_eq!(s.iterations, p.iterations);
            assert_eq!(s.failures, p.failures);
            assert_eq!(s.absorbed_failures, p.absorbed_failures);
        }
    }
}

#[test]
fn monte_carlo_estimates_are_bit_identical_across_job_counts() {
    for n in [16usize, 64, 128] {
        let placement = Placement::mixed(n, 2).expect("valid placement");
        let serial =
            monte_carlo_recovery_probability_jobs(&placement, 2, 50_000, &mut DetRng::new(5), 1);
        for jobs in [2, 8] {
            let par = monte_carlo_recovery_probability_jobs(
                &placement,
                2,
                50_000,
                &mut DetRng::new(5),
                jobs,
            );
            assert_eq!(
                serial.to_bits(),
                par.to_bits(),
                "N={n} jobs={jobs}: {serial} vs {par}"
            );
        }
    }
}

#[test]
fn process_default_jobs_change_the_pool_not_the_output() {
    // Raising the process default (what `--jobs` / `GEMINI_JOBS` does in
    // the bench binaries) must leave every rendered byte unchanged.
    let baseline: Vec<String> = render_all_jobs(true, 1)
        .iter()
        .map(|t| t.to_markdown())
        .collect();
    par::set_default_jobs(8);
    let under_default: Vec<String> = gemini_harness::experiments::render_all(true)
        .iter()
        .map(|t| t.to_markdown())
        .collect();
    par::set_default_jobs(0); // restore
    assert_eq!(baseline, under_default);
}
