//! Cross-crate integration of the placement extensions: rack-aware
//! placement against correlated switch failures, the fluid-flow model
//! against the FIFO storage pipe, and hierarchical collectives against
//! the flat timeline model.

use gemini_cluster::FailureKind;
use gemini_collectives::hierarchical::hierarchy_overhead_factor;
use gemini_core::placement::topology::{rack_aware_mixed, rack_survival_rate, Topology};
use gemini_core::recovery::{RecoveryCase, RecoveryPlanner};
use gemini_core::{HierarchicalStore, Placement};
use gemini_harness::{run_drill, DrillConfig, Deployment};
use gemini_net::{
    fluid_completion_times, Bandwidth, ByteSize, FlowResource, FluidFlow, FluidNetwork,
    PersistentStorage, TransferCost,
};
use gemini_sim::SimTime;

#[test]
fn switch_failure_with_rack_aware_placement_recovers_from_cpu() {
    // 16 machines in 4 racks; a top-of-rack switch takes rack 2 down
    // (machines 8-11, all hardware failures at once).
    let topology = Topology::contiguous(16, 4).unwrap();
    let rack = 2usize;
    let victims: Vec<usize> = topology.machines_in_rack(rack);
    assert_eq!(victims, vec![8, 9, 10, 11]);

    let run = |placement: Placement| {
        let mut store = HierarchicalStore::new(placement, ByteSize::from_gb(75));
        store.persist(0);
        store.record_complete(42);
        for &v in &victims {
            store.machine_lost(v);
        }
        let failures: Vec<(usize, FailureKind)> = victims
            .iter()
            .map(|&v| (v, FailureKind::Hardware))
            .collect();
        RecoveryPlanner.plan(&store, &failures).unwrap()
    };

    // Rack-oblivious: groups {8,9} and {10,11} sit inside the dead rack →
    // persistent fallback, rolling all the way back to iteration 0.
    let oblivious_plan = run(Placement::mixed(16, 2).unwrap());
    assert_eq!(oblivious_plan.case, RecoveryCase::PersistentFallback);
    assert_eq!(oblivious_plan.iteration, 0);

    // Rack-aware: every group spans two racks → all four victims fetch
    // from peers in surviving racks, keeping iteration 42.
    let aware_plan = run(rack_aware_mixed(&topology, 2).unwrap());
    assert_eq!(aware_plan.case, RecoveryCase::HardwareFromCpu);
    assert_eq!(aware_plan.iteration, 42);
    for &v in &victims {
        let src = aware_plan.sources.iter().find(|s| s.rank == v).unwrap();
        let from = src.from.unwrap();
        assert_ne!(topology.rack_of(from).unwrap(), rack);
    }
}

#[test]
fn end_to_end_rack_failure_drill_with_topology() {
    // The full event-driven drill with a rack-aware scenario: an entire
    // 4-machine rack dies and training still recovers from CPU memory.
    let topology = Topology::contiguous(16, 4).unwrap();
    let victims = topology.machines_in_rack(1);
    let mut scenario = Deployment::dense_gpt2_100b_p4d();
    scenario.rack_topology = Some(topology);
    let mut cfg = DrillConfig::fig14();
    cfg.scenario = scenario;
    cfg.failures = victims
        .iter()
        .map(|&v| (v, FailureKind::Hardware))
        .collect();
    let report = run_drill(&cfg).unwrap();
    assert_eq!(report.case, RecoveryCase::HardwareFromCpu);
    assert_eq!(report.resumed_from_iteration, 3);

    // The same drill without the topology degrades to the persistent
    // fallback — the whole point of the extension.
    let mut oblivious = DrillConfig::fig14();
    oblivious.failures = victims
        .iter()
        .map(|&v| (v, FailureKind::Hardware))
        .collect();
    let report = run_drill(&oblivious).unwrap();
    assert_eq!(report.case, RecoveryCase::PersistentFallback);
}

#[test]
fn rack_survival_summary_matches_planner_behaviour() {
    let topology = Topology::contiguous(16, 4).unwrap();
    assert_eq!(
        rack_survival_rate(&Placement::mixed(16, 2).unwrap(), &topology),
        0.0
    );
    assert_eq!(
        rack_survival_rate(&rack_aware_mixed(&topology, 2).unwrap(), &topology),
        1.0
    );
}

#[test]
fn fluid_fan_in_agrees_with_fifo_pipe_on_the_last_finisher() {
    // §6.2 Case 2: 16 machines re-read the full model state through the
    // 20 Gbps FSx pipe. The FIFO model serializes the reads; the fluid
    // model shares the pipe fairly. The recovery completes when the *last*
    // machine finishes — identical in both models.
    let agg = Bandwidth::from_gbps(20.0);
    let per_machine = ByteSize::from_gb(75);

    let mut fifo = PersistentStorage::new(TransferCost::pure_bandwidth(agg));
    let mut last_fifo = SimTime::ZERO;
    for _ in 0..16 {
        last_fifo = last_fifo.max(fifo.read(SimTime::ZERO, per_machine).end);
    }

    let net = FluidNetwork::symmetric(16, Bandwidth::from_gbytes_per_sec(50.0), Some(agg));
    let flows: Vec<FluidFlow> = (0..16)
        .map(|m| FluidFlow {
            resources: vec![FlowResource::Shared, FlowResource::Rx(m)],
            bytes: per_machine,
        })
        .collect();
    let fluid = fluid_completion_times(&net, &flows);
    let last_fluid = fluid.iter().max().unwrap();

    let fifo_secs = (last_fifo - SimTime::ZERO).as_secs_f64();
    assert!(
        (fifo_secs - last_fluid.as_secs_f64()).abs() < 1e-3,
        "FIFO {fifo_secs:.1}s vs fluid {last_fluid}"
    );
    // But fluid fairness means *every* reader finishes at that time, while
    // FIFO finishes the first reader 16× sooner.
    let first_fluid = fluid.iter().min().unwrap();
    assert_eq!(first_fluid, last_fluid);
}

#[test]
fn hierarchical_collectives_justify_the_flat_timeline_model() {
    // The timeline generator charges only inter-node time; the hierarchical
    // model shows the NVSwitch phases add under 6% on p4d-class hardware —
    // the documented approximation.
    let inter = TransferCost::new(
        gemini_sim::SimDuration::from_micros(100),
        Bandwidth::from_gbps(400.0).scaled(0.23),
    );
    let nvswitch = TransferCost::new(
        gemini_sim::SimDuration::from_micros(5),
        Bandwidth::from_gbytes_per_sec(600.0),
    );
    // A GPT-2 100B layer's fp16 parameters: ≈1.6 GB gathered.
    let layer = ByteSize::from_gb_f64(1.6);
    let factor = hierarchy_overhead_factor(layer, 16, 8, &inter, &nvswitch);
    assert!(
        (1.0..1.06).contains(&factor),
        "hierarchy overhead factor = {factor:.4}"
    );
}
