//! Checkpoint-placement analysis: Algorithm 1's group/ring/mixed
//! strategies, the Theorem 1 optimality bounds, and the Corollary 1
//! recovery probabilities, cross-checked by exact enumeration and Monte
//! Carlo.
//!
//! ```text
//! cargo run --example placement_analysis
//! ```

use gemini_core::placement::probability::{
    corollary1_probability, exact_recovery_probability, monte_carlo_recovery_probability,
    ring_m2_probability, theorem1_gap_bound, theorem1_upper_bound,
};
use gemini_core::{Placement, PlacementStrategy};
use gemini_sim::DetRng;

fn main() {
    // Algorithm 1 on the paper's Figure 3 examples.
    println!("Algorithm 1 (mixed checkpoint placement):");
    for (n, m) in [(4usize, 2usize), (5, 2), (16, 2), (17, 2), (10, 3)] {
        let p = Placement::mixed(n, m).expect("valid parameters");
        let kind = match p.strategy() {
            PlacementStrategy::Group => "pure group",
            PlacementStrategy::Mixed => "group + ring",
            PlacementStrategy::Ring => "pure ring",
        };
        println!(
            "  N={n:3} m={m}: {kind}, {} groups, {} distinct host-sets",
            p.groups().len(),
            p.unique_host_sets().len()
        );
    }

    // Corollary 1 vs ring, as in Figure 9.
    println!("\nP(recover from CPU memory), m = 2:");
    println!("  N    | GEMINI k=2 | Ring k=2 | GEMINI k=3 | Ring k=3");
    for n in [8usize, 16, 32, 64, 128] {
        println!(
            "  {n:4} | {:10.3} | {:8.3} | {:10.3} | {:8.3}",
            corollary1_probability(n, 2, 2),
            ring_m2_probability(n, 2),
            corollary1_probability(n, 2, 3),
            ring_m2_probability(n, 3),
        );
    }

    // Three estimators agree.
    let n = 16;
    let placement = Placement::mixed(n, 2).unwrap();
    let analytic = corollary1_probability(n, 2, 2);
    let exact = exact_recovery_probability(&placement, 2).unwrap();
    let mut rng = DetRng::new(7);
    let mc = monte_carlo_recovery_probability(&placement, 2, 100_000, &mut rng);
    println!("\ncross-check at N=16, m=2, k=2:");
    println!("  Corollary 1 closed form: {analytic:.4}");
    println!("  exact enumeration:       {exact:.4}");
    println!("  Monte Carlo (100k):      {mc:.4}");

    // Theorem 1: the mixed strategy is near-optimal when m does not
    // divide N.
    println!("\nTheorem 1 near-optimality (k = m):");
    for (n, m) in [(17usize, 2usize), (10, 3), (14, 4)] {
        let p = Placement::mixed(n, m).unwrap();
        let achieved = exact_recovery_probability(&p, m).unwrap();
        let bound = theorem1_upper_bound(n, m);
        let gap = theorem1_gap_bound(n, m);
        println!(
            "  N={n:3} m={m}: achieved {achieved:.5}, upper bound {bound:.5}, \
             gap {:.5} <= (2m-3)/C(N,m) = {gap:.5}",
            bound - achieved
        );
    }
}
