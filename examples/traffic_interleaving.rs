//! Traffic interleaving: profile a ZeRO-3 iteration, run the checkpoint
//! partition algorithm (Algorithm 2), and compare the five schemes of the
//! paper's Figure 16 ablation.
//!
//! ```text
//! cargo run --example traffic_interleaving
//! ```

use gemini_baselines::schemes::{evaluate_scheme, InterleaveScheme};
use gemini_harness::Deployment;
use gemini_sim::DetRng;

fn main() {
    // The Fig. 16 setting: GPT-2 40B on 16 p3dn.24xlarge.
    let scenario = Deployment::dense_gpt2_40b_p3dn();
    let mut rng = DetRng::new(16);
    let profile = scenario.profile(&mut rng);

    println!(
        "profiled {}: iteration {}, total idle {}, {} idle spans \
         (normalized stddev {:.1}%)",
        scenario.model.name,
        profile.iteration_time,
        profile.total_idle(),
        profile.spans.len(),
        profile.iter_time_normalized_stddev * 100.0
    );
    println!("largest idle spans:");
    let mut lens = profile.span_lengths();
    lens.sort_unstable_by(|a, b| b.cmp(a));
    for len in lens.iter().take(5) {
        println!("  {len}");
    }

    println!(
        "\ncheckpoint to place: {} per machine, {} remote copy/copies\n",
        scenario.ckpt_bytes_per_machine(),
        scenario.config.replicas - 1
    );

    println!("scheme                    | iteration | overhead | buffer/GPU");
    println!("--------------------------|-----------|----------|-----------");
    for scheme in InterleaveScheme::all() {
        let o = evaluate_scheme(
            scheme,
            &profile,
            scenario.ckpt_bytes_per_machine(),
            scenario.instance.gpus,
            &scenario.config,
            &scenario.instance.ckpt_net_cost(),
            &scenario.instance.copy_cost(),
            scenario.instance.gpu_headroom,
        )
        .expect("evaluation succeeds");
        let iter = o
            .iteration_time
            .map(|d| format!("{d}"))
            .unwrap_or_else(|| "OOM".into());
        let over = o
            .overhead_frac
            .map(|f| format!("{:+.1}%", f * 100.0))
            .unwrap_or_else(|| "OOM".into());
        println!(
            "{:25} | {iter:>9} | {over:>8} | {}",
            scheme.name(),
            o.required_buffer_per_gpu
        );
    }

    println!(
        "\nGEMINI splits its reserved {} buffer into {} sub-buffers of {}\n\
         and pipelines the GPU-to-GPU transfer of one chunk with the\n\
         GPU-to-CPU copy of the previous one (paper Fig. 5d).",
        scenario.config.reserved_buffer,
        scenario.config.sub_buffers,
        scenario.config.sub_buffer_size()
    );
}
