//! Large-model training campaigns: a simulated week of GPT-2 100B
//! training under Poisson failures, comparing GEMINI against the
//! remote-storage baselines — the experiment behind the paper's Fig. 15.
//!
//! ```text
//! cargo run --example large_model_training
//! ```

use gemini_harness::campaign::{run_campaign, CampaignConfig, Solution};

fn main() {
    println!("one simulated week of GPT-2 100B on 16 p4d.24xlarge\n");

    println!("effective training time ratio vs failure rate:");
    println!("failures/day | no-failure | GEMINI | HighFreq | Strawman");
    for per_day in [0.0, 1.0, 2.0, 4.0, 8.0] {
        let ratios: Vec<f64> = [
            Solution::NoFailure,
            Solution::Gemini,
            Solution::HighFreq,
            Solution::Strawman,
        ]
        .iter()
        .map(|&s| {
            run_campaign(&CampaignConfig::fig15(s, per_day, 42))
                .expect("campaign runs")
                .effective_ratio
        })
        .collect();
        println!(
            "{per_day:12.0} | {:10.3} | {:6.3} | {:8.3} | {:8.3}",
            ratios[0], ratios[1], ratios[2], ratios[3]
        );
    }

    println!("\nscaling the cluster at 1.5% machine-failures/day (OPT-175B's rate):");
    println!("instances | GEMINI | HighFreq | Strawman");
    for machines in [16usize, 64, 256, 1000] {
        let ratios: Vec<f64> = [Solution::Gemini, Solution::HighFreq, Solution::Strawman]
            .iter()
            .map(|&s| {
                run_campaign(&CampaignConfig::fig15b(s, machines, 42))
                    .expect("campaign runs")
                    .effective_ratio
            })
            .collect();
        println!(
            "{machines:9} | {:6.3} | {:8.3} | {:8.3}",
            ratios[0], ratios[1], ratios[2]
        );
    }

    // Detail of one GEMINI campaign.
    let detail = run_campaign(&CampaignConfig::fig15(Solution::Gemini, 8.0, 42)).unwrap();
    println!(
        "\nGEMINI at 8 failures/day: {} failures over the week, \
         {} iterations completed,\nrecovery lost {}, checkpoint stalls {}",
        detail.failures, detail.iterations, detail.recovery_lost, detail.ckpt_stall_lost
    );
}
