//! The runtime façade: train, fail, recover, keep training — with real
//! checkpoint bytes flowing through the replica vault and verified on
//! retrieval.
//!
//! ```text
//! cargo run --example runtime_lifecycle
//! ```

use gemini_cluster::{FailureKind, OperatorConfig};
use gemini_harness::{GeminiRuntime, Deployment};

fn main() {
    let mut rt = GeminiRuntime::launch(
        Deployment::dense_gpt2_100b_p4d(),
        OperatorConfig::with_standbys(1),
        64 * 1024, // synthetic 64 KiB shards in the byte vault
        2026,
    )
    .expect("deployment is feasible");

    println!("launched; t = {}, iteration {}", rt.now(), rt.iteration());

    rt.train(10).expect("healthy job trains");
    println!("trained 10 iterations; t = {}", rt.now());

    println!("\ninjecting hardware failure on rank 5 …");
    rt.inject_failure(5, FailureKind::Hardware).unwrap();
    assert!(rt.train(1).is_err(), "synchronous training halts");

    let report = rt.recover().expect("recovery succeeds");
    println!(
        "recovered: case {:?}, rolled back to iteration {} (lost {}), downtime {}",
        report.case, report.resumed_from_iteration, report.iterations_lost, report.downtime
    );
    let src = report.plan.sources.iter().find(|s| s.rank == 5).unwrap();
    println!(
        "rank 5 restored its shard from machine {:?} via {:?} (bytes checksum-verified)",
        src.from, src.tier
    );

    rt.train(5).expect("job resumed");
    println!(
        "\nback in business; iteration {} at t = {}",
        rt.iteration(),
        rt.now()
    );

    println!("\nnow a software failure on rank 2 …");
    rt.inject_failure(2, FailureKind::Software).unwrap();
    let report = rt.recover().unwrap();
    println!(
        "recovered in {} ({:?}; local restart, no replacement)",
        report.downtime, report.case
    );

    rt.train(5).unwrap();
    println!(
        "final state: iteration {} at t = {}",
        rt.iteration(),
        rt.now()
    );
}
