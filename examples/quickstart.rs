//! Quickstart: assemble a GEMINI deployment for GPT-2 100B on 16
//! p4d.24xlarge machines, inspect the checkpoint placement and the
//! per-iteration traffic schedule, then survive a hardware failure.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use gemini_cluster::FailureKind;
use gemini_harness::{run_drill, DrillConfig, Deployment};

fn main() {
    // 1. Describe the deployment: model × instance type × machine count.
    let scenario = Deployment::dense_gpt2_100b_p4d();
    println!(
        "deployment: {} on {} x {}",
        scenario.model.name, scenario.machines, scenario.instance.name
    );
    println!(
        "model states: {} total, {} per machine\n",
        scenario.ckpt_bytes_total(),
        scenario.ckpt_bytes_per_machine()
    );

    // 2. Assemble the system: placement (Algorithm 1), online profiling,
    //    checkpoint traffic schedule (Algorithm 2).
    let sys = scenario.build_system(42).expect("deployment is feasible");
    println!("checkpoint placement ({:?}):", sys.placement.strategy());
    for group in sys.placement.groups() {
        println!("  group {:?} ({:?})", group.members, group.kind);
    }
    let o = &sys.schedule.outcome;
    println!("\nper-iteration checkpoint schedule:");
    println!("  iteration (no ckpt):   {}", o.baseline_iteration);
    println!("  iteration (GEMINI):    {}", o.iteration_time);
    println!("  ckpt network time:     {}", o.ckpt_network_time);
    println!("  idle time remaining:   {}", o.remaining_idle);
    println!(
        "  interference-free:     {}",
        sys.schedule.is_interference_free()
    );
    println!(
        "  chunks scheduled:      {}",
        sys.schedule.plan.chunk_count()
    );

    // 3. Kill a machine and watch the recovery.
    let mut drill = DrillConfig::fig14();
    drill.scenario = scenario;
    drill.failures = vec![(5, FailureKind::Hardware)];
    let report = run_drill(&drill).expect("recovery succeeds");
    println!("\nhardware failure on rank 5 during iteration 4:");
    println!("  detection latency:     {}", report.detect_latency);
    println!("  serialization:         {}", report.serialize_time);
    println!("  replacement wait:      {}", report.replacement_wait);
    println!("  checkpoint retrieval:  {}", report.retrieval_time);
    println!("  restart warmup:        {}", report.warmup_time);
    println!("  total downtime:        {}", report.total_downtime);
    println!(
        "  resumed from iteration {} (case {:?})",
        report.resumed_from_iteration, report.case
    );
}
