//! Failure-recovery drills: the full event-driven pipeline (heartbeats →
//! lease expiry → root detection → serialization → replacement →
//! retrieval → warmup) under different failure scenarios, with the event
//! trace printed.
//!
//! ```text
//! cargo run --example failure_recovery_drill
//! ```

use gemini_cluster::{FailureKind, OperatorConfig};
use gemini_harness::{run_drill, DrillConfig};

fn show(label: &str, cfg: &DrillConfig) {
    let r = run_drill(cfg).expect("drill recovers");
    println!("== {label} ==");
    println!(
        "  case {:?}; detection {}, serialization {}, replacement {}, \
         retrieval {}, warmup {}; total {}",
        r.case,
        r.detect_latency,
        r.serialize_time,
        r.replacement_wait,
        r.retrieval_time,
        r.warmup_time,
        r.total_downtime
    );
    println!(
        "  failed during iteration {}, resumed from checkpoint {}\n",
        r.failed_iteration, r.resumed_from_iteration
    );
}

fn main() {
    // 1. The paper's Fig. 14 run: one hardware failure, no standbys.
    let hardware = DrillConfig::fig14();
    show("hardware failure (ASG replacement)", &hardware);

    // 2. The same failure with a standby machine pre-allocated.
    let mut standby = DrillConfig::fig14();
    standby.operator = OperatorConfig::with_standbys(1);
    show("hardware failure (standby machine)", &standby);

    // 3. A software failure: no replacement, local restart.
    let mut software = DrillConfig::fig14();
    software.failures = vec![(5, FailureKind::Software)];
    show("software failure (local restart)", &software);

    // 4. Losing a whole placement group: the persistent-storage fallback.
    let mut group_loss = DrillConfig::fig14();
    group_loss.failures = vec![(2, FailureKind::Hardware), (3, FailureKind::Hardware)];
    show("whole-group loss (persistent fallback)", &group_loss);

    // 5. Killing the root machine: leadership fails over first.
    let mut root_loss = DrillConfig::fig14();
    root_loss.failures = vec![(0, FailureKind::Hardware)];
    let r = run_drill(&root_loss).expect("drill recovers");
    println!("== root-machine failure ==");
    println!(
        "  detection by {} (was machine-0), total {}\n",
        r.detecting_root, r.total_downtime
    );

    // Typed event log of the first drill.
    println!("== typed events (hardware failure) ==");
    for te in run_drill(&hardware).unwrap().events {
        println!(
            "[{:>10.3}s] {:<32} {:?}",
            te.time.as_secs_f64(),
            te.event.name(),
            te.event
        );
    }
}
